"""Key comparators for B+-trees over plaintext and encrypted columns.

The paper's two index flavours (Section 3.1) differ only in how keys are
ordered:

* **Equality indexes (DET)** order keys by *ciphertext* bytes. Because
  deterministic encryption is one-to-one at whole-value granularity,
  equality lookups through ciphertext order are exact — but the order
  itself is meaningless, so range lookups are unsupported.
* **Range indexes (RND)** order keys by *plaintext* value, obtained by
  routing every comparison to the enclave, which decrypts and returns the
  ordering in the clear.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.enclave import Enclave
from repro.errors import SqlError
from repro.obs.leakage import record_leak
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.values import compare_values


class KeyComparator(Protocol):
    """Three-way comparison over index key values.

    ``supports_range`` — the comparator defines a consistent total order,
    so ordered B+-tree scans are well-defined. ``semantic_order`` — that
    order matches *plaintext* order, so value-range predicates (<, >,
    BETWEEN) may use it. DET ciphertext order is consistent but not
    semantic: equal values cluster (prefix-equality seeks work), yet byte
    order says nothing about plaintext order.
    """

    def compare(self, left: object, right: object) -> int: ...

    @property
    def supports_range(self) -> bool: ...

    @property
    def semantic_order(self) -> bool: ...


#: Comparators may additionally expose
#:   batch_capable: bool — probing one key against many through
#:       ``compare_one_to_many`` amortizes real per-comparison cost
#:       (an enclave boundary crossing), so B+-tree descents should
#:       prefer a node-level batched probe over binary search;
#:   compare_one_to_many(probe, keys) -> list[int] — the three-way
#:       outcome of ``compare(probe, k)`` for every ``k`` in keys.
#: Wrappers (CellComparator etc.) propagate batch capability from their
#: inner comparator; plain comparators default to batch_capable=False.


class PlaintextComparator:
    """Orders plaintext keys by value; supports ranges."""

    supports_range = True
    semantic_order = True
    batch_capable = False  # comparisons are free; binary search wins

    def compare(self, left: object, right: object) -> int:
        return compare_values(left, right)  # type: ignore[arg-type]

    def compare_one_to_many(self, probe: object, keys: list[object]) -> list[int]:
        return [self.compare(probe, key) for key in keys]


class CiphertextBinaryComparator:
    """Orders DET ciphertexts by envelope bytes; equality-only semantics.

    Byte order of ciphertexts is a *consistent* total order (so B+-tree
    scans and prefix-equality seeks are fine) but has no relation to
    plaintext order — ``semantic_order`` is False and the planner must
    never emit value-range scans through this comparator.
    """

    supports_range = True
    semantic_order = False
    batch_capable = False  # byte comparisons are free

    def __init__(self, column: str | None = None):
        # When labelled with a column, every comparison is charged to the
        # leakage ledger: DET byte comparison reveals an equality verdict.
        self._column = column

    def compare(self, left: object, right: object) -> int:
        left_bytes = self._envelope(left)
        right_bytes = self._envelope(right)
        if self._column is not None:
            record_leak(self._column, "det_equality")
        return (left_bytes > right_bytes) - (left_bytes < right_bytes)

    def compare_one_to_many(self, probe: object, keys: list[object]) -> list[int]:
        probe_bytes = self._envelope(probe)
        if self._column is not None and keys:
            record_leak(self._column, "det_equality", count=len(keys))
        return [
            (probe_bytes > kb) - (probe_bytes < kb)
            for kb in (self._envelope(key) for key in keys)
        ]

    @staticmethod
    def _envelope(value: object) -> bytes:
        if isinstance(value, Ciphertext):
            return value.envelope
        raise SqlError(
            f"DET index comparator expects ciphertext keys, got {type(value).__name__}"
        )


class EnclaveComparator:
    """Routes comparisons to the enclave (Figure 4); supports ranges.

    Raises :class:`~repro.errors.KeysUnavailableError` (from inside the
    enclave) when the CEK is not installed — the trigger for deferred
    transactions during recovery.
    """

    supports_range = True
    semantic_order = True

    def __init__(
        self,
        enclave: Enclave,
        cek_name: str,
        batch_probes: bool = True,
        column: str | None = None,
    ):
        self._enclave = enclave
        self._cek_name = cek_name
        self._batch_probes = batch_probes
        # When labelled, each comparison verdict (an ordering bit the host
        # observes in the clear) is charged to the leakage ledger.
        self._column = column

    @property
    def cek_name(self) -> str:
        return self._cek_name

    def rebind_cek(self, cek_name: str) -> None:
        """Follow an online rotation's metadata flip to the new CEK.

        Mid-rotation the tree still holds envelopes under the old key;
        those decrypt through the enclave's rotation-partner window until
        the job's final sweep has rewritten every entry.
        """
        self._cek_name = cek_name

    @property
    def batch_capable(self) -> bool:
        # Every comparison is an ecall; probing a whole node in one
        # compare_batch ecall amortizes the boundary crossing and decrypts
        # the probe once instead of once per separator. batch_probes=False
        # pins the paper's row-at-a-time behaviour (one compare per step).
        return self._batch_probes and hasattr(self._enclave, "compare_batch")

    def compare(self, left: object, right: object) -> int:
        if not isinstance(left, Ciphertext) or not isinstance(right, Ciphertext):
            raise SqlError("enclave comparator expects ciphertext keys on both sides")
        if self._column is not None:
            record_leak(self._column, "rnd_comparison")
        return self._enclave.compare(self._cek_name, left, right)

    def compare_one_to_many(self, probe: object, keys: list[object]) -> list[int]:
        if not isinstance(probe, Ciphertext) or not all(
            isinstance(key, Ciphertext) for key in keys
        ):
            raise SqlError("enclave comparator expects ciphertext keys on both sides")
        if not keys:
            return []
        if self._column is not None:
            record_leak(self._column, "rnd_comparison", count=len(keys))
        if not self.batch_capable:
            return [self._enclave.compare(self._cek_name, probe, key) for key in keys]
        return self._enclave.compare_batch(self._cek_name, probe, list(keys))


class _Sentinel:
    def __init__(self, name: str, sign: int):
        self.name = name
        self.sign = sign  # -1 sorts before everything, +1 after

    def __repr__(self) -> str:
        return self.name


# Open-interval markers for prefix scans over composite keys.
MIN_KEY = _Sentinel("MIN_KEY", -1)
MAX_KEY = _Sentinel("MAX_KEY", +1)


class CellComparator:
    """Wraps a value comparator with NULL and sentinel ordering.

    SQL index order: NULL sorts first; MIN_KEY/MAX_KEY bound everything.
    """

    def __init__(self, inner: KeyComparator):
        self._inner = inner

    @property
    def supports_range(self) -> bool:
        return self._inner.supports_range

    @property
    def semantic_order(self) -> bool:
        return getattr(self._inner, "semantic_order", True)

    @property
    def inner(self) -> KeyComparator:
        return self._inner

    @property
    def batch_capable(self) -> bool:
        return bool(getattr(self._inner, "batch_capable", False))

    def compare(self, left: object, right: object) -> int:
        if isinstance(left, _Sentinel) or isinstance(right, _Sentinel):
            left_rank = left.sign if isinstance(left, _Sentinel) else 0
            right_rank = right.sign if isinstance(right, _Sentinel) else 0
            return (left_rank > right_rank) - (left_rank < right_rank)
        if left is None or right is None:
            if left is None and right is None:
                return 0
            return -1 if left is None else 1
        return self._inner.compare(left, right)

    def compare_one_to_many(self, probe: object, keys: list[object]) -> list[int]:
        """Batched probe with identical NULL/sentinel semantics.

        Sentinel and NULL pairs are decided host-side (their order never
        depends on plaintext); only real value pairs reach the inner
        comparator, as one batched call when it supports that.
        """
        results: list[int] = [0] * len(keys)
        pending_indexes: list[int] = []
        pending_keys: list[object] = []
        for i, key in enumerate(keys):
            if (
                isinstance(probe, _Sentinel)
                or isinstance(key, _Sentinel)
                or probe is None
                or key is None
            ):
                results[i] = self.compare(probe, key)
            else:
                pending_indexes.append(i)
                pending_keys.append(key)
        if pending_keys:
            inner_batch = getattr(self._inner, "compare_one_to_many", None)
            if inner_batch is not None:
                outcomes = inner_batch(probe, pending_keys)
            else:
                outcomes = [self._inner.compare(probe, key) for key in pending_keys]
            for i, outcome in zip(pending_indexes, outcomes):
                results[i] = outcome
        return results


class CompositeComparator:
    """Lexicographic comparison of tuple keys, one comparator per column.

    A shorter tuple that is a prefix of a longer one compares *less*, so a
    bare prefix works directly as a lower bound, and prefix + ``MAX_KEY``
    as an upper bound.
    """

    def __init__(self, cells: list[CellComparator]):
        if not cells:
            raise SqlError("composite comparator needs at least one column")
        self._cells = cells

    @property
    def supports_range(self) -> bool:
        return all(cell.supports_range for cell in self._cells)

    @property
    def semantic_order(self) -> bool:
        return all(cell.semantic_order for cell in self._cells)

    @property
    def cells(self) -> list[CellComparator]:
        return list(self._cells)

    @property
    def batch_capable(self) -> bool:
        return any(getattr(cell, "batch_capable", False) for cell in self._cells)

    def compare(self, left: object, right: object) -> int:
        if not isinstance(left, tuple) or not isinstance(right, tuple):
            raise SqlError("composite comparator expects tuple keys")
        for i in range(min(len(left), len(right))):
            cell = self._cells[i] if i < len(self._cells) else self._cells[-1]
            c = cell.compare(left[i], right[i])
            if c != 0:
                return c
        return (len(left) > len(right)) - (len(left) < len(right))

    def compare_one_to_many(self, probe: object, keys: list[object]) -> list[int]:
        """Batched lexicographic probe, column depth by column depth.

        At each depth, keys still tied (all earlier columns equal) batch
        their column cell against the probe's in one call; a key whose
        length (or the probe's) is exhausted gets the length comparison,
        exactly like :meth:`compare`.
        """
        if not isinstance(probe, tuple) or not all(
            isinstance(key, tuple) for key in keys
        ):
            raise SqlError("composite comparator expects tuple keys")
        results: list[int] = [0] * len(keys)
        active = list(range(len(keys)))
        depth = 0
        while active:
            tied: list[int] = []
            batch_indexes: list[int] = []
            batch_cells: list[object] = []
            for i in active:
                key = keys[i]
                if depth >= len(probe) or depth >= len(key):
                    results[i] = (len(probe) > len(key)) - (len(probe) < len(key))
                else:
                    batch_indexes.append(i)
                    batch_cells.append(key[depth])
            if batch_indexes:
                cell = self._cells[depth] if depth < len(self._cells) else self._cells[-1]
                outcomes = cell.compare_one_to_many(probe[depth], batch_cells)
                for i, outcome in zip(batch_indexes, outcomes):
                    if outcome != 0:
                        results[i] = outcome
                    else:
                        tied.append(i)
            active = tied
            depth += 1
        return results


class CountingComparator:
    """Wraps any comparator and counts invocations (tests / Figure 4)."""

    def __init__(self, inner: KeyComparator, on_compare: Callable[[object, object, int], None] | None = None):
        self._inner = inner
        self.count = 0
        self._on_compare = on_compare

    @property
    def supports_range(self) -> bool:
        return self._inner.supports_range

    @property
    def semantic_order(self) -> bool:
        return getattr(self._inner, "semantic_order", True)

    @property
    def batch_capable(self) -> bool:
        return bool(getattr(self._inner, "batch_capable", False))

    def compare(self, left: object, right: object) -> int:
        result = self._inner.compare(left, right)
        self.count += 1
        if self._on_compare is not None:
            self._on_compare(left, right, result)
        return result

    def compare_one_to_many(self, probe: object, keys: list[object]) -> list[int]:
        inner_batch = getattr(self._inner, "compare_one_to_many", None)
        if inner_batch is None:
            return [self.compare(probe, key) for key in keys]
        outcomes = inner_batch(probe, keys)
        self.count += len(keys)
        if self._on_compare is not None:
            for key, result in zip(keys, outcomes):
                self._on_compare(probe, key, result)
        return outcomes
