"""A B+-tree with a pluggable key comparator.

One tree class serves all three index flavours — plaintext, DET equality,
and RND range — because, as the paper stresses, "the vast majority of
index processing ... remains unaffected by encryption": only the
comparator changes. Keys may be plaintext scalars or ciphertext envelopes;
values are heap :class:`~repro.sqlengine.storage.heap.RowId`s. Duplicate
keys are allowed (non-unique indexes) unless ``unique`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConstraintError, SqlError
from repro.obs.latchprof import TimedLatch
from repro.obs.leakage import record_leak
from repro.obs.metrics import get_registry
from repro.sqlengine.index.comparators import KeyComparator
from repro.sqlengine.storage.heap import RowId

DEFAULT_ORDER = 32

# Shared across all trees: root-to-leaf node touches. Batched one inc per
# descent, so the hot search path pays a single counter update.
_nodes_visited = get_registry().counter(
    "index.nodes_visited", help="B+-tree nodes touched during descents"
)


@dataclass
class _Leaf:
    keys: list[object] = field(default_factory=list)
    rids: list[RowId] = field(default_factory=list)
    next: "_Leaf | None" = None

    is_leaf = True


@dataclass
class _Internal:
    # children[i] covers keys < keys[i]; children[-1] covers the rest.
    keys: list[object] = field(default_factory=list)
    children: list[object] = field(default_factory=list)

    is_leaf = False


class BPlusTree:
    """B+-tree keyed through an injected comparator."""

    def __init__(
        self,
        comparator: KeyComparator,
        order: int = DEFAULT_ORDER,
        unique: bool = False,
        leak_column: str | None = None,
    ):
        if order < 4:
            raise SqlError("B+-tree order must be at least 4")
        self.comparator = comparator
        self.order = order
        self.unique = unique
        # For indexes over encrypted columns: each descent's node touches
        # are an adversary-observable access pattern, charged per column.
        self._leak_column = leak_column
        # Batch-capable comparators (enclave-backed) pay a boundary crossing
        # per comparison: probe a whole node's keys in one compare_batch
        # ecall instead of O(log n) single-compare ecalls per node.
        self._batch_probe = bool(getattr(comparator, "batch_capable", False))
        self._root: _Leaf | _Internal = _Leaf()
        self._size = 0
        # Whole-tree latch: structure modifications (splits) invalidate
        # concurrent descents, so readers and writers both take it. The
        # comparator may call into the enclave gateway while held, which
        # is why the declared latch order puts btree above Enclave.
        self._latch = TimedLatch("repro.sqlengine.index.btree.BPlusTree._latch")

    def __len__(self) -> int:
        return self._size

    # -- search ------------------------------------------------------------

    def _find_leaf_for_insert(self, key: object) -> _Leaf:
        node = self._root
        visited = 1
        while not node.is_leaf:
            idx = self._upper_bound(node.keys, key)
            node = node.children[idx]
            visited += 1
        _nodes_visited.inc(visited)
        if self._leak_column is not None:
            record_leak(self._leak_column, "index_touch", count=visited)
        return node  # type: ignore[return-value]

    def _find_leaf_for_search(self, key: object) -> _Leaf:
        # Descend via lower bound: a separator equal to the key may have
        # equal keys remaining in the left subtree (duplicates split across
        # leaves), so search starts at the leftmost candidate leaf and
        # walks right through the leaf chain.
        node = self._root
        visited = 1
        while not node.is_leaf:
            idx = self._lower_bound(node.keys, key)
            node = node.children[idx]
            visited += 1
        _nodes_visited.inc(visited)
        if self._leak_column is not None:
            record_leak(self._leak_column, "index_touch", count=visited)
        return node  # type: ignore[return-value]

    def _lower_bound(self, keys: list[object], key: object) -> int:
        """First index i with keys[i] >= key."""
        if self._batch_probe and len(keys) > 1:
            # One batched probe against the whole node. outcome[i] is
            # compare(key, keys[i]); keys[i] >= key ⇔ outcome[i] <= 0.
            # The extra outcomes this reveals are already determined by
            # binary-search leakage plus the build-time total order
            # (see docs/PERF.md), so the adversary learns nothing new.
            outcomes = self.comparator.compare_one_to_many(key, keys)
            for i, outcome in enumerate(outcomes):
                if outcome <= 0:
                    return i
            return len(keys)
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.comparator.compare(keys[mid], key) < 0:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _upper_bound(self, keys: list[object], key: object) -> int:
        """First index i with keys[i] > key."""
        if self._batch_probe and len(keys) > 1:
            # keys[i] > key ⇔ compare(key, keys[i]) < 0.
            outcomes = self.comparator.compare_one_to_many(key, keys)
            for i, outcome in enumerate(outcomes):
                if outcome < 0:
                    return i
            return len(keys)
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.comparator.compare(keys[mid], key) <= 0:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def search_eq(self, key: object) -> list[RowId]:
        """All rids whose key equals ``key``."""
        with self._latch:
            leaf = self._find_leaf_for_search(key)
            results: list[RowId] = []
            idx = self._lower_bound(leaf.keys, key)
            while True:
                while idx < len(leaf.keys):
                    c = self.comparator.compare(leaf.keys[idx], key)
                    if c == 0:
                        results.append(leaf.rids[idx])
                        idx += 1
                    elif c > 0:
                        return results
                    else:  # pragma: no cover - lower_bound guarantees >= key
                        idx += 1
                if leaf.next is None:
                    return results
                leaf = leaf.next
                idx = 0

    def range_scan(
        self,
        low: object | None = None,
        high: object | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[object, RowId]]:
        """Yield (key, rid) pairs in key order within [low, high]."""
        if not self.comparator.supports_range:
            raise SqlError(
                "range scans are not supported on this index "
                "(ciphertext order is not plaintext order)"
            )
        # Materialize under the latch, yield outside: leaf-chain walks must
        # not interleave with splits, but consumers may be slow.
        results: list[tuple[object, RowId]] = []
        with self._latch:
            if low is None:
                leaf = self._leftmost_leaf()
                idx = 0
            else:
                leaf = self._find_leaf_for_search(low)
                idx = (
                    self._lower_bound(leaf.keys, low)
                    if low_inclusive
                    else self._upper_bound(leaf.keys, low)
                )
            while leaf is not None:
                while idx < len(leaf.keys):
                    key = leaf.keys[idx]
                    if high is not None:
                        c = self.comparator.compare(key, high)
                        if c > 0 or (c == 0 and not high_inclusive):
                            leaf = None
                            break
                    results.append((key, leaf.rids[idx]))
                    idx += 1
                else:
                    leaf = leaf.next
                    idx = 0
        yield from results

    def scan_all(self) -> Iterator[tuple[object, RowId]]:
        """Every (key, rid) in comparator order (works for any comparator)."""
        results: list[tuple[object, RowId]] = []
        with self._latch:
            leaf = self._leftmost_leaf()
            while leaf is not None:
                results.extend(zip(leaf.keys, leaf.rids))
                leaf = leaf.next
        yield from results

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node  # type: ignore[return-value]

    # -- insert --------------------------------------------------------------

    def insert(self, key: object, rid: RowId) -> None:
        """Insert one entry; enforces uniqueness if configured."""
        with self._latch:
            if self.unique and self.search_eq(key):
                raise ConstraintError("duplicate key in unique index")
            split = self._insert_into(self._root, key, rid)
            if split is not None:
                sep_key, right = split
                new_root = _Internal(keys=[sep_key], children=[self._root, right])
                self._root = new_root
            self._size += 1

    def _insert_into(self, node, key: object, rid: RowId):
        if node.is_leaf:
            idx = self._upper_bound(node.keys, key)
            node.keys.insert(idx, key)
            node.rids.insert(idx, rid)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = self._upper_bound(node.keys, key)
        split = self._insert_into(node.children[idx], key, rid)
        if split is not None:
            sep_key, right = split
            node.keys.insert(idx, sep_key)
            node.children.insert(idx + 1, right)
            if len(node.children) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf(keys=leaf.keys[mid:], rids=leaf.rids[mid:], next=leaf.next)
        leaf.keys = leaf.keys[:mid]
        leaf.rids = leaf.rids[:mid]
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Internal(keys=node.keys[mid + 1 :], children=node.children[mid + 1 :])
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_key, right

    # -- delete --------------------------------------------------------------

    def delete(self, key: object, rid: RowId) -> bool:
        """Remove the entry (key, rid); returns False if absent.

        Underflowed leaves are left sparse rather than rebalanced — search
        correctness is unaffected, and the simulation does not model page
        occupancy.
        """
        with self._latch:
            leaf = self._find_leaf_for_search(key)
            idx = self._lower_bound(leaf.keys, key)
            while True:
                while idx < len(leaf.keys):
                    c = self.comparator.compare(leaf.keys[idx], key)
                    if c > 0:
                        return False
                    if c == 0 and leaf.rids[idx] == rid:
                        del leaf.keys[idx]
                        del leaf.rids[idx]
                        self._size -= 1
                        return True
                    idx += 1
                if leaf.next is None:
                    return False
                leaf = leaf.next
                idx = 0

    # -- bulk build ------------------------------------------------------------

    def bulk_build(self, entries: list[tuple[object, RowId]]) -> None:
        """Build from scratch by sorted insertion (index build = sort;
        the data-ordering leakage the paper notes for index builds)."""
        import functools

        with self._latch:
            if self._size:
                raise SqlError("bulk_build requires an empty tree")
            ordered = sorted(
                entries, key=functools.cmp_to_key(lambda a, b: self.comparator.compare(a[0], b[0]))
            )
            for key, rid in ordered:
                # Entries are pre-sorted; plain inserts keep costs low and the
                # comparator count realistic for a build-by-sort.
                if self.unique and self.search_eq(key):
                    raise ConstraintError("duplicate key in unique index")
                split = self._insert_into(self._root, key, rid)
                if split is not None:
                    sep_key, right = split
                    self._root = _Internal(keys=[sep_key], children=[self._root, right])
                self._size += 1

    # -- structural introspection (Figure 4 style walkthroughs) -----------------

    def leaf_keys(self) -> list[list[object]]:
        """Keys per leaf, left to right."""
        with self._latch:
            out: list[list[object]] = []
            leaf = self._leftmost_leaf()
            while leaf is not None:
                out.append(list(leaf.keys))
                leaf = leaf.next
            return out

    def height(self) -> int:
        with self._latch:
            height = 1
            node = self._root
            while not node.is_leaf:
                height += 1
                node = node.children[0]
            return height
