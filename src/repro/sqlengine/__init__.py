"""The from-scratch SQL engine substrate.

Subpackages: ``sqlparser`` (lexer/AST/parser), ``expression`` (ES stack
machine), ``storage`` (pages/heap/buffer pool/WAL), ``index`` (B+-trees),
``txn`` (locks/transactions), ``exec`` (planner/executor); modules:
``catalog``, ``types``, ``lattice``, ``typededuce``, ``engine``, ``server``.

Heavier modules (``engine``, ``server``) are exported lazily to avoid a
circular import with :mod:`repro.enclave`, whose program validator uses the
expression-services stack machine defined here (the same "one source, two
binaries" sharing the paper describes).
"""

from repro.sqlengine.catalog import Catalog, ColumnSchema, IndexSchema, TableSchema
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.types import ColumnType, EncryptionInfo, SqlType

__all__ = [
    "Catalog",
    "Ciphertext",
    "ColumnSchema",
    "ColumnType",
    "DescribeResult",
    "EncryptionInfo",
    "IndexSchema",
    "IndexState",
    "ServerSession",
    "SqlServer",
    "SqlType",
    "StorageEngine",
    "TableSchema",
]

_LAZY = {
    "IndexState": ("repro.sqlengine.engine", "IndexState"),
    "StorageEngine": ("repro.sqlengine.engine", "StorageEngine"),
    "DescribeResult": ("repro.sqlengine.server", "DescribeResult"),
    "ServerSession": ("repro.sqlengine.server", "ServerSession"),
    "SqlServer": ("repro.sqlengine.server", "SqlServer"),
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
