"""Transaction objects and lifecycle."""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field

from repro.sqlengine.storage.heap import RowId


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"
    # A recovery transaction whose undo needs enclave keys that are not
    # present (Section 4.5). Holds its locks until resolved or forced.
    DEFERRED = "deferred"
    # A two-phase-commit participant that has durably logged PREPARE and
    # awaits the coordinator's decision. Holds its locks; survives crashes
    # as an *in-doubt* transaction until commit_prepared/abort_prepared.
    PREPARED = "prepared"


@dataclass
class UndoEntry:
    """One logged modification, with images for logical undo."""

    op: str                    # "insert" | "delete" | "update"
    table: str
    rid: RowId
    before: tuple | None      # row image before (None for insert)
    after: tuple | None       # row image after (None for delete)


@dataclass
class Transaction:
    txn_id: int
    state: TxnState = TxnState.ACTIVE
    undo_log: list[UndoEntry] = field(default_factory=list)
    touched_tables: set[str] = field(default_factory=set)
    # Whether the BEGIN record has been written to the WAL. Kept per-txn
    # (instead of an engine-global set) so concurrent sessions don't share
    # mutable bookkeeping state.
    begin_logged: bool = False

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE


class TransactionManager:
    """Allocates transaction ids and tracks live transactions."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._live: dict[int, Transaction] = {}
        self._lock = threading.Lock()

    def begin(self) -> Transaction:
        txn = Transaction(txn_id=next(self._ids))
        with self._lock:
            self._live[txn.txn_id] = txn
        return txn

    def adopt(self, txn: Transaction) -> None:
        """Track a transaction reconstructed by recovery."""
        with self._lock:
            self._live[txn.txn_id] = txn
        self.advance_past(txn.txn_id)

    def advance_past(self, txn_id: int) -> None:
        """Never hand out ids at or below ``txn_id``.

        Recovery calls this with the highest txn id in the WAL: reusing a
        logged id would make the next recovery conflate the old records
        with the new transaction's (and share its re-held locks).
        """
        with self._lock:
            while True:
                peek = next(self._ids)
                if peek > txn_id:
                    self._ids = itertools.count(peek)
                    break

    def finish(self, txn: Transaction, state: TxnState) -> None:
        txn.state = state
        with self._lock:
            self._live.pop(txn.txn_id, None)

    def live_transactions(self) -> list[Transaction]:
        with self._lock:
            return list(self._live.values())

    def get(self, txn_id: int) -> Transaction | None:
        with self._lock:
            return self._live.get(txn_id)
