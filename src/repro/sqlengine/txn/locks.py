"""A lock manager with shared/exclusive row and table locks.

Deadlocks are handled by timeout (the workload transactions acquire locks
in consistent orders, so timeouts indicate either contention with a
*deferred* transaction — the Section 4.5 scenario — or a genuine cycle).
"""

from __future__ import annotations

import enum
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import LockTimeoutError
from repro.obs.flightrec import record_event
from repro.obs.latchprof import get_latch_profiler
from repro.obs.metrics import get_registry

#: The lock-order identity of the manager's condition variable — the same
#: name the static analyzer derives, so the runtime contention profile and
#: the declared hierarchy line up.
_LOCK_ID = "repro.sqlengine.txn.locks.LockManager._cond"

Resource = tuple  # ("table", name) or ("row", table, rid)


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _LockState:
    mode: LockMode | None = None
    holders: set[int] = field(default_factory=set)


class LockManager:
    """Grants S/X locks on opaque resource tuples."""

    def __init__(self, default_timeout_s: float = 2.0):
        self._states: dict[Resource, _LockState] = defaultdict(_LockState)
        self._held: dict[int, set[Resource]] = defaultdict(set)
        self._cond = threading.Condition()
        self.default_timeout_s = default_timeout_s
        registry = get_registry()
        self._acquired = registry.counter("locks.acquired")
        self._waits = registry.counter("locks.waits")
        self._timeouts = registry.counter("locks.timeouts")
        self._wait_hist = registry.histogram(
            "locks.wait_seconds", help="time blocked waiting for a lock grant"
        )

    def acquire(
        self,
        txn_id: int,
        resource: Resource,
        mode: LockMode,
        timeout_s: float | None = None,
    ) -> None:
        """Block until the lock is granted; raise on timeout."""
        deadline = None
        wait_started = None
        timeout = self.default_timeout_s if timeout_s is None else timeout_s
        with self._cond:
            while True:
                state = self._states[resource]
                if self._compatible(state, txn_id, mode):
                    state.holders.add(txn_id)
                    if mode is LockMode.EXCLUSIVE or state.mode is None:
                        state.mode = (
                            LockMode.EXCLUSIVE
                            if mode is LockMode.EXCLUSIVE or state.mode is LockMode.EXCLUSIVE
                            else LockMode.SHARED
                        )
                    self._held[txn_id].add(resource)
                    self._acquired.inc()
                    if wait_started is not None:
                        waited = time.monotonic() - wait_started
                        self._wait_hist.observe(waited)
                        get_latch_profiler().record_wait(_LOCK_ID, waited)
                        record_event(
                            "lock.wait",
                            resource=repr(resource),
                            mode=mode.value,
                            duration_s=waited,
                        )
                    return
                if deadline is None:
                    wait_started = time.monotonic()
                    deadline = wait_started + timeout
                    self._waits.inc()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._timeouts.inc()
                    waited = time.monotonic() - wait_started
                    self._wait_hist.observe(waited)
                    get_latch_profiler().record_wait(_LOCK_ID, waited)
                    record_event(
                        "lock.timeout",
                        resource=repr(resource),
                        mode=mode.value,
                        duration_s=waited,
                    )
                    raise LockTimeoutError(
                        f"txn {txn_id} timed out waiting for {mode.value} lock on {resource}"
                    )
                self._cond.wait(timeout=remaining)

    @staticmethod
    def _compatible(state: _LockState, txn_id: int, mode: LockMode) -> bool:
        if not state.holders:
            return True
        if state.holders == {txn_id}:
            return True  # upgrade / re-entrant
        if mode is LockMode.SHARED and state.mode is LockMode.SHARED:
            return True
        return False

    def release_all(self, txn_id: int) -> None:
        with self._cond:
            for resource in self._held.pop(txn_id, set()):
                state = self._states.get(resource)
                if state is None:
                    continue
                state.holders.discard(txn_id)
                if not state.holders:
                    state.mode = None
                    self._states.pop(resource, None)
                elif state.holders and state.mode is LockMode.EXCLUSIVE:
                    # Sole-holder X may remain only if a single holder is left.
                    if len(state.holders) > 1:
                        state.mode = LockMode.SHARED
            self._cond.notify_all()

    def held_by(self, txn_id: int) -> set[Resource]:
        with self._cond:
            return set(self._held.get(txn_id, set()))

    def is_locked(self, resource: Resource) -> bool:
        with self._cond:
            state = self._states.get(resource)
            return bool(state and state.holders)

    def rehold(self, txn_id: int, resources: set[Resource]) -> None:
        """Re-grant locks to a transaction (recovery re-acquires the locks
        a deferred transaction held before the crash)."""
        with self._cond:
            for resource in resources:
                state = self._states[resource]
                state.holders.add(txn_id)
                state.mode = LockMode.EXCLUSIVE
                self._held[txn_id].add(resource)
