"""Transactions: locks, lifecycle, and recovery support."""

from repro.sqlengine.txn.locks import LockManager, LockMode
from repro.sqlengine.txn.transaction import (
    Transaction,
    TransactionManager,
    TxnState,
    UndoEntry,
)

__all__ = [
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "UndoEntry",
]
