"""Online key-lifecycle jobs: CEK rotation and initial encryption.

Section 2.4.2 of the paper moves initial encryption and key rotation
in-enclave so data never leaves the server. This module makes those
operations *online*: a :class:`KeyRotationJob` (or its sibling
:class:`InitialEncryptionJob`) walks a column batch-at-a-time through the
enclave's batched recrypt ecall while concurrent sessions keep reading
and writing the table.

The moving parts, in the order a rotation touches them:

* **Begin** — a ``ROTATE_BEGIN`` record (txn 0, like CHECKPOINT) carrying
  the encoded :class:`RotationDescriptor` is flushed *before* any state
  changes, then the catalog gains a
  :class:`~repro.sqlengine.catalog.ColumnRotationState` and the column's
  metadata flips to the new CEK. From that point new DML encrypts under
  the new key while old rows are still under the old one — the
  mixed-version window the driver resolves per cell by MAC probe.
* **Batch** — lock a batch of rows, re-read under lock, push their cells
  through ``recrypt_batch_for_ddl`` (one boundary crossing; cells
  already under the new key pass through unchanged, which makes replay
  idempotent), update the rows in one ordinary transaction, commit, then
  checkpoint a ``ROTATE_PROGRESS`` record with the cumulative watermark.
* **Sweep convergence** — the job keeps sweeping the heap until a full
  sweep changes nothing: racing writers holding stale metadata may still
  land old-key cells behind the cursor, and only a clean sweep proves
  the terminal all-new state.
* **End** — ``ROTATE_END`` carrying the new CEK *version* is flushed
  first (the durable form of the version bump), then the catalog bump is
  applied, then the freshness anchor witnesses it. A crash anywhere in
  that tail leaves the catalog at-or-ahead of the anchor — adopted at
  the next verify, never a false positive — while a restore to a
  pre-rotation image reports a version *below* what the anchor holds and
  is refused (``cek.version:<name>``), independently of the WAL-chain
  fork the same restore causes.

Crash recovery (:meth:`StorageEngine.recover` step 4c) replays this
state machine from the durable records alone: an un-ended rotation is
reinstated at its checkpointed watermark via :func:`reinstate_rotation`,
an ended one re-applies the version bump via ``ensure_cek_version``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.crypto.aead import EncryptionScheme
from repro.errors import BindError, LockTimeoutError, SqlError
from repro.faults.registry import fault_point, register_fault_site
from repro.obs.flightrec import record_event
from repro.sqlengine.catalog import ColumnRotationState
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.storage.wal import LogOp
from repro.sqlengine.values import serialize_value

if TYPE_CHECKING:
    from repro.sqlengine.engine import StorageEngine

register_fault_site(
    "rotation.begin",
    "a lifecycle job about to flush its ROTATE_BEGIN record",
)
register_fault_site(
    "rotation.batch",
    "one rotation batch about to lock/recrypt/commit",
)
register_fault_site(
    "rotation.checkpoint",
    "a ROTATE_PROGRESS checkpoint about to flush (batch already committed)",
)
register_fault_site(
    "rotation.end",
    "rotation completion: before ROTATE_END flushes (all rows converted)",
)

#: One sweep's batch size if the caller does not choose one.
DEFAULT_BATCH_SIZE = 64

_FIELD_SEP = "\x1f"


@dataclass(frozen=True)
class RotationDescriptor:
    """The durable identity of a rotation, carried by ROTATE_BEGIN."""

    table: str
    column: str
    old_cek: str
    new_cek: str
    scheme: EncryptionScheme
    kind: str = "rotate"  # "rotate" | "encrypt"


@dataclass
class RotationStatus:
    """One lifecycle job's observable progress (also a wire struct)."""

    rotation_id: str
    table: str
    column: str
    old_cek: str
    new_cek: str
    kind: str
    watermark: int
    rows_rotated: int
    active: bool


def encode_rotation_descriptor(descriptor: RotationDescriptor) -> bytes:
    return _FIELD_SEP.join(
        (
            descriptor.table,
            descriptor.column,
            descriptor.old_cek,
            descriptor.new_cek,
            descriptor.scheme.name,
            descriptor.kind,
        )
    ).encode("utf-8")


def decode_rotation_descriptor(blob: bytes) -> RotationDescriptor:
    parts = blob.decode("utf-8").split(_FIELD_SEP)
    if len(parts) != 6:
        raise SqlError(f"malformed rotation descriptor ({len(parts)} fields)")
    table, column, old_cek, new_cek, scheme_name, kind = parts
    return RotationDescriptor(
        table=table,
        column=column,
        old_cek=old_cek,
        new_cek=new_cek,
        scheme=EncryptionScheme[scheme_name],
        kind=kind,
    )


def encode_watermark(value: int) -> bytes:
    return value.to_bytes(8, "big", signed=True)


def _flip_column_metadata(
    engine: "StorageEngine", descriptor: RotationDescriptor
) -> None:
    """Point the column's catalog metadata at the new CEK (idempotent)."""
    engine.catalog.set_column_encryption(
        descriptor.table,
        descriptor.column,
        engine.catalog.encryption_info(descriptor.new_cek, descriptor.scheme),
    )
    engine.rebind_index_cek(descriptor.table, descriptor.column, descriptor.new_cek)


def reinstate_rotation(
    engine: "StorageEngine",
    rotation_id: str,
    descriptor: RotationDescriptor,
    watermark: int,
) -> ColumnRotationState:
    """Recovery replay of a durable ROTATE_BEGIN without its ROTATE_END.

    The durable records are authoritative over whatever the in-memory
    catalog still believes: the rotation state is (re)installed at the
    checkpointed watermark and the column's metadata re-flipped — both
    idempotent, so recovering twice lands in the same place. The resumed
    job re-sweeps from the heap's start; the enclave's pass-through makes
    re-processing already-converted cells a no-op.
    """
    existing = engine.catalog.column_rotation(descriptor.table, descriptor.column)
    if existing is not None and existing.rotation_id != rotation_id:
        # A stale in-memory rotation from before the restore; the WAL wins.
        engine.catalog.finish_column_rotation(existing.rotation_id)
        existing = None
    if existing is None:
        state = ColumnRotationState(
            rotation_id=rotation_id,
            table=descriptor.table,
            column=descriptor.column,
            old_cek=descriptor.old_cek,
            new_cek=descriptor.new_cek,
            watermark=watermark,
            kind=descriptor.kind,
        )
        engine.catalog.begin_column_rotation(state)
    else:
        state = existing
        engine.catalog.advance_rotation(rotation_id, watermark)
    _flip_column_metadata(engine, descriptor)
    record_event("rotation.resume", rotation_id=rotation_id, watermark=watermark)
    return state


class KeyLifecycleJob:
    """Base class: the online batch-at-a-time column conversion loop.

    Driven by :meth:`step` (one batch per call, so a server can interleave
    it with regular traffic or a wire client can drive it remotely) or
    :meth:`run` (to completion). ``query_text`` is the client-authorized
    DDL text gating the enclave's recrypt/encrypt oracle — the job cannot
    touch plaintext without an attested session having authorized exactly
    this statement.
    """

    kind = "rotate"

    def __init__(
        self,
        engine: "StorageEngine",
        rotation_id: str,
        query_text: str,
        table: str,
        column: str,
        new_cek: str,
        batch_size: int = DEFAULT_BATCH_SIZE,
        scheme: EncryptionScheme | None = None,
    ):
        if batch_size < 1:
            raise SqlError("rotation batch size must be >= 1")
        self.engine = engine
        self.rotation_id = rotation_id
        self.query_text = query_text
        self.table = table
        self.column = column
        self.new_cek = new_cek
        self.batch_size = batch_size
        self._scheme = scheme
        self.done = False
        self._old_cek = ""
        #: (page_id, slot) of the last row the current sweep considered.
        self._cursor: tuple[int, int] | None = None
        self._changed_in_sweep = 0
        self._rows_rotated = 0
        self._watermark = -1

    # -- subclass hooks ----------------------------------------------------

    def _descriptor(self) -> RotationDescriptor:
        """Validate preconditions and build the durable descriptor."""
        raise NotImplementedError

    def _needs_conversion(self, cell) -> bool:
        raise NotImplementedError

    def _convert(self, state: ColumnRotationState, cells: list) -> list[Ciphertext]:
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------

    def begin(self) -> str:
        """Durably start the rotation and flip the column's metadata.

        Ordering: the ROTATE_BEGIN flush lands *before* any catalog
        mutation, so a crash during begin leaves either no trace (record
        not durable — nothing to resume) or a durable record recovery
        reinstates — never a catalog rotation with no durable anchor.
        """
        engine = self.engine
        descriptor = self._descriptor()
        if engine.catalog.column_rotation(self.table, self.column) is not None:
            raise SqlError(
                f"column {self.table}.{self.column} already under rotation"
            )
        fault_point("rotation.begin", rotation_id=self.rotation_id)
        engine.wal.append(
            0,
            LogOp.ROTATE_BEGIN,
            table=self.rotation_id,
            after=encode_rotation_descriptor(descriptor),
        )
        engine.wal.flush()
        state = ColumnRotationState(
            rotation_id=self.rotation_id,
            table=descriptor.table,
            column=descriptor.column,
            old_cek=descriptor.old_cek,
            new_cek=descriptor.new_cek,
            kind=descriptor.kind,
        )
        self._old_cek = descriptor.old_cek
        engine.catalog.begin_column_rotation(state)
        _flip_column_metadata(engine, descriptor)
        # Indexes keyed on the column now hold envelopes under both CEKs;
        # the enclave's comparison ecalls need the pair to probe both.
        if engine.enclave is not None and descriptor.old_cek:
            engine.enclave.begin_rotation(descriptor.old_cek, descriptor.new_cek)
        record_event(
            "rotation.begin", rotation_id=self.rotation_id, job=descriptor.kind
        )
        return self.rotation_id

    def resume(self) -> None:
        """Adopt a recovery-reinstated rotation (fresh sweep from the top)."""
        state = self.engine.catalog.rotation(self.rotation_id)
        self._old_cek = state.old_cek
        # Re-open the enclave's mixed-key comparison window: a process
        # restart started from an enclave with no registered pairs.
        if self.engine.enclave is not None and state.old_cek:
            self.engine.enclave.begin_rotation(state.old_cek, state.new_cek)
        self._watermark = state.watermark
        self._rows_rotated = max(0, state.rows_rotated)
        self._cursor = None
        self._changed_in_sweep = 0
        self.done = False

    def step(self) -> tuple[bool, int]:
        """Convert one batch. Returns ``(more_work, rows_changed)``.

        A lock timeout aborts only the current batch (the job retries the
        same region on the next call); every committed batch is followed
        by a flushed ROTATE_PROGRESS checkpoint, so crash recovery never
        loses more than the in-flight batch — and that batch's row
        updates were transactional, so it is all-or-nothing too.
        """
        if self.done:
            return (False, 0)
        engine = self.engine
        try:
            state = engine.catalog.rotation(self.rotation_id)
        except BindError:
            self.done = True
            return (False, 0)
        table = engine.table(state.table)
        slot = table.schema.column_index(state.column)

        batch: list = []
        for rid, row in engine.scan(state.table):
            key = (rid.page_id, rid.slot)
            if self._cursor is not None and key <= self._cursor:
                continue
            batch.append(rid)
            if len(batch) >= self.batch_size:
                break
        if not batch:
            if self._changed_in_sweep:
                # Racing writers may have landed old-key cells behind the
                # cursor; only a clean sweep proves terminal all-new.
                self._cursor = None
                self._changed_in_sweep = 0
                return (True, 0)
            self._finish(state)
            return (False, 0)

        fault_point(
            "rotation.batch", rotation_id=self.rotation_id, size=len(batch)
        )
        txn = engine.begin()
        try:
            targets: list = []
            for rid in batch:
                engine.lock_row(txn, state.table, rid)
                # Re-read under lock: the scan was unlocked and the row
                # may have moved on (or away) since.
                row = engine.read(state.table, rid)
                if row is not None and self._needs_conversion(row[slot]):
                    targets.append((rid, row))
            outputs = (
                self._convert(state, [row[slot] for _, row in targets])
                if targets
                else []
            )
            changed = 0
            for (rid, row), new_cell in zip(targets, outputs):
                old_cell = row[slot]
                if (
                    isinstance(old_cell, Ciphertext)
                    and new_cell.envelope == old_cell.envelope
                ):
                    continue  # passed through: already under the new key
                engine.update(
                    txn, state.table, rid, row[:slot] + (new_cell,) + row[slot + 1 :]
                )
                changed += 1
            engine.commit(txn)
        except LockTimeoutError:
            engine.abort(txn)
            return (True, 0)
        except BaseException:
            try:
                engine.abort(txn)
            except Exception:
                pass  # a forced crash may already have wedged the engine
            raise

        self._cursor = (batch[-1].page_id, batch[-1].slot)
        self._changed_in_sweep += changed
        self._rows_rotated += changed
        self._watermark = max(self._watermark, 0) + changed
        state.rows_rotated = self._rows_rotated

        # Checkpoint: the batch's row updates are durable (commit flushed),
        # now make the progress watermark durable too. A crash between the
        # two replays the batch — idempotent via enclave pass-through.
        fault_point(
            "rotation.checkpoint",
            rotation_id=self.rotation_id,
            watermark=self._watermark,
        )
        engine.wal.append(
            0,
            LogOp.ROTATE_PROGRESS,
            table=self.rotation_id,
            after=encode_watermark(self._watermark),
        )
        engine.wal.flush()
        engine.catalog.advance_rotation(self.rotation_id, self._watermark)
        record_event(
            "rotation.batch",
            rotation_id=self.rotation_id,
            rows=changed,
            watermark=self._watermark,
        )
        return (True, changed)

    def run(self) -> int:
        """Drive the job to completion; returns total rows converted."""
        while self.step()[0]:
            pass
        return self._rows_rotated

    def _finish(self, state: ColumnRotationState) -> None:
        """Durably complete: END record, version bump, anchor witness.

        The ROTATE_END flush is the durable form of the CEK version bump
        and strictly precedes the anchor witness — the ordering that
        keeps the catalog at-or-ahead of the anchor under any crash.
        """
        engine = self.engine
        fault_point("rotation.end", rotation_id=self.rotation_id)
        target = engine.catalog.cek_version(state.new_cek) + 1
        engine.wal.append(
            0,
            LogOp.ROTATE_END,
            table=self.rotation_id,
            after=encode_watermark(target),
        )
        engine.wal.flush()
        version = engine.catalog.ensure_cek_version(state.new_cek, target)
        if engine.freshness is not None:
            engine.freshness.witness_cek_version(state.new_cek, version)
        engine.catalog.finish_column_rotation(self.rotation_id)
        if engine.enclave is not None and state.old_cek:
            engine.enclave.end_rotation(state.old_cek, state.new_cek)
        self.done = True
        record_event(
            "rotation.end",
            rotation_id=self.rotation_id,
            rows=self._rows_rotated,
            version=version,
        )

    def status(self) -> RotationStatus:
        state = None
        try:
            state = self.engine.catalog.rotation(self.rotation_id)
        except BindError:
            pass
        return RotationStatus(
            rotation_id=self.rotation_id,
            table=self.table,
            column=self.column,
            old_cek=state.old_cek if state else self._old_cek,
            new_cek=self.new_cek,
            kind=self.kind,
            watermark=state.watermark if state else self._watermark,
            rows_rotated=self._rows_rotated,
            active=not self.done,
        )


class KeyRotationJob(KeyLifecycleJob):
    """Re-encrypt one encrypted column from its current CEK to a new one."""

    kind = "rotate"

    def _descriptor(self) -> RotationDescriptor:
        schema = self.engine.catalog.table(self.table)
        column = schema.column(self.column)
        encryption = column.column_type.encryption
        if encryption is None:
            raise SqlError(
                f"column {self.table}.{self.column} is not encrypted; use "
                "an initial-encryption job to encrypt it online"
            )
        if encryption.cek_name == self.new_cek:
            raise SqlError(
                f"column {self.table}.{self.column} is already under CEK "
                f"{self.new_cek!r}"
            )
        self.engine.catalog.cek(self.new_cek)
        return RotationDescriptor(
            table=schema.name,
            column=column.name,
            old_cek=encryption.cek_name,
            new_cek=self.new_cek,
            scheme=self._scheme or encryption.scheme,
            kind=self.kind,
        )

    def _needs_conversion(self, cell) -> bool:
        # Every non-NULL ciphertext goes through the enclave; cells already
        # under the new key come back unchanged (pass-through), so the
        # sweep's convergence check still sees them as untouched.
        return isinstance(cell, Ciphertext)

    def _convert(self, state: ColumnRotationState, cells: list) -> list[Ciphertext]:
        if self.engine.enclave is None:
            raise SqlError("online key rotation requires an enclave")
        scheme = self._scheme or self.engine.catalog.table(state.table).column(
            state.column
        ).column_type.encryption.scheme
        return self.engine.enclave.recrypt_batch_for_ddl(
            self.query_text, state.old_cek, state.new_cek, cells, scheme
        )


class InitialEncryptionJob(KeyLifecycleJob):
    """Encrypt a plaintext column online (the paper's initial encryption).

    The column's metadata flips to encrypted at begin, so new DML arrives
    as ciphertext while the sweep converts the plaintext backlog; the
    engine's row validation tolerates plaintext cells exactly while this
    job's rotation state is active.
    """

    kind = "encrypt"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if self._scheme is None:
            raise SqlError("initial encryption requires an explicit scheme")

    def _descriptor(self) -> RotationDescriptor:
        schema = self.engine.catalog.table(self.table)
        column = schema.column(self.column)
        if column.column_type.encryption is not None:
            raise SqlError(
                f"column {self.table}.{self.column} is already encrypted"
            )
        self.engine.catalog.cek(self.new_cek)
        return RotationDescriptor(
            table=schema.name,
            column=column.name,
            old_cek="",
            new_cek=self.new_cek,
            scheme=self._scheme,
            kind=self.kind,
        )

    def _needs_conversion(self, cell) -> bool:
        return cell is not None and not isinstance(cell, Ciphertext)

    def _convert(self, state: ColumnRotationState, cells: list) -> list[Ciphertext]:
        if self.engine.enclave is None:
            raise SqlError("online initial encryption requires an enclave")
        return [
            self.engine.enclave.encrypt_for_ddl(
                self.query_text, state.new_cek, serialize_value(cell), self._scheme
            )
            for cell in cells
        ]


def job_for_descriptor(
    engine: "StorageEngine",
    rotation_id: str,
    descriptor: RotationDescriptor,
    query_text: str,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> KeyLifecycleJob:
    """Rebuild the right job class for a reinstated rotation."""
    cls = InitialEncryptionJob if descriptor.kind == "encrypt" else KeyRotationJob
    job = cls(
        engine,
        rotation_id,
        query_text,
        descriptor.table,
        descriptor.column,
        descriptor.new_cek,
        batch_size=batch_size,
        scheme=descriptor.scheme,
    )
    job.resume()
    return job
