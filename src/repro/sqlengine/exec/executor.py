"""Query execution: binding, the iterator pipeline, and DML.

The executor evaluates predicates through expression services: each scalar
predicate compiles to a stack program (Section 4.4); comparisons over
enclave-required encrypted operands run behind ``TM_EVAL`` through the
enclave gateway, everything else runs on the host VM. Encrypted cells are
only ever *moved* here — never interpreted — except through the enclave.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Iterator

from repro.crypto.aead import EncryptionScheme
from repro.errors import BindError, ExecutionError, SqlError, TypeDeductionError
from repro.obs.metrics import get_registry
from repro.obs.querystats import QueryStats
from repro.obs.tracing import OPERATOR, get_tracer
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.catalog import IndexSchema, TableSchema
from repro.sqlengine.engine import StorageEngine, TableObject
from repro.sqlengine.exec.planner import AccessPath, choose_access_path, extract_sargs
from repro.sqlengine.expression.compiler import CompiledExpression, compile_expression
from repro.sqlengine.expression.tree import (
    AndExpr,
    ArithExpr,
    ArithOp,
    ColumnRefExpr,
    CompareExpr,
    CompareOp,
    Expr,
    IsNullExpr,
    LikeExpr,
    LiteralExpr,
    NotExpr,
    OrExpr,
    ParameterExpr,
)
from repro.sqlengine.expression.vm import EnclaveConnector, StackMachine
from repro.sqlengine.index.comparators import MAX_KEY, MIN_KEY
from repro.sqlengine.scope import Scope
from repro.sqlengine.sqlparser import ast
from repro.sqlengine.storage.heap import RowId
from repro.sqlengine.typededuce import DeductionResult, deduce
from repro.sqlengine.types import ColumnType, SqlType
from repro.sqlengine.txn.transaction import Transaction
from repro.sqlengine.values import SqlScalar, compare_values


@dataclass(frozen=True)
class ResultColumn:
    """Name + full type of one result column (driver needs the encryption
    metadata to decrypt)."""

    name: str
    column_type: ColumnType


@dataclass
class QueryResult:
    columns: list[ResultColumn] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    plan_info: str = ""
    # Per-statement telemetry, attached by the server session (None for
    # DDL/transaction-control statements and when telemetry is disabled).
    stats: "QueryStats | None" = None


def _literal_type(value: object) -> ColumnType:
    if isinstance(value, bool):
        return ColumnType(SqlType("BIT"))
    if isinstance(value, int):
        return ColumnType(SqlType("INT"))
    if isinstance(value, float):
        return ColumnType(SqlType("FLOAT"))
    if isinstance(value, (bytes, bytearray)):
        return ColumnType(SqlType("VARBINARY"))
    return ColumnType(SqlType("VARCHAR"))


class Executor:
    """Executes parsed statements against a storage engine."""

    def __init__(
        self,
        engine: StorageEngine,
        enclave_gateway: EnclaveConnector | None = None,
        allow_enclave_order_by: bool = False,
        eval_batch_size: int = 64,
    ):
        self.engine = engine
        self.gateway = enclave_gateway
        # Future-work extension (paper conclusion): sort encrypted columns
        # through enclave comparisons. Off by default, as in AEv2.
        self.allow_enclave_order_by = allow_enclave_order_by
        # Rows per enclave round-trip for enclave-requiring predicates; 1 (or
        # less) disables batching and restores row-at-a-time evaluation.
        self.eval_batch_size = eval_batch_size
        self._vm = StackMachine(enclave=enclave_gateway)
        # Expression-compilation cache. Keyed by the (frozen, hashable)
        # expression tree itself — identity-based keys are unsafe because
        # CPython recycles object addresses across statements.
        self._program_cache: dict[Expr, CompiledExpression] = {}
        registry = get_registry()
        self._tracer = get_tracer()
        self._rows_scanned = registry.counter("executor.rows_scanned")
        self._rows_returned = registry.counter("executor.rows_returned")
        self._table_scans = registry.counter("executor.table_scans")
        self._index_seeks = registry.counter("executor.index_seeks")
        self._index_range_scans = registry.counter("executor.index_range_scans")

    # ------------------------------------------------------------- entry point

    def execute(
        self,
        stmt: ast.Statement,
        params: dict[str, object] | None = None,
        txn: Transaction | None = None,
        deduction: DeductionResult | None = None,
    ) -> QueryResult:
        params = params or {}
        handlers = (
            (ast.SelectStmt, "exec.select", lambda: self._select(stmt, params, deduction)),
            (ast.InsertStmt, "exec.insert", lambda: self._insert(stmt, params, txn, deduction)),
            (ast.UpdateStmt, "exec.update", lambda: self._update(stmt, params, txn, deduction)),
            (ast.DeleteStmt, "exec.delete", lambda: self._delete(stmt, params, txn, deduction)),
        )
        for stmt_type, span_name, handler in handlers:
            if isinstance(stmt, stmt_type):
                with self._tracer.span(span_name, kind=OPERATOR):
                    result = handler()
                self._rows_returned.inc(result.rowcount)
                return result
        raise ExecutionError(f"executor cannot run {type(stmt).__name__}")

    # ------------------------------------------------------------ scope/binding

    def _scope_for(self, stmt: ast.Statement) -> Scope:
        scope = Scope(self.engine.catalog)
        if isinstance(stmt, ast.SelectStmt):
            if stmt.table is not None:
                scope.add_table(stmt.table)
            for join in stmt.joins:
                scope.add_table(join.table)
        elif isinstance(stmt, (ast.InsertStmt, ast.UpdateStmt, ast.DeleteStmt)):
            scope.add_table(ast.TableRef(name=stmt.table))
        return scope

    def _param_slots(self, stmt: ast.Statement, scope: Scope) -> dict[str, int]:
        names = ast.statement_params(stmt)
        return {name.lower(): scope.width + i for i, name in enumerate(names)}

    def _param_values(
        self, stmt: ast.Statement, params: dict[str, object]
    ) -> list[object]:
        values: list[object] = []
        lowered = {k.lower(): v for k, v in params.items()}
        for name in ast.statement_params(stmt):
            key = name.lower()
            if key not in lowered:
                raise ExecutionError(f"missing value for parameter @{name}")
            values.append(lowered[key])
        return values

    def _to_expr(
        self,
        node: ast.AstExpr,
        scope: Scope,
        deduction: DeductionResult,
        param_slots: dict[str, int],
    ) -> Expr:
        if isinstance(node, ast.ColumnName):
            resolved = scope.resolve(node)
            return ColumnRefExpr(
                name=resolved.column.name,
                slot=resolved.slot,
                column_type=resolved.column.column_type,
            )
        if isinstance(node, ast.Param):
            name = node.name.lower()
            column_type = deduction.param_types.get(name, ColumnType(SqlType("VARCHAR")))
            return ParameterExpr(name=name, slot=param_slots[name], column_type=column_type)
        if isinstance(node, ast.Literal):
            return LiteralExpr(value=node.value, column_type=_literal_type(node.value))
        if isinstance(node, ast.BinaryOp):
            op = node.op.upper()
            if op == "AND":
                return AndExpr(
                    self._to_expr(node.left, scope, deduction, param_slots),
                    self._to_expr(node.right, scope, deduction, param_slots),
                )
            if op == "OR":
                return OrExpr(
                    self._to_expr(node.left, scope, deduction, param_slots),
                    self._to_expr(node.right, scope, deduction, param_slots),
                )
            if op in ("=", "<>", "<", "<=", ">", ">="):
                return CompareExpr(
                    op=CompareOp(op),
                    left=self._to_expr(node.left, scope, deduction, param_slots),
                    right=self._to_expr(node.right, scope, deduction, param_slots),
                )
            if op in ("+", "-", "*", "/"):
                return ArithExpr(
                    op=ArithOp(op),
                    left=self._to_expr(node.left, scope, deduction, param_slots),
                    right=self._to_expr(node.right, scope, deduction, param_slots),
                )
            raise ExecutionError(f"unsupported operator {node.op!r}")
        if isinstance(node, ast.UnaryOp):
            if node.op == "NOT":
                return NotExpr(self._to_expr(node.operand, scope, deduction, param_slots))
            if node.op == "-":
                return ArithExpr(
                    op=ArithOp.SUB,
                    left=LiteralExpr(0, ColumnType(SqlType("INT"))),
                    right=self._to_expr(node.operand, scope, deduction, param_slots),
                )
            raise ExecutionError(f"unsupported unary operator {node.op!r}")
        if isinstance(node, ast.LikeOp):
            like = LikeExpr(
                value=self._to_expr(node.value, scope, deduction, param_slots),
                pattern=self._to_expr(node.pattern, scope, deduction, param_slots),
            )
            return NotExpr(like) if node.negated else like
        if isinstance(node, ast.BetweenOp):
            value_low = self._to_expr(node.value, scope, deduction, param_slots)
            value_high = self._to_expr(node.value, scope, deduction, param_slots)
            return AndExpr(
                CompareExpr(CompareOp.GE, value_low, self._to_expr(node.low, scope, deduction, param_slots)),
                CompareExpr(CompareOp.LE, value_high, self._to_expr(node.high, scope, deduction, param_slots)),
            )
        if isinstance(node, ast.InOp):
            value = self._to_expr(node.value, scope, deduction, param_slots)
            expr: Expr | None = None
            for option in node.options:
                eq = CompareExpr(
                    CompareOp.EQ, value, self._to_expr(option, scope, deduction, param_slots)
                )
                expr = eq if expr is None else OrExpr(expr, eq)
            assert expr is not None
            return NotExpr(expr) if node.negated else expr
        if isinstance(node, ast.IsNullOp):
            return IsNullExpr(
                operand=self._to_expr(node.value, scope, deduction, param_slots),
                negated=node.negated,
            )
        raise ExecutionError(f"cannot bind expression node {type(node).__name__}")

    def _compile(self, expr: Expr) -> CompiledExpression:
        cached = self._program_cache.get(expr)
        if cached is None:
            cached = compile_expression(expr)
            self._program_cache[expr] = cached
        return cached

    # ------------------------------------------------------------------- SELECT

    def _select(
        self,
        stmt: ast.SelectStmt,
        params: dict[str, object],
        deduction: DeductionResult | None,
    ) -> QueryResult:
        if stmt.table is None:
            # SELECT of pure expressions (no FROM).
            scope = Scope(self.engine.catalog)
            deduction = deduction or deduce(stmt, scope)
            param_slots = self._param_slots(stmt, scope)
            values = self._param_values(stmt, params)
            row: list[object] = []
            columns: list[ResultColumn] = []
            for i, item in enumerate(stmt.items):
                if item.expr is None:
                    raise BindError("SELECT * requires a FROM clause")
                expr = self._to_expr(item.expr, scope, deduction, param_slots)
                compiled = self._compile(expr)
                row.append(self._vm.eval(compiled.host_program, list(values))[0])
                columns.append(
                    ResultColumn(item.alias or f"col{i+1}", ColumnType(SqlType("VARCHAR")))
                )
            return QueryResult(columns=columns, rows=[tuple(row)], rowcount=1)

        scope = self._scope_for(stmt)
        deduction = deduction or deduce(stmt, scope)
        param_slots = self._param_slots(stmt, scope)
        param_values = self._param_values(stmt, params)

        main_binding = stmt.table.binding_name
        table = self.engine.table(stmt.table.name)
        sargs = extract_sargs(stmt.where, scope, main_binding)
        path = choose_access_path(table, sargs)

        rows = self._access(table, path, param_slots, param_values, scope, deduction)

        plan_parts = [path.describe()]

        # Joins (hash join on hashable equality keys, else nested loop).
        width_so_far = table.schema.arity
        for join in stmt.joins:
            join_table = self.engine.table(join.table.name)
            rows, strategy = self._join(
                rows,
                width_so_far,
                join,
                join_table,
                scope,
                deduction,
                param_slots,
                param_values,
            )
            width_so_far += join_table.schema.arity
            plan_parts.append(strategy)

        # Residual filter: the full WHERE (re-checks sargs; harmless).
        if stmt.where is not None:
            predicate = self._to_expr(stmt.where, scope, deduction, param_slots)
            compiled = self._compile(predicate)
            if compiled.uses_enclave and self.gateway is None:
                raise ExecutionError(
                    "query requires enclave computations but no enclave gateway is attached"
                )
            if self._should_batch(compiled):
                # Enclave-requiring predicate: chunk rows so every TM_EVAL
                # ships eval_batch_size rows per boundary crossing.
                rows = self._batched_filter(rows, compiled, param_values)
                plan_parts.append(f"BatchedFilter(batch={self.eval_batch_size})")
            else:
                rows = (
                    row
                    for row in rows
                    if self._vm.eval_predicate(compiled.host_program, list(row) + param_values)
                    is True
                )

        aggregated = stmt.group_by or any(
            isinstance(i.expr, ast.Aggregate) for i in stmt.items if i.expr is not None
        )
        hidden = 0
        if aggregated:
            result = self._aggregate(stmt, rows, scope, deduction, param_slots, param_values)
        else:
            # Sorting may reference columns that are not projected (SQL
            # allows ORDER BY over any table column); carry them as hidden
            # trailing columns and strip them after the sort.
            hidden_exprs = [
                item.expr
                for item in stmt.order_by
                if isinstance(item.expr, ast.ColumnName)
            ]
            result = self._project(
                stmt, rows, scope, deduction, param_slots, param_values,
                hidden_exprs=hidden_exprs,
            )
            hidden = len(hidden_exprs)

        if stmt.distinct:
            if hidden:
                result.rows = [row[:-hidden] for row in result.rows]
                result.columns = result.columns[:-hidden]
                hidden = 0
            result.rows = self._distinct(result)
        if stmt.order_by:
            result.rows = self._order(stmt, result, scope, hidden=hidden)
        if hidden:
            result.rows = [row[:-hidden] for row in result.rows]
            result.columns = result.columns[:-hidden]
        if stmt.limit is not None:
            result.rows = result.rows[: stmt.limit]
        result.rowcount = len(result.rows)
        result.plan_info = " -> ".join(plan_parts)
        return result

    # -- batched predicate evaluation ---------------------------------------------

    def _should_batch(self, compiled: CompiledExpression) -> bool:
        """Batch only programs that actually cross the enclave boundary.

        Host-only programs gain nothing from chunking (no transition to
        amortize) and keep their streaming row-at-a-time evaluation.
        """
        return (
            compiled.uses_enclave
            and self.gateway is not None
            and self.eval_batch_size > 1
        )

    def _batched_filter(
        self,
        rows: Iterator[tuple],
        compiled: CompiledExpression,
        param_values: list[object],
    ) -> Iterator[tuple]:
        chunk: list[tuple] = []
        for row in rows:
            chunk.append(row)
            if len(chunk) >= self.eval_batch_size:
                yield from self._filter_chunk(chunk, compiled, param_values)
                chunk = []
        if chunk:
            yield from self._filter_chunk(chunk, compiled, param_values)

    def _filter_chunk(
        self,
        chunk: list[tuple],
        compiled: CompiledExpression,
        param_values: list[object],
    ) -> Iterator[tuple]:
        input_rows = [list(row) + param_values for row in chunk]
        verdicts = self._vm.eval_predicate_batch(compiled.host_program, input_rows)
        for row, verdict in zip(chunk, verdicts):
            if verdict is True:
                yield row

    # -- access paths ------------------------------------------------------------

    def _access(
        self,
        table: TableObject,
        path: AccessPath,
        param_slots: dict[str, int],
        param_values: list[object],
        scope: Scope,
        deduction: DeductionResult,
    ) -> Iterator[tuple]:
        if path.kind == "scan" or path.index is None:
            self._table_scans.inc()
            with self._tracer.span(
                "exec.table_scan", kind=OPERATOR, table=table.schema.name
            ):
                scanned = 0
                try:
                    for __, row in table.heap.scan():
                        scanned += 1
                        yield row
                finally:
                    self._rows_scanned.inc(scanned)
            return
        for __, row in self._access_with_rids(table, path, param_slots, param_values, scope):
            yield row

    # -- joins ----------------------------------------------------------------------

    def _join(
        self,
        left_rows: Iterator[tuple],
        left_width: int,
        join: ast.Join,
        join_table: TableObject,
        scope: Scope,
        deduction: DeductionResult,
        param_slots: dict[str, int],
        param_values: list[object],
    ) -> tuple[Iterator[tuple], str]:
        pad = join_table.schema.arity
        equality = self._hash_join_keys(join.condition, scope, left_width, pad)
        if equality is not None:
            left_slot, right_slot, hashable = equality
            if hashable:
                build: dict[object, list[tuple]] = {}
                for __, row in join_table.heap.scan():
                    key = row[right_slot - left_width]
                    if key is None:
                        continue
                    build.setdefault(_hash_key(key), []).append(row)

                def hash_generator() -> Iterator[tuple]:
                    for left in left_rows:
                        key = left[left_slot]
                        if key is None:
                            continue
                        for right in build.get(_hash_key(key), []):
                            yield left + right

                return hash_generator(), "HashJoin"

        # Nested loop with the join condition evaluated per pair (this is
        # the path for RND-encrypted join keys: per-pair enclave equality).
        condition = self._to_expr(join.condition, scope, deduction, param_slots)
        compiled = self._compile(condition)
        inner_rows = [row for __, row in join_table.heap.scan()]

        if self._should_batch(compiled):
            chunk_size = self.eval_batch_size

            def batched_nl_generator() -> Iterator[tuple]:
                # One enclave round-trip per chunk of inner rows instead of
                # one per (left, right) pair.
                for left in left_rows:
                    for start in range(0, len(inner_rows), chunk_size):
                        combined_rows = [
                            left + right for right in inner_rows[start : start + chunk_size]
                        ]
                        input_rows = [
                            list(combined)
                            + [None] * (scope.width - len(combined))
                            + param_values
                            for combined in combined_rows
                        ]
                        verdicts = self._vm.eval_predicate_batch(
                            compiled.host_program, input_rows
                        )
                        for combined, verdict in zip(combined_rows, verdicts):
                            if verdict is True:
                                yield combined

            return batched_nl_generator(), f"NestedLoopJoin(batch={chunk_size})"

        def nl_generator() -> Iterator[tuple]:
            for left in left_rows:
                for right in inner_rows:
                    combined = left + right
                    inputs = list(combined) + [None] * (scope.width - len(combined)) + param_values
                    if self._vm.eval_predicate(compiled.host_program, inputs) is True:
                        yield combined

        return nl_generator(), "NestedLoopJoin"

    def _hash_join_keys(
        self, condition: ast.AstExpr, scope: Scope, left_width: int, pad: int
    ) -> tuple[int, int, bool] | None:
        """If the condition is a simple equality usable for hashing, return
        (left_slot, right_slot, hashable)."""
        if not (isinstance(condition, ast.BinaryOp) and condition.op == "="):
            return None
        if not (
            isinstance(condition.left, ast.ColumnName)
            and isinstance(condition.right, ast.ColumnName)
        ):
            return None
        a = scope.resolve(condition.left)
        b = scope.resolve(condition.right)
        if a.slot < left_width <= b.slot:
            left_col, right_col = a, b
        elif b.slot < left_width <= a.slot:
            left_col, right_col = b, a
        else:
            return None
        enc_left = left_col.column.column_type.encryption
        enc_right = right_col.column.column_type.encryption
        hashable = True
        for enc in (enc_left, enc_right):
            if enc is not None and enc.scheme is EncryptionScheme.RANDOMIZED:
                hashable = False  # RND equality needs per-pair enclave checks
        if (enc_left is None) != (enc_right is None):
            raise TypeDeductionError(
                "cannot join an encrypted column with a plaintext column"
            )
        if enc_left is not None and enc_right is not None and enc_left.cek_name != enc_right.cek_name:
            raise TypeDeductionError("join columns are encrypted with different CEKs")
        return left_col.slot, right_col.slot, hashable

    # -- aggregation -------------------------------------------------------------------

    def _aggregate(
        self,
        stmt: ast.SelectStmt,
        rows: Iterator[tuple],
        scope: Scope,
        deduction: DeductionResult,
        param_slots: dict[str, int],
        param_values: list[object],
    ) -> QueryResult:
        group_exprs = [self._to_expr(g, scope, deduction, param_slots) for g in stmt.group_by]
        for g, bound in zip(stmt.group_by, group_exprs):
            if isinstance(bound, ColumnRefExpr):
                enc = bound.column_type.encryption
                if enc is not None and enc.scheme is EncryptionScheme.RANDOMIZED:
                    raise ExecutionError(
                        "GROUP BY on a randomized encrypted column is not supported"
                    )
        group_programs = [self._compile(g) for g in group_exprs]

        aggs: list[tuple[str, CompiledExpression | None]] = []
        columns: list[ResultColumn] = []
        item_kinds: list[tuple[str, int]] = []  # ("group", idx) | ("agg", idx)
        for item in stmt.items:
            if item.expr is None:
                raise BindError("SELECT * cannot be combined with aggregation")
            if isinstance(item.expr, ast.Aggregate):
                agg = item.expr
                compiled = None
                if agg.argument is not None:
                    compiled = self._compile(
                        self._to_expr(agg.argument, scope, deduction, param_slots)
                    )
                aggs.append((agg.func, compiled))
                item_kinds.append(("agg", len(aggs) - 1))
                columns.append(
                    ResultColumn(item.alias or agg.func.lower(), ColumnType(SqlType("INT" if agg.func == "COUNT" else "FLOAT")))
                )
            else:
                bound = self._to_expr(item.expr, scope, deduction, param_slots)
                matched = None
                for gi, g in enumerate(group_exprs):
                    if g == bound:
                        matched = gi
                        break
                if matched is None:
                    raise BindError(
                        "non-aggregate SELECT item must appear in GROUP BY"
                    )
                item_kinds.append(("group", matched))
                column_type = (
                    bound.column_type
                    if isinstance(bound, (ColumnRefExpr, ParameterExpr, LiteralExpr))
                    else ColumnType(SqlType("VARCHAR"))
                )
                default_name = (
                    item.expr.name
                    if isinstance(item.expr, ast.ColumnName)
                    else f"col{stmt.items.index(item) + 1}"
                )
                columns.append(ResultColumn(item.alias or default_name, column_type))

        groups: dict[tuple, list[list[object]]] = {}
        key_values: dict[tuple, tuple] = {}
        for row in rows:
            inputs = list(row) + param_values
            key_raw = tuple(self._vm.eval(p.host_program, inputs)[0] for p in group_programs)
            key = tuple(_hash_key(k) for k in key_raw)
            state = groups.get(key)
            if state is None:
                state = [[] for __ in aggs]
                groups[key] = state
                key_values[key] = key_raw
            for i, (func, compiled) in enumerate(aggs):
                if compiled is None:  # COUNT(*)
                    state[i].append(1)
                else:
                    value = self._vm.eval(compiled.host_program, inputs)[0]
                    if value is not None:
                        state[i].append(value)

        if not stmt.group_by and not groups:
            groups[()] = [[] for __ in aggs]
            key_values[()] = ()

        out_rows: list[tuple] = []
        for key, state in groups.items():
            raw = key_values[key]
            row_out: list[object] = []
            for kind, idx in item_kinds:
                if kind == "group":
                    row_out.append(raw[idx])
                else:
                    func, __ = aggs[idx]
                    row_out.append(_fold(func, state[idx]))
            out_rows.append(tuple(row_out))
        return QueryResult(columns=columns, rows=out_rows)

    # -- projection / ordering -------------------------------------------------------------

    def _project(
        self,
        stmt: ast.SelectStmt,
        rows: Iterator[tuple],
        scope: Scope,
        deduction: DeductionResult,
        param_slots: dict[str, int],
        param_values: list[object],
        hidden_exprs: list[ast.ColumnName] | None = None,
    ) -> QueryResult:
        columns: list[ResultColumn] = []
        extractors: list[object] = []  # int slot | CompiledExpression
        for i, item in enumerate(stmt.items):
            if item.expr is None:
                for resolved in scope.all_columns():
                    columns.append(ResultColumn(resolved.column.name, resolved.column.column_type))
                    extractors.append(resolved.slot)
                continue
            if isinstance(item.expr, ast.ColumnName):
                resolved = scope.resolve(item.expr)
                columns.append(
                    ResultColumn(item.alias or resolved.column.name, resolved.column.column_type)
                )
                extractors.append(resolved.slot)
            else:
                bound = self._to_expr(item.expr, scope, deduction, param_slots)
                columns.append(ResultColumn(item.alias or f"col{i+1}", ColumnType(SqlType("VARCHAR"))))
                extractors.append(self._compile(bound))

        for expr in hidden_exprs or []:
            resolved = scope.resolve(expr)
            columns.append(
                ResultColumn(f"__order_{resolved.column.name}", resolved.column.column_type)
            )
            extractors.append(resolved.slot)

        out_rows: list[tuple] = []
        for row in rows:
            inputs = list(row) + param_values
            out: list[object] = []
            for extractor in extractors:
                if isinstance(extractor, int):
                    out.append(row[extractor])
                else:
                    out.append(self._vm.eval(extractor.host_program, inputs)[0])
            out_rows.append(tuple(out))
        return QueryResult(columns=columns, rows=out_rows)

    def _distinct(self, result: QueryResult) -> list[tuple]:
        for column in result.columns:
            enc = column.column_type.encryption
            if enc is not None and enc.scheme is EncryptionScheme.RANDOMIZED:
                raise ExecutionError(
                    "DISTINCT over a randomized encrypted column is not supported"
                )
        seen: set = set()
        out: list[tuple] = []
        for row in result.rows:
            key = tuple(_hash_key(cell) for cell in row)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return out

    def _order(
        self, stmt: ast.SelectStmt, result: QueryResult, scope: Scope, hidden: int = 0
    ) -> list[tuple]:
        # ORDER BY references output columns by name; hidden trailing sort
        # columns (see _select) cover non-projected table columns.
        keys: list[tuple[int, bool]] = []
        n_visible = len(result.columns) - hidden
        for order_index, item in enumerate(stmt.order_by):
            if not isinstance(item.expr, ast.ColumnName):
                raise ExecutionError("ORDER BY supports column references only")
            target = item.expr.name.lower()
            position = None
            for i, column in enumerate(result.columns[:n_visible]):
                if column.name.lower() == target:
                    position = i
                    break
            if position is None and hidden:
                position = n_visible + order_index
            if position is None:
                raise BindError(f"ORDER BY column {item.expr.name!r} is not in the output")
            enc = result.columns[position].column_type.encryption
            enclave_sorted = False
            if enc is not None:
                if not (
                    self.allow_enclave_order_by
                    and enc.scheme is EncryptionScheme.RANDOMIZED
                    and enc.enclave_enabled
                    and self.engine.enclave is not None
                ):
                    raise TypeDeductionError(
                        "ORDER BY on encrypted columns is not supported in AEv2 "
                        "(the paper removes these from TPC-C for the same reason); "
                        "enable allow_enclave_order_by for the extension"
                    )
                enclave_sorted = True
            keys.append((position, item.ascending, enc if enclave_sorted else None))

        enclave = self.engine.enclave

        # Batched extension path: pre-rank every distinct ciphertext of each
        # enclave sort column with decrypt-probe-once compare_batch ecalls —
        # k probe ecalls for k distinct cells instead of O(n log n) compare
        # ecalls inside the sort. The full pairwise outcome matrix this
        # reveals is the transitive closure of the sort's comparison
        # outcomes (a sort determines the total order), so the adversary
        # learns the same order information either way (see docs/PERF.md).
        rank_maps: dict[int, dict[object, int]] = {}
        if self.eval_batch_size > 1 and hasattr(enclave, "compare_batch"):
            for position, __, enc in keys:
                if enc is not None and position not in rank_maps:
                    rank_maps[position] = self._enclave_rank_map(
                        result.rows, position, enc, enclave
                    )

        def cell_compare(av: object, bv: object, enc, position: int) -> int:
            if av is None and bv is None:
                return 0
            if av is None:
                return -1
            if bv is None:
                return 1
            if enc is not None:
                ranks = rank_maps.get(position)
                if ranks is not None:
                    return compare_values(ranks[_hash_key(av)], ranks[_hash_key(bv)])
                # Extension path: the comparison — and hence the row
                # ordering — crosses the enclave boundary in the clear,
                # the same leakage as a range index build.
                return enclave.compare(enc.cek_name, av, bv)
            return compare_values(av, bv)

        def cmp(a: tuple, b: tuple) -> int:
            for position, ascending, enc in keys:
                c = cell_compare(a[position], b[position], enc, position)
                if c:
                    return c if ascending else -c
            return 0

        return sorted(result.rows, key=functools.cmp_to_key(cmp))

    def _enclave_rank_map(
        self, rows: list[tuple], position: int, enc, enclave
    ) -> dict[object, int]:
        """Rank each distinct ciphertext of a sort column via batch compares.

        A cell's rank is the number of cells ordered strictly below it;
        equal plaintexts (distinct RND ciphertexts) get equal ranks, so
        comparing ranks is exactly comparing plaintexts.
        """
        cells: list[object] = []
        seen: set = set()
        for row in rows:
            cell = row[position]
            if cell is None:
                continue
            key = _hash_key(cell)
            if key not in seen:
                seen.add(key)
                cells.append(cell)
        ranks: dict[object, int] = {}
        for cell in cells:
            outcomes: list[int] = []
            for start in range(0, len(cells), self.eval_batch_size):
                outcomes.extend(
                    enclave.compare_batch(
                        enc.cek_name, cell, cells[start : start + self.eval_batch_size]
                    )
                )
            ranks[_hash_key(cell)] = sum(1 for c in outcomes if c > 0)
        return ranks

    # ---------------------------------------------------------------------- DML

    def _insert(
        self,
        stmt: ast.InsertStmt,
        params: dict[str, object],
        txn: Transaction | None,
        deduction: DeductionResult | None,
    ) -> QueryResult:
        if txn is None:
            raise ExecutionError("INSERT requires a transaction")
        scope = self._scope_for(stmt)
        deduction = deduction or deduce(stmt, scope)
        param_slots = self._param_slots(stmt, scope)
        param_values = self._param_values(stmt, params)
        schema = self.engine.catalog.table(stmt.table)
        columns = [c.lower() for c in (stmt.columns or tuple(schema.column_names()))]
        count = 0
        for value_row in stmt.rows:
            if len(value_row) != len(columns):
                raise ExecutionError("INSERT arity mismatch")
            cells: dict[str, object] = {}
            for column_name, expr in zip(columns, value_row):
                bound = self._to_expr(expr, scope, deduction, param_slots)
                compiled = self._compile(bound)
                cells[column_name] = self._vm.eval(
                    compiled.host_program, [None] * scope.width + param_values
                )[0]
            row = tuple(cells.get(c.name.lower()) for c in schema.columns)
            self.engine.insert(txn, stmt.table, row)
            count += 1
        return QueryResult(rowcount=count)

    def _target_rows(
        self,
        stmt: ast.UpdateStmt | ast.DeleteStmt,
        scope: Scope,
        deduction: DeductionResult,
        param_slots: dict[str, int],
        param_values: list[object],
    ) -> list[tuple[RowId, tuple]]:
        table = self.engine.table(stmt.table)
        sargs = extract_sargs(stmt.where, scope, scope.bindings()[0][0])
        path = choose_access_path(table, sargs)
        predicate = None
        if stmt.where is not None:
            predicate = self._compile(self._to_expr(stmt.where, scope, deduction, param_slots))
        matches: list[tuple[RowId, tuple]] = []
        if path.kind == "scan" or path.index is None:
            candidates = list(table.heap.scan())
        else:
            candidates = self._access_with_rids(table, path, param_slots, param_values, scope)
        if predicate is not None and self._should_batch(predicate):
            # DML qualification over an enclave predicate: chunked, one
            # transition per chunk. The under-lock re-check in _update /
            # _delete stays per-row — it re-reads single rows.
            for start in range(0, len(candidates), self.eval_batch_size):
                batch = candidates[start : start + self.eval_batch_size]
                input_rows = [list(row) + param_values for __, row in batch]
                verdicts = self._vm.eval_predicate_batch(
                    predicate.host_program, input_rows
                )
                for (rid, row), verdict in zip(batch, verdicts):
                    if verdict is True:
                        matches.append((rid, row))
            return matches
        for rid, row in candidates:
            if predicate is not None:
                verdict = self._vm.eval_predicate(predicate.host_program, list(row) + param_values)
                if verdict is not True:
                    continue
            matches.append((rid, row))
        return matches

    def _access_with_rids(
        self,
        table: TableObject,
        path: AccessPath,
        param_slots: dict[str, int],
        param_values: list[object],
        scope: Scope,
    ) -> list[tuple[RowId, tuple]]:
        def operand_value(operand: ast.AstExpr) -> object:
            if isinstance(operand, ast.Literal):
                return operand.value
            assert isinstance(operand, ast.Param)
            return param_values[param_slots[operand.name.lower()] - scope.width]

        prefix = tuple(operand_value(op) for op in path.eq_operands)
        tree = path.index.tree
        if path.kind == "seek" and len(prefix) == len(path.index.key_slots):
            self._index_seeks.inc()
            with self._tracer.span(
                "exec.index_seek",
                kind=OPERATOR,
                table=table.schema.name,
                index=path.index.schema.name,
            ):
                rids = tree.search_eq(prefix)
        else:
            low: object = prefix
            high: object = prefix + (MAX_KEY,)
            low_inclusive = True
            if path.low is not None:
                low = prefix + (operand_value(path.low[0]),)
                if not path.low[1]:
                    low = low + (MAX_KEY,)
            if path.high is not None:
                high = prefix + (operand_value(path.high[0]),)
                if path.high[1]:
                    high = high + (MAX_KEY,)
            self._index_range_scans.inc()
            with self._tracer.span(
                "exec.index_range_scan",
                kind=OPERATOR,
                table=table.schema.name,
                index=path.index.schema.name,
            ):
                rids = [rid for __, rid in tree.range_scan(low, high, low_inclusive, True)]
        out = []
        for rid in rids:
            row = table.heap.read_or_none(rid)
            if row is not None:
                out.append((rid, row))
        self._rows_scanned.inc(len(out))
        return out

    def _update(
        self,
        stmt: ast.UpdateStmt,
        params: dict[str, object],
        txn: Transaction | None,
        deduction: DeductionResult | None,
    ) -> QueryResult:
        if txn is None:
            raise ExecutionError("UPDATE requires a transaction")
        scope = self._scope_for(stmt)
        deduction = deduction or deduce(stmt, scope)
        param_slots = self._param_slots(stmt, scope)
        param_values = self._param_values(stmt, params)
        schema = self.engine.catalog.table(stmt.table)
        assignments: list[tuple[int, CompiledExpression]] = []
        for column_name, expr in stmt.assignments:
            slot = schema.column_index(column_name)
            bound = self._to_expr(expr, scope, deduction, param_slots)
            assignments.append((slot, self._compile(bound)))
        predicate = None
        if stmt.where is not None:
            predicate = self._compile(self._to_expr(stmt.where, scope, deduction, param_slots))
        count = 0
        for rid, __ in self._target_rows(stmt, scope, deduction, param_slots, param_values):
            # Two-phase qualification: lock, re-read, re-check. Scanning
            # reads are unlocked, so assignment expressions (e.g. the
            # D_NEXT_O_ID increment of TPC-C NewOrder) must be evaluated
            # against the row as it exists *under the lock*, or concurrent
            # read-modify-writes lose updates.
            self.engine.lock_row(txn, stmt.table, rid)
            row = self.engine.read(stmt.table, rid)
            if row is None:
                continue
            inputs = list(row) + param_values
            if predicate is not None and self._vm.eval_predicate(
                predicate.host_program, inputs
            ) is not True:
                continue
            new_row = list(row)
            for slot, compiled in assignments:
                new_row[slot] = self._vm.eval(compiled.host_program, inputs)[0]
            self.engine.update(txn, stmt.table, rid, tuple(new_row))
            count += 1
        return QueryResult(rowcount=count)

    def _delete(
        self,
        stmt: ast.DeleteStmt,
        params: dict[str, object],
        txn: Transaction | None,
        deduction: DeductionResult | None,
    ) -> QueryResult:
        if txn is None:
            raise ExecutionError("DELETE requires a transaction")
        scope = self._scope_for(stmt)
        deduction = deduction or deduce(stmt, scope)
        param_slots = self._param_slots(stmt, scope)
        param_values = self._param_values(stmt, params)
        predicate = None
        if stmt.where is not None:
            predicate = self._compile(self._to_expr(stmt.where, scope, deduction, param_slots))
        count = 0
        for rid, __ in self._target_rows(stmt, scope, deduction, param_slots, param_values):
            self.engine.lock_row(txn, stmt.table, rid)
            row = self.engine.read(stmt.table, rid)
            if row is None:
                continue
            if predicate is not None and self._vm.eval_predicate(
                predicate.host_program, list(row) + param_values
            ) is not True:
                continue
            self.engine.delete(txn, stmt.table, rid)
            count += 1
        return QueryResult(rowcount=count)


def _hash_key(value: object) -> object:
    if isinstance(value, Ciphertext):
        return ("ct", value.envelope)
    return value


def _fold(func: str, values: list[object]) -> object:
    if func == "COUNT":
        return len(values)
    if not values:
        return None
    if func == "SUM":
        return sum(values)  # type: ignore[arg-type]
    if func == "AVG":
        return sum(values) / len(values)  # type: ignore[arg-type]
    if func == "MIN":
        return min(values)  # type: ignore[type-var]
    if func == "MAX":
        return max(values)  # type: ignore[type-var]
    raise ExecutionError(f"unknown aggregate {func!r}")
