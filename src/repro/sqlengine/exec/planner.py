"""Access-path selection: scan vs. index seek/range.

A deliberately simple rule-based planner: it decomposes the WHERE clause
into a conjunction, finds sargable conjuncts (column OP param/literal) on
the main table, and matches them against available indexes.

Encryption awareness mirrors Section 3.1:

* any usable index supports equality-prefix seeks (DET ciphertext order
  clusters equal values, so equality works through it);
* a *value-range* conjunct can extend the prefix only when the next index
  column's order is semantic (plaintext or RND-enclave, never DET);
* invalid or pending indexes (Section 4.5) are never chosen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlengine.engine import IndexObject, TableObject
from repro.sqlengine.scope import Scope
from repro.sqlengine.sqlparser import ast


@dataclass(frozen=True)
class Sarg:
    """A sargable conjunct: ``column OP operand`` with a constant operand."""

    column: str           # lower-cased column name on the main table
    op: str               # = < <= > >=
    operand: ast.AstExpr  # Param or Literal


@dataclass
class AccessPath:
    """How the main table will be accessed."""

    kind: str                     # "scan" | "seek" | "range"
    index: IndexObject | None = None
    # Equality prefix: operands for index columns [0..len-1].
    eq_operands: list[ast.AstExpr] = field(default_factory=list)
    # Optional range bounds on the next index column.
    low: tuple[ast.AstExpr, bool] | None = None   # (operand, inclusive)
    high: tuple[ast.AstExpr, bool] | None = None

    def describe(self) -> str:
        if self.kind == "scan":
            return "TableScan"
        name = self.index.schema.name if self.index else "?"
        return f"Index{'Seek' if self.kind == 'seek' else 'RangeScan'}({name})"


def conjuncts(expr: ast.AstExpr | None) -> list[ast.AstExpr]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op.upper() == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def _constant(expr: ast.AstExpr) -> bool:
    return isinstance(expr, (ast.Param, ast.Literal))


def extract_sargs(where: ast.AstExpr | None, scope: Scope, main_binding: str) -> list[Sarg]:
    """Sargable conjuncts over main-table columns."""
    sargs: list[Sarg] = []
    for conjunct in conjuncts(where):
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op in ("=", "<", "<=", ">", ">="):
            pairs = [
                (conjunct.left, conjunct.right, conjunct.op),
                (conjunct.right, conjunct.left, _flip(conjunct.op)),
            ]
            for column_side, operand_side, op in pairs:
                if isinstance(column_side, ast.ColumnName) and _constant(operand_side):
                    try:
                        resolved = scope.resolve(column_side)
                    except Exception:
                        continue
                    if resolved.binding == main_binding:
                        sargs.append(
                            Sarg(column=resolved.column.name.lower(), op=op, operand=operand_side)
                        )
                    break
        elif isinstance(conjunct, ast.BetweenOp):
            if isinstance(conjunct.value, ast.ColumnName) and _constant(conjunct.low) and _constant(conjunct.high):
                try:
                    resolved = scope.resolve(conjunct.value)
                except Exception:
                    continue
                if resolved.binding == main_binding:
                    name = resolved.column.name.lower()
                    sargs.append(Sarg(column=name, op=">=", operand=conjunct.low))
                    sargs.append(Sarg(column=name, op="<=", operand=conjunct.high))
    return sargs


def _flip(op: str) -> str:
    return {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]


def choose_access_path(table: TableObject, sargs: list[Sarg]) -> AccessPath:
    """Pick the best usable index for the sargs, or fall back to a scan."""
    eq_by_column: dict[str, ast.AstExpr] = {}
    ranges_by_column: dict[str, list[Sarg]] = {}
    for sarg in sargs:
        if sarg.op == "=":
            eq_by_column.setdefault(sarg.column, sarg.operand)
        else:
            ranges_by_column.setdefault(sarg.column, []).append(sarg)

    best: AccessPath | None = None
    best_score = 0
    for obj in table.indexes.values():
        if not obj.usable:
            continue
        columns = [c.lower() for c in obj.schema.column_names]
        prefix: list[ast.AstExpr] = []
        for column in columns:
            if column in eq_by_column:
                prefix.append(eq_by_column[column])
            else:
                break
        low = high = None
        extra = 0
        if len(prefix) < len(columns):
            next_cell = obj.tree.comparator.cells[len(prefix)]
            if next_cell.semantic_order:
                # Value-range bounds are only meaningful when this column's
                # index order matches plaintext order (not DET).
                next_column = columns[len(prefix)]
                for sarg in ranges_by_column.get(next_column, []):
                    bound = (sarg.operand, sarg.op in (">=", "<="))
                    if sarg.op in (">", ">="):
                        low = low or bound
                    else:
                        high = high or bound
                extra = 1 if (low or high) else 0
        if prefix or low or high:
            score = len(prefix) * 2 + extra
            if score > best_score:
                kind = "seek" if len(prefix) == len(columns) else "range"
                best = AccessPath(
                    kind=kind, index=obj, eq_operands=prefix, low=low, high=high
                )
                best_score = score
    return best or AccessPath(kind="scan")
