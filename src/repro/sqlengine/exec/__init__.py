"""Execution: access-path planning and the iterator executor."""

from repro.sqlengine.exec.executor import Executor, QueryResult, ResultColumn
from repro.sqlengine.exec.planner import AccessPath, choose_access_path, extract_sargs

__all__ = [
    "AccessPath",
    "Executor",
    "QueryResult",
    "ResultColumn",
    "choose_access_path",
    "extract_sargs",
]
