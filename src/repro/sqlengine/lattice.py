"""The encryption type lattice of Figure 6, including the enclave extension.

Without enclaves there are three generalized encryption types —
``PLAINTEXT ≤ DETERMINISTIC ≤ RANDOMIZED`` — where the set of supported
operations strictly *decreases* going up. The paper notes that adding
enclaves yields more generalized types that still form a lattice: an
enclave-enabled key restores operations that its non-enclave counterpart
loses. We model the five generalized types explicitly and expose the
lattice order plus the operation table that type deduction consults.
"""

from __future__ import annotations

import enum


class GeneralizedType(enum.Enum):
    """Generalized encryption types (no specific CEK attached)."""

    PLAINTEXT = "Plaintext"
    DETERMINISTIC = "Deterministic"
    RANDOMIZED = "Randomized"
    DETERMINISTIC_ENCLAVE = "Deterministic(enclave)"
    RANDOMIZED_ENCLAVE = "Randomized(enclave)"

    @property
    def is_encrypted(self) -> bool:
        return self is not GeneralizedType.PLAINTEXT

    @property
    def enclave_enabled(self) -> bool:
        return self in (
            GeneralizedType.DETERMINISTIC_ENCLAVE,
            GeneralizedType.RANDOMIZED_ENCLAVE,
        )


# Lattice order: a ≤ b means "b is at least as restricted as a" — the arrows
# of Figure 6 point from Plaintext toward Randomized. The enclave variants
# sit between their plain counterparts and the next restriction level,
# because the enclave restores (but does not exceed) plaintext operations.
_ORDER: dict[GeneralizedType, set[GeneralizedType]] = {
    GeneralizedType.PLAINTEXT: set(),
    GeneralizedType.DETERMINISTIC_ENCLAVE: {GeneralizedType.PLAINTEXT},
    GeneralizedType.DETERMINISTIC: {
        GeneralizedType.PLAINTEXT,
        GeneralizedType.DETERMINISTIC_ENCLAVE,
    },
    GeneralizedType.RANDOMIZED_ENCLAVE: {
        GeneralizedType.PLAINTEXT,
        GeneralizedType.DETERMINISTIC_ENCLAVE,
    },
    GeneralizedType.RANDOMIZED: {
        GeneralizedType.PLAINTEXT,
        GeneralizedType.DETERMINISTIC_ENCLAVE,
        GeneralizedType.DETERMINISTIC,
        GeneralizedType.RANDOMIZED_ENCLAVE,
    },
}


def lattice_le(a: GeneralizedType, b: GeneralizedType) -> bool:
    """True if ``a ≤ b`` in the lattice order (a is no more restricted)."""
    return a is b or a in _ORDER[b]


def join(a: GeneralizedType, b: GeneralizedType) -> GeneralizedType | None:
    """Least upper bound of two generalized types, or None if incomparable
    upward (should not happen: RANDOMIZED is the top element)."""
    candidates = [
        t for t in GeneralizedType if lattice_le(a, t) and lattice_le(b, t)
    ]
    # The minimum among the common upper bounds.
    best = None
    for t in candidates:
        if best is None or lattice_le(t, best):
            best = t
    return best


class Operation(enum.Enum):
    """Scalar operation classes whose legality depends on encryption type."""

    EQUALITY = "equality"          # =, equi-join, GROUP BY
    RANGE = "range"                # <, <=, >, >=, BETWEEN, range index
    LIKE = "like"                  # string pattern matching
    ARITHMETIC = "arithmetic"      # +, -, *, /
    ORDER_BY = "order_by"          # sorting for output
    PROJECT = "project"            # appear in SELECT list


# Which operations each generalized type supports (Sections 2.3, 2.4.3).
# AEv2 does not support ORDER BY or arithmetic in the enclave — the paper's
# TPC-C modifications exist precisely because of the ORDER BY restriction.
_SUPPORTED: dict[GeneralizedType, frozenset[Operation]] = {
    GeneralizedType.PLAINTEXT: frozenset(Operation),
    GeneralizedType.DETERMINISTIC: frozenset({Operation.EQUALITY, Operation.PROJECT}),
    GeneralizedType.DETERMINISTIC_ENCLAVE: frozenset(
        {Operation.EQUALITY, Operation.PROJECT}
    ),
    GeneralizedType.RANDOMIZED: frozenset({Operation.PROJECT}),
    GeneralizedType.RANDOMIZED_ENCLAVE: frozenset(
        {Operation.EQUALITY, Operation.RANGE, Operation.LIKE, Operation.PROJECT}
    ),
}


def supports(gtype: GeneralizedType, operation: Operation) -> bool:
    """Does this generalized encryption type support the operation?"""
    return operation in _SUPPORTED[gtype]


def requires_enclave(gtype: GeneralizedType, operation: Operation) -> bool:
    """Does evaluating ``operation`` on ``gtype`` need the enclave?

    DET equality runs outside the enclave (plain VARBINARY comparison of
    ciphertexts); everything else on encrypted data goes through TMEval.
    """
    if gtype is GeneralizedType.PLAINTEXT:
        return False
    if gtype in (GeneralizedType.DETERMINISTIC, GeneralizedType.DETERMINISTIC_ENCLAVE):
        return operation is not Operation.EQUALITY and operation is not Operation.PROJECT
    if gtype is GeneralizedType.RANDOMIZED_ENCLAVE:
        return operation is not Operation.PROJECT
    return False


def generalize(scheme_short: str | None, enclave_enabled: bool) -> GeneralizedType:
    """Map a concrete column encryption setting to its generalized type."""
    if scheme_short is None:
        return GeneralizedType.PLAINTEXT
    if scheme_short == "DET":
        return (
            GeneralizedType.DETERMINISTIC_ENCLAVE
            if enclave_enabled
            else GeneralizedType.DETERMINISTIC
        )
    if scheme_short == "RND":
        return (
            GeneralizedType.RANDOMIZED_ENCLAVE
            if enclave_enabled
            else GeneralizedType.RANDOMIZED
        )
    raise ValueError(f"unknown scheme {scheme_short!r}")
