"""The server's statement scheduler: a bounded worker pool.

SQL Server multiplexes thousands of connections over a fixed pool of
SQLOS workers; a statement arriving from a session is dispatched to a
worker, runs to completion there, and the client blocks until its result
is ready. This module reproduces that shape for the concurrent session
layer: ``SqlServer`` owns one :class:`StatementScheduler`, every
session's DML statement is submitted to it, and ``worker_threads`` caps
how many statements execute simultaneously regardless of how many
clients are connected.

Running the whole statement on one worker thread is also what makes
per-statement observability correct under concurrency: the span tracer
is thread-local, and the :class:`~repro.obs.querystats.QueryStatsCollector`
pushes its attribution context on the thread that executes the statement.

Workers are spawned on demand up to the cap and retire after an idle
timeout, so an idle server holds no threads. ``worker_threads=0`` turns
the scheduler into a pass-through (statements run on the calling
thread) — the pre-concurrency behaviour, and the mode recovery tests
use. A submit *from* a worker thread also runs inline: a statement that
re-enters the server (driver-internal round-trips) must not wait for a
second worker that the pool may never grant, the classic thread-pool
self-deadlock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.flightrec import record_event
from repro.obs.metrics import get_registry
from repro.obs.tracing import EMPTY_CAPTURE, CapturedTrace, get_tracer


@dataclass
class _Task:
    fn: Callable[[], object]
    done: threading.Event = field(default_factory=threading.Event)
    result: object = None
    error: BaseException | None = None
    enqueued_at: float = field(default_factory=time.perf_counter)
    #: The submitting thread's trace state and metric attribution
    #: contexts; the worker adopts both so spans, flight-recorder events,
    #: and counter increments all land under the submitting statement.
    trace: CapturedTrace = EMPTY_CAPTURE
    contexts: tuple = ()


class StatementScheduler:
    """Dispatches statement closures onto a bounded worker pool."""

    def __init__(self, worker_threads: int = 4, idle_timeout_s: float = 2.0):
        if worker_threads < 0:
            raise ValueError("worker_threads cannot be negative")
        self.worker_threads = worker_threads
        self.idle_timeout_s = idle_timeout_s
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._tasks: deque[_Task] = deque()
        self._live = 0            # worker threads alive
        self._idle = 0            # workers currently waiting for work
        self._shutdown = False
        self._tls = threading.local()
        registry = get_registry()
        self._dispatched = registry.counter(
            "scheduler.statements_dispatched",
            help="statements executed on a scheduler worker thread",
        )
        self._inline = registry.counter(
            "scheduler.statements_inline",
            help="statements executed inline (pass-through or reentrant)",
        )
        self._spawned = registry.counter(
            "scheduler.workers_spawned", help="worker threads created on demand"
        )
        self._retired = registry.counter(
            "scheduler.workers_retired", help="worker threads retired after idling"
        )
        self._queue_depth = registry.gauge(
            "scheduler.queue_depth", help="statements waiting for a worker"
        )
        self._dispatch_wait = registry.histogram(
            "scheduler.dispatch_wait_seconds",
            help="time a statement waited in the queue before a worker took it",
        )

    def submit(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` on a worker and return its result (re-raising errors).

        The calling thread blocks until completion — the scheduler bounds
        *execution* parallelism, it does not make statements asynchronous.
        """
        if self.worker_threads == 0 or getattr(self._tls, "is_worker", False):
            self._inline.inc()
            return fn()
        registry = get_registry()
        task = _Task(
            fn,
            trace=get_tracer().capture(),
            contexts=registry.current_contexts(),
        )
        record_event("sched.enqueue", queue_depth=len(self._tasks))
        with self._lock:
            if self._shutdown:
                raise RuntimeError("statement scheduler is shut down")
            self._tasks.append(task)
            self._queue_depth.set(len(self._tasks))
            if len(self._tasks) > self._idle and self._live < self.worker_threads:
                self._live += 1
                self._spawned.inc()
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"stmt-worker-{self._live}",
                    daemon=True,
                )
                thread.start()
            self._work.notify()
        task.done.wait()
        if task.error is not None:
            raise task.error
        return task.result

    def _worker_loop(self) -> None:
        self._tls.is_worker = True
        while True:
            with self._lock:
                deadline = time.monotonic() + self.idle_timeout_s
                while not self._tasks and not self._shutdown:
                    self._idle += 1
                    remaining = deadline - time.monotonic()
                    signalled = remaining > 0 and self._work.wait(timeout=remaining)
                    self._idle -= 1
                    if not signalled and not self._tasks:
                        # Idle timeout (or shutdown wakeup): retire.
                        self._live -= 1
                        self._retired.inc()
                        return
                if self._shutdown and not self._tasks:
                    self._live -= 1
                    return
                task = self._tasks.popleft()
                self._queue_depth.set(len(self._tasks))
            wait_s = time.perf_counter() - task.enqueued_at
            self._dispatch_wait.observe(wait_s)
            self._dispatched.inc()
            # Adopt the submitter's trace and attribution contexts so the
            # statement's spans/events/counters carry its identity even
            # though they happen on this worker thread.
            try:
                with get_tracer().adopt(task.trace), get_registry().adopt_contexts(
                    task.contexts
                ):
                    record_event("sched.dispatch", duration_s=wait_s)
                    task.result = task.fn()
            except BaseException as exc:  # propagate to the submitting thread
                task.error = exc
            finally:
                task.done.set()

    def shutdown(self) -> None:
        """Stop accepting work and let live workers drain and exit."""
        with self._lock:
            self._shutdown = True
            self._work.notify_all()

    @property
    def live_workers(self) -> int:
        with self._lock:
            return self._live
