"""Scalar expression trees — the analog of SQL Server's ``CScaOp`` nodes.

Query compilation produces these trees (from parsed predicates and
projections); the expression compiler then lowers them to stack programs,
splitting enclave-required subtrees out behind ``TMEval`` exactly as
Figure 7 of the paper illustrates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sqlengine.types import ColumnType
from repro.sqlengine.values import SqlScalar


class CompareOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flip(self) -> "CompareOp":
        """The operator with operands swapped (a OP b == b OP.flip a)."""
        return {
            CompareOp.EQ: CompareOp.EQ,
            CompareOp.NE: CompareOp.NE,
            CompareOp.LT: CompareOp.GT,
            CompareOp.LE: CompareOp.GE,
            CompareOp.GT: CompareOp.LT,
            CompareOp.GE: CompareOp.LE,
        }[self]


class ArithOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


class Expr:
    """Base class for scalar expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class ColumnRefExpr(Expr):
    """A reference to an input column (``CScaOp_Identifier``).

    ``slot`` is the position of the column's value in the row layout the
    expression runs against; ``column_type`` carries the encryption
    attribute used by the compiler to decide the host/enclave split.
    """

    name: str
    slot: int
    column_type: ColumnType


@dataclass(frozen=True)
class LiteralExpr(Expr):
    """A constant known at compile time (plaintext)."""

    value: SqlScalar
    column_type: ColumnType


@dataclass(frozen=True)
class ParameterExpr(Expr):
    """A query parameter (``@name``).

    At execution time the driver has already encrypted the parameter when
    type deduction required it; ``column_type`` records the deduced type.
    ``slot`` indexes into the parameter array appended after column slots.
    """

    name: str
    slot: int
    column_type: ColumnType


@dataclass(frozen=True)
class CompareExpr(Expr):
    """A comparison (``CScaOp_Comp``)."""

    op: CompareOp
    left: Expr
    right: Expr


@dataclass(frozen=True)
class LikeExpr(Expr):
    """``value LIKE pattern`` string pattern matching."""

    value: Expr
    pattern: Expr


@dataclass(frozen=True)
class AndExpr(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class OrExpr(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class NotExpr(Expr):
    operand: Expr


@dataclass(frozen=True)
class ArithExpr(Expr):
    """Arithmetic on plaintext operands (never enclave-evaluated in AEv2)."""

    op: ArithOp
    left: Expr
    right: Expr


@dataclass(frozen=True)
class IsNullExpr(Expr):
    operand: Expr
    negated: bool = False
