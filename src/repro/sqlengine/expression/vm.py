"""The expression-services stack machine evaluator.

The same VM runs in two places, mirroring the paper's "compile ES into two
binaries" approach (Section 4.4):

* **Host side** — crypto context is ``None``. Encrypted cells are opaque
  :class:`~repro.sqlengine.cells.Ciphertext` blobs; the only computation
  allowed on them is binary equality (DET columns). Any ``TM_EVAL``
  instruction delegates to an :class:`EnclaveConnector`.
* **Enclave side** — a crypto context backed by the enclave's CEK store is
  supplied, so ``GET_DATA`` / ``SET_DATA`` transparently decrypt/encrypt at
  the stack boundary and the program body computes on plaintext.

Comparison results use SQL three-valued logic: ``None`` is UNKNOWN and
propagates through comparisons; AND/OR follow Kleene semantics.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import ExecutionError
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.expression.program import Instruction, Opcode, StackProgram
from repro.sqlengine.types import EncryptionInfo
from repro.sqlengine.values import SqlScalar, compare_values, like_match


class CryptoContext(Protocol):
    """Decrypt/encrypt services available only inside the enclave."""

    def decrypt_cell(self, ciphertext: Ciphertext, enc: EncryptionInfo) -> SqlScalar: ...

    def encrypt_cell(self, value: SqlScalar, enc: EncryptionInfo) -> Ciphertext: ...


class EnclaveConnector(Protocol):
    """How the host VM reaches the enclave for ``TM_EVAL``.

    ``register`` installs a serialized program once and returns a handle
    (the paper's registration/handle usage pattern); ``eval`` runs it.
    """

    def register_program(self, program_bytes: bytes) -> int: ...

    def eval(self, handle: int, inputs: list[object]) -> list[object]: ...

    def eval_batch(self, handle: int, rows: list[list[object]]) -> list[list[object]]: ...


class StackMachine:
    """Evaluates :class:`StackProgram` objects against input slot arrays."""

    def __init__(
        self,
        crypto: CryptoContext | None = None,
        enclave: EnclaveConnector | None = None,
    ):
        self._crypto = crypto
        self._enclave = enclave
        self._handle_cache: dict[bytes, int] = {}

    def eval(self, program: StackProgram, inputs: list[object], n_outputs: int = 1) -> list[object]:
        """Run ``program``; returns the outputs array (size ``n_outputs``)."""
        stack: list[object] = []
        outputs: list[object] = [None] * n_outputs
        wrote_output = False
        for ins in program.instructions:
            if ins.opcode is Opcode.SET_DATA:
                wrote_output = True
            self._step(ins, stack, inputs, outputs)
        if stack and not wrote_output:
            # A predicate program with no SET_DATA leaves its result on the
            # stack; surface it as output 0 for convenience. A program that
            # DID write outputs via SET_DATA keeps them — stack residue must
            # not clobber output 0.
            outputs[0] = stack[-1]
        return outputs

    def eval_batch(
        self,
        program: StackProgram,
        input_rows: list[list[object]],
        n_outputs: int = 1,
    ) -> list[list[object]]:
        """Run ``program`` over many input rows, coalescing enclave calls.

        Stack programs are straight-line (no branches), so every row reaches
        each instruction at the same program counter. The batch interpreter
        exploits that: it steps instruction-at-a-time across per-row stacks,
        and when the shared instruction is ``TM_EVAL`` it ships the whole
        chunk's sub-program inputs through one ``EnclaveConnector.eval_batch``
        call instead of one ecall per row. Host-side instructions run
        per-row, exactly as :meth:`eval` would.
        """
        if not input_rows:
            return []
        # (stack, outputs, wrote_output-flag) per row.
        states: list[list[object]] = [
            [[], [None] * n_outputs, False] for __ in input_rows
        ]
        batch_connector = (
            self._enclave if hasattr(self._enclave, "eval_batch") else None
        )
        for ins in program.instructions:
            if (
                ins.opcode is Opcode.TM_EVAL
                and batch_connector is not None
                and len(input_rows) > 1
            ):
                self._step_tm_eval_batch(ins, states, batch_connector)
                continue
            for state, inputs in zip(states, input_rows):
                if ins.opcode is Opcode.SET_DATA:
                    state[2] = True
                self._step(ins, state[0], inputs, state[1])
        results: list[list[object]] = []
        for stack, outputs, wrote_output in states:
            if stack and not wrote_output:
                outputs[0] = stack[-1]
            results.append(outputs)
        return results

    def eval_predicate(self, program: StackProgram, inputs: list[object]) -> bool | None:
        """Run a boolean-valued program; returns True/False/None (UNKNOWN)."""
        result = self.eval(program, inputs, n_outputs=1)[0]
        if result is not None and not isinstance(result, bool):
            raise ExecutionError(f"predicate produced non-boolean {result!r}")
        return result

    def eval_predicate_batch(
        self, program: StackProgram, input_rows: list[list[object]]
    ) -> list[bool | None]:
        """Batched :meth:`eval_predicate`: one verdict per input row."""
        verdicts: list[bool | None] = []
        for outputs in self.eval_batch(program, input_rows, n_outputs=1):
            result = outputs[0]
            if result is not None and not isinstance(result, bool):
                raise ExecutionError(f"predicate produced non-boolean {result!r}")
            verdicts.append(result)
        return verdicts

    def _step_tm_eval_batch(
        self,
        ins: Instruction,
        states: list[list[object]],
        connector: EnclaveConnector,
    ) -> None:
        """Execute one shared TM_EVAL across all rows with a single ecall."""
        blob, n_inputs = ins.operand  # type: ignore[misc]
        rows: list[list[object]] = []
        for state in states:
            stack = state[0]
            if len(stack) < n_inputs:
                raise ExecutionError("TM_EVAL underflow: not enough inputs on stack")
            popped = [stack.pop() for __ in range(n_inputs)]
            rows.append(list(reversed(popped)))
        handle = self._handle_cache.get(blob)
        if handle is None:
            handle = connector.register_program(blob)
            self._handle_cache[blob] = handle
        results = connector.eval_batch(handle, rows)
        for state, result in zip(states, results):
            state[0].append(result[0])

    # -- dispatch ------------------------------------------------------------

    def _step(
        self,
        ins: Instruction,
        stack: list[object],
        inputs: list[object],
        outputs: list[object],
    ) -> None:
        opcode = ins.opcode
        if opcode is Opcode.GET_DATA:
            slot, enc = ins.operand  # type: ignore[misc]
            if slot >= len(inputs):
                raise ExecutionError(f"GET_DATA slot {slot} out of range ({len(inputs)} inputs)")
            value = inputs[slot]
            if enc is not None and value is not None:
                value = self._decrypt(value, enc)
            stack.append(value)
        elif opcode is Opcode.SET_DATA:
            slot, enc = ins.operand  # type: ignore[misc]
            if not stack:
                raise ExecutionError("SET_DATA on empty stack")
            value = stack.pop()
            if enc is not None and value is not None:
                value = self._encrypt(value, enc)
            if slot >= len(outputs):
                raise ExecutionError(f"SET_DATA slot {slot} out of range")
            outputs[slot] = value
        elif opcode is Opcode.PUSH_CONST:
            stack.append(ins.operand)
        elif opcode is Opcode.COMP:
            right, left = _pop2(stack, "COMP")
            stack.append(_compare(str(ins.operand), left, right))
        elif opcode is Opcode.LIKE:
            pattern, value = _pop2(stack, "LIKE")
            stack.append(_like(value, pattern))
        elif opcode is Opcode.AND:
            right, left = _pop2(stack, "AND")
            stack.append(_kleene_and(left, right))
        elif opcode is Opcode.OR:
            right, left = _pop2(stack, "OR")
            stack.append(_kleene_or(left, right))
        elif opcode is Opcode.NOT:
            if not stack:
                raise ExecutionError("NOT on empty stack")
            value = stack.pop()
            stack.append(None if value is None else not value)
        elif opcode is Opcode.ARITH:
            right, left = _pop2(stack, "ARITH")
            stack.append(_arith(str(ins.operand), left, right))
        elif opcode is Opcode.IS_NULL:
            if not stack:
                raise ExecutionError("IS_NULL on empty stack")
            value = stack.pop()
            result = value is None
            stack.append(not result if ins.operand else result)
        elif opcode is Opcode.TM_EVAL:
            blob, n_inputs = ins.operand  # type: ignore[misc]
            if self._enclave is None:
                raise ExecutionError(
                    "TM_EVAL encountered but no enclave is configured for this query"
                )
            if len(stack) < n_inputs:
                raise ExecutionError("TM_EVAL underflow: not enough inputs on stack")
            popped = [stack.pop() for __ in range(n_inputs)]
            enclave_inputs = list(reversed(popped))
            handle = self._handle_cache.get(blob)
            if handle is None:
                handle = self._enclave.register_program(blob)
                self._handle_cache[blob] = handle
            result = self._enclave.eval(handle, enclave_inputs)
            stack.append(result[0])
        else:  # pragma: no cover - exhaustive
            raise ExecutionError(f"unknown opcode {opcode}")

    def _decrypt(self, value: object, enc: EncryptionInfo) -> SqlScalar:
        if self._crypto is None:
            raise ExecutionError(
                "encrypted GET_DATA outside the enclave: the host must never "
                "decrypt column data"
            )
        if not isinstance(value, Ciphertext):
            raise ExecutionError(
                f"GET_DATA annotated encrypted but input is {type(value).__name__}"
            )
        return self._crypto.decrypt_cell(value, enc)

    def _encrypt(self, value: object, enc: EncryptionInfo) -> Ciphertext:
        if self._crypto is None:
            raise ExecutionError(
                "encrypted SET_DATA outside the enclave: the host must never "
                "encrypt column data"
            )
        return self._crypto.encrypt_cell(value, enc)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Operation semantics
# ---------------------------------------------------------------------------


def _pop2(stack: list[object], what: str) -> tuple[object, object]:
    if len(stack) < 2:
        raise ExecutionError(f"{what} needs two operands, stack has {len(stack)}")
    return stack.pop(), stack.pop()


def _compare(op: str, left: object, right: object) -> bool | None:
    if left is None or right is None:
        return None
    left_ct = isinstance(left, Ciphertext)
    right_ct = isinstance(right, Ciphertext)
    if left_ct != right_ct:
        raise ExecutionError(
            "cannot compare an encrypted value with a plaintext value"
        )
    if left_ct and right_ct:
        # DET ciphertext: equality preserved value-wise, so =/<> are exact.
        # Anything else on ciphertext is meaningless and rejected.
        if op == "=":
            return left.envelope == right.envelope  # type: ignore[union-attr]
        if op == "<>":
            return left.envelope != right.envelope  # type: ignore[union-attr]
        raise ExecutionError(f"operator {op!r} is not supported on ciphertext")
    c = compare_values(left, right)  # type: ignore[arg-type]
    if op == "=":
        return c == 0
    if op == "<>":
        return c != 0
    if op == "<":
        return c < 0
    if op == "<=":
        return c <= 0
    if op == ">":
        return c > 0
    if op == ">=":
        return c >= 0
    raise ExecutionError(f"unknown comparison operator {op!r}")


def _like(value: object, pattern: object) -> bool | None:
    if value is None or pattern is None:
        return None
    if isinstance(value, Ciphertext) or isinstance(pattern, Ciphertext):
        raise ExecutionError("LIKE on ciphertext requires enclave evaluation")
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise ExecutionError("LIKE requires string operands")
    return like_match(value, pattern)


def _kleene_and(left: object, right: object) -> bool | None:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return bool(left) and bool(right)


def _kleene_or(left: object, right: object) -> bool | None:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return bool(left) or bool(right)


def _arith(op: str, left: object, right: object) -> SqlScalar:
    if left is None or right is None:
        return None
    if isinstance(left, Ciphertext) or isinstance(right, Ciphertext):
        raise ExecutionError("arithmetic on encrypted values is not supported in AEv2")
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError("arithmetic requires numeric operands")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            # SQL integer division truncates toward zero.
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        return left / right
    raise ExecutionError(f"unknown arithmetic operator {op!r}")
