"""Expression services (ES): trees, stack programs, compiler, and VM.

This is the module the paper identifies as the *only* engine component
that computes on column values — and therefore the only component that
had to learn about encryption and be ported into the enclave.
"""

from repro.sqlengine.expression.compiler import CompiledExpression, compile_expression
from repro.sqlengine.expression.program import Instruction, Opcode, StackProgram
from repro.sqlengine.expression.tree import (
    AndExpr,
    ArithExpr,
    ArithOp,
    ColumnRefExpr,
    CompareExpr,
    CompareOp,
    Expr,
    IsNullExpr,
    LikeExpr,
    LiteralExpr,
    NotExpr,
    OrExpr,
    ParameterExpr,
)
from repro.sqlengine.expression.vm import CryptoContext, EnclaveConnector, StackMachine

__all__ = [
    "AndExpr",
    "ArithExpr",
    "ArithOp",
    "ColumnRefExpr",
    "CompareExpr",
    "CompareOp",
    "CompiledExpression",
    "CryptoContext",
    "EnclaveConnector",
    "Expr",
    "Instruction",
    "IsNullExpr",
    "LikeExpr",
    "LiteralExpr",
    "NotExpr",
    "Opcode",
    "OrExpr",
    "ParameterExpr",
    "StackMachine",
    "StackProgram",
    "compile_expression",
]
