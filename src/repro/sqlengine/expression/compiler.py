"""Compilation of expression trees to stack programs with the TMEval split.

This reproduces Figure 7 of the paper: a comparison over an
enclave-required encrypted column compiles to *two* programs — a host
program whose ``TM_EVAL`` instruction holds the serialized enclave
sub-program, and the enclave sub-program itself, whose ``GET_DATA``
instructions carry the encryption annotations that drive transparent
decryption at the enclave's stack boundary.

Placement rules (Sections 2.4.3 / 4.4):

* Plaintext-only subexpressions run on the host.
* ``=`` / ``<>`` over DET operands run on the host as ciphertext binary
  comparisons — no enclave involved.
* ``=``, range comparisons, and ``LIKE`` over RND operands with
  enclave-enabled CEKs compile into enclave sub-programs.
* Everything else over encrypted operands is a compile-time error (type
  deduction normally rejects these before we get here; the checks are
  repeated because the compiler is also used directly in tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.aead import EncryptionScheme
from repro.errors import TypeDeductionError
from repro.sqlengine.expression.program import Instruction, Opcode, StackProgram
from repro.sqlengine.expression.tree import (
    AndExpr,
    ArithExpr,
    ColumnRefExpr,
    CompareExpr,
    Expr,
    IsNullExpr,
    LikeExpr,
    LiteralExpr,
    NotExpr,
    OrExpr,
    ParameterExpr,
)
from repro.sqlengine.types import EncryptionInfo


@dataclass
class CompiledExpression:
    """The result of compiling one scalar expression.

    ``host_program`` is the CEsComp evaluated by the host VM;
    ``enclave_programs`` lists each serialized enclave sub-program (already
    embedded in TM_EVAL operands; exposed for registration/inspection);
    ``enclave_ceks`` is the set of CEK names the enclave will need.
    """

    host_program: StackProgram
    enclave_programs: list[bytes] = field(default_factory=list)
    enclave_ceks: set[str] = field(default_factory=set)

    @property
    def uses_enclave(self) -> bool:
        return bool(self.enclave_programs)


def compile_expression(expr: Expr) -> CompiledExpression:
    """Compile ``expr`` into a host program with embedded enclave splits."""
    compiled = CompiledExpression(host_program=StackProgram())
    _emit(expr, compiled.host_program.instructions, compiled)
    return compiled


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _encryption_of(expr: Expr) -> EncryptionInfo | None:
    if isinstance(expr, (ColumnRefExpr, ParameterExpr)):
        return expr.column_type.encryption
    if isinstance(expr, LiteralExpr):
        return expr.column_type.encryption
    return None


def _is_operand(expr: Expr) -> bool:
    return isinstance(expr, (ColumnRefExpr, ParameterExpr, LiteralExpr))


def _emit_operand_host(expr: Expr, out: list[Instruction], compiled: CompiledExpression) -> None:
    """Emit host code that pushes an operand's raw cell value (no crypto)."""
    if isinstance(expr, (ColumnRefExpr, ParameterExpr)):
        out.append(Instruction(Opcode.GET_DATA, (expr.slot, None)))
    elif isinstance(expr, LiteralExpr):
        out.append(Instruction(Opcode.PUSH_CONST, expr.value))
    else:
        _emit(expr, out, compiled)


def _check_enclave_pair(left: EncryptionInfo | None, right: EncryptionInfo | None, what: str) -> EncryptionInfo:
    """Validate a comparison between encrypted operands for enclave eval."""
    if left is None or right is None:
        raise TypeDeductionError(
            f"{what}: cannot mix an encrypted operand with a plaintext operand; "
            "use a parameter so the driver can encrypt it"
        )
    if left.cek_name != right.cek_name:
        raise TypeDeductionError(
            f"{what}: operands are encrypted with different CEKs "
            f"({left.cek_name!r} vs {right.cek_name!r})"
        )
    if left.scheme is not right.scheme:
        raise TypeDeductionError(f"{what}: operands use different encryption schemes")
    if not (left.enclave_enabled and right.enclave_enabled):
        raise TypeDeductionError(
            f"{what}: operation requires an enclave-enabled CEK"
        )
    if left.scheme is not EncryptionScheme.RANDOMIZED:
        raise TypeDeductionError(
            f"{what}: rich computations require randomized encryption; "
            "deterministic encryption supports only equality"
        )
    return left


def _split_to_enclave(
    operands: list[Expr],
    body: list[Instruction],
    out: list[Instruction],
    compiled: CompiledExpression,
) -> None:
    """Wrap ``body`` (which consumes len(operands) GET_DATAs) in a TM_EVAL.

    The enclave program reads its inputs from the TM_EVAL input array with
    encryption annotations, runs ``body``, and SET_DATAs a plaintext result
    — the boolean the paper notes is returned to SQL Server in the clear.
    """
    enclave_ins: list[Instruction] = []
    for slot, operand in enumerate(operands):
        enc = _encryption_of(operand)
        if isinstance(operand, LiteralExpr):
            enclave_ins.append(Instruction(Opcode.PUSH_CONST, operand.value))
        else:
            enclave_ins.append(Instruction(Opcode.GET_DATA, (slot, enc)))
    enclave_ins.extend(body)
    enclave_ins.append(Instruction(Opcode.SET_DATA, (0, None)))
    blob = StackProgram(enclave_ins).serialize()

    n_inputs = len(operands)
    for operand in operands:
        _emit_operand_host(operand, out, compiled)
    out.append(Instruction(Opcode.TM_EVAL, (blob, n_inputs)))

    compiled.enclave_programs.append(blob)
    for operand in operands:
        enc = _encryption_of(operand)
        if enc is not None:
            compiled.enclave_ceks.add(enc.cek_name)


# ---------------------------------------------------------------------------
# Main recursive emitter
# ---------------------------------------------------------------------------


def _emit(expr: Expr, out: list[Instruction], compiled: CompiledExpression) -> None:
    if isinstance(expr, (ColumnRefExpr, ParameterExpr)):
        enc = expr.column_type.encryption
        if enc is not None and enc.scheme is EncryptionScheme.RANDOMIZED and not enc.enclave_enabled:
            # A bare RND value may be projected (moved), never computed on;
            # the host moves it as an opaque blob.
            pass
        out.append(Instruction(Opcode.GET_DATA, (expr.slot, None)))
        return

    if isinstance(expr, LiteralExpr):
        out.append(Instruction(Opcode.PUSH_CONST, expr.value))
        return

    if isinstance(expr, CompareExpr):
        _emit_compare(expr, out, compiled)
        return

    if isinstance(expr, LikeExpr):
        _emit_like(expr, out, compiled)
        return

    if isinstance(expr, AndExpr):
        _emit(expr.left, out, compiled)
        _emit(expr.right, out, compiled)
        out.append(Instruction(Opcode.AND))
        return

    if isinstance(expr, OrExpr):
        _emit(expr.left, out, compiled)
        _emit(expr.right, out, compiled)
        out.append(Instruction(Opcode.OR))
        return

    if isinstance(expr, NotExpr):
        _emit(expr.operand, out, compiled)
        out.append(Instruction(Opcode.NOT))
        return

    if isinstance(expr, ArithExpr):
        left_enc = _encryption_of(expr.left)
        right_enc = _encryption_of(expr.right)
        if left_enc is not None or right_enc is not None:
            raise TypeDeductionError("arithmetic on encrypted columns is not supported")
        _emit(expr.left, out, compiled)
        _emit(expr.right, out, compiled)
        out.append(Instruction(Opcode.ARITH, expr.op.value))
        return

    if isinstance(expr, IsNullExpr):
        _emit(expr.operand, out, compiled)
        out.append(Instruction(Opcode.IS_NULL, expr.negated))
        return

    raise TypeDeductionError(f"cannot compile expression node {type(expr).__name__}")


def _emit_compare(expr: CompareExpr, out: list[Instruction], compiled: CompiledExpression) -> None:
    left_enc = _encryption_of(expr.left)
    right_enc = _encryption_of(expr.right)

    if left_enc is None and right_enc is None:
        _emit(expr.left, out, compiled)
        _emit(expr.right, out, compiled)
        out.append(Instruction(Opcode.COMP, expr.op.value))
        return

    deterministic = (
        left_enc is not None
        and right_enc is not None
        and left_enc.scheme is EncryptionScheme.DETERMINISTIC
        and right_enc.scheme is EncryptionScheme.DETERMINISTIC
    )
    if deterministic and expr.op.value in ("=", "<>"):
        # Host-side VARBINARY equality on ciphertext (Section 4.4): no
        # TMEval instruction is generated for DET equality.
        if left_enc.cek_name != right_enc.cek_name:  # type: ignore[union-attr]
            raise TypeDeductionError(
                "DET equality requires both operands encrypted with the same CEK"
            )
        _emit_operand_host(expr.left, out, compiled)
        _emit_operand_host(expr.right, out, compiled)
        out.append(Instruction(Opcode.COMP, expr.op.value))
        return

    # Everything else over encrypted operands needs the enclave.
    _check_enclave_pair(left_enc, right_enc, f"comparison {expr.op.value!r}")
    if not (_is_operand(expr.left) and _is_operand(expr.right)):
        raise TypeDeductionError("enclave comparisons support only simple operands")
    body = [Instruction(Opcode.COMP, expr.op.value)]
    _split_to_enclave([expr.left, expr.right], body, out, compiled)


def _emit_like(expr: LikeExpr, out: list[Instruction], compiled: CompiledExpression) -> None:
    value_enc = _encryption_of(expr.value)
    pattern_enc = _encryption_of(expr.pattern)

    if value_enc is None and pattern_enc is None:
        _emit(expr.value, out, compiled)
        _emit(expr.pattern, out, compiled)
        out.append(Instruction(Opcode.LIKE))
        return

    _check_enclave_pair(value_enc, pattern_enc, "LIKE")
    if not (_is_operand(expr.value) and _is_operand(expr.pattern)):
        raise TypeDeductionError("enclave LIKE supports only simple operands")
    body = [Instruction(Opcode.LIKE)]
    _split_to_enclave([expr.value, expr.pattern], body, out, compiled)
