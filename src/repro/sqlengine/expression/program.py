"""Stack-machine programs — the analog of SQL Server's ``CEsComp`` objects.

Expression services (ES) is a stack machine (Section 4.4). A compiled
expression is a sequence of instructions; data moves on and off the stack
via ``GetData`` / ``SetData``, which carry type annotations including the
CEK identifier and encryption scheme. During *enclave* evaluation those two
instructions transparently decrypt/encrypt at the stack boundary, so the
program body itself is oblivious to encryption — exactly the design in
Section 4.4.1.

``TMEval`` is the new instruction the paper adds for enclave computation:
it holds a *serialized* enclave sub-program (a deep copy, so the enclave
never dereferences host memory) plus the number of inputs it consumes from
the host stack.

The binary serialization implemented here is what crosses the host→enclave
boundary when a program is registered.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field

from repro.crypto.aead import EncryptionScheme
from repro.errors import SqlError
from repro.sqlengine.types import EncryptionInfo
from repro.sqlengine.values import SqlScalar, deserialize_value, serialize_value


class Opcode(enum.Enum):
    GET_DATA = 1       # push inputs[slot]           (operand: slot, enc_info)
    SET_DATA = 2       # pop into outputs[slot]      (operand: slot, enc_info)
    PUSH_CONST = 3     # push constant               (operand: value)
    COMP = 4           # pop b, a; push a OP b       (operand: CompareOp name)
    LIKE = 5           # pop pattern, value; push bool
    AND = 6            # Kleene AND
    OR = 7             # Kleene OR
    NOT = 8            # Kleene NOT
    ARITH = 9          # pop b, a; push a OP b       (operand: ArithOp name)
    IS_NULL = 10       # pop a; push a IS NULL       (operand: negated flag)
    TM_EVAL = 11       # host-only: invoke enclave   (operand: program bytes, n_inputs)


@dataclass(frozen=True)
class Instruction:
    """One stack-machine instruction.

    ``operand`` is opcode-specific:

    * GET_DATA / SET_DATA: ``(slot, EncryptionInfo | None)``
    * PUSH_CONST: the constant value
    * COMP / ARITH: the operator's string name
    * IS_NULL: bool ``negated``
    * TM_EVAL: ``(serialized_program_bytes, n_inputs)``
    """

    opcode: Opcode
    operand: object = None


@dataclass
class StackProgram:
    """A compiled expression (``CEsComp``)."""

    instructions: list[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    # -- serialization (the deep copy that crosses the enclave boundary) ----

    def serialize(self) -> bytes:
        out = bytearray()
        out += struct.pack(">I", len(self.instructions))
        for ins in self.instructions:
            out.append(ins.opcode.value)
            out += _serialize_operand(ins)
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "StackProgram":
        if len(data) < 4:
            raise SqlError("truncated stack program")
        (count,) = struct.unpack_from(">I", data, 0)
        offset = 4
        instructions: list[Instruction] = []
        for __ in range(count):
            if offset >= len(data):
                raise SqlError("truncated stack program")
            opcode = Opcode(data[offset])
            offset += 1
            operand, offset = _deserialize_operand(opcode, data, offset)
            instructions.append(Instruction(opcode, operand))
        if offset != len(data):
            raise SqlError("trailing bytes after stack program")
        return cls(instructions)

    def referenced_ceks(self) -> set[str]:
        """CEK names referenced by GET_DATA / SET_DATA annotations."""
        ceks: set[str] = set()
        for ins in self.instructions:
            if ins.opcode in (Opcode.GET_DATA, Opcode.SET_DATA):
                __, enc = ins.operand  # type: ignore[misc]
                if enc is not None:
                    ceks.add(enc.cek_name)
            elif ins.opcode is Opcode.TM_EVAL:
                blob, __ = ins.operand  # type: ignore[misc]
                ceks |= StackProgram.deserialize(blob).referenced_ceks()
        return ceks


# ---------------------------------------------------------------------------
# Operand (de)serialization
# ---------------------------------------------------------------------------

_NULL_MARKER = b"\x00"
_VALUE_MARKER = b"\x01"


def _serialize_enc_info(enc: EncryptionInfo | None) -> bytes:
    if enc is None:
        return b"\x00"
    name = enc.cek_name.encode("utf-8")
    scheme = 1 if enc.scheme is EncryptionScheme.DETERMINISTIC else 2
    flags = 1 if enc.enclave_enabled else 0
    return b"\x01" + bytes([scheme, flags]) + struct.pack(">H", len(name)) + name


def _deserialize_enc_info(data: bytes, offset: int) -> tuple[EncryptionInfo | None, int]:
    present = data[offset]
    offset += 1
    if present == 0:
        return None, offset
    scheme_byte, flags = data[offset], data[offset + 1]
    offset += 2
    (name_len,) = struct.unpack_from(">H", data, offset)
    offset += 2
    name = data[offset : offset + name_len].decode("utf-8")
    offset += name_len
    scheme = (
        EncryptionScheme.DETERMINISTIC if scheme_byte == 1 else EncryptionScheme.RANDOMIZED
    )
    return EncryptionInfo(scheme=scheme, cek_name=name, enclave_enabled=flags == 1), offset


def _serialize_value_operand(value: SqlScalar) -> bytes:
    if value is None:
        return _NULL_MARKER
    blob = serialize_value(value)
    return _VALUE_MARKER + struct.pack(">I", len(blob)) + blob


def _deserialize_value_operand(data: bytes, offset: int) -> tuple[SqlScalar, int]:
    marker = data[offset]
    offset += 1
    if marker == 0:
        return None, offset
    (length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    value = deserialize_value(data[offset : offset + length])
    return value, offset + length


def _serialize_operand(ins: Instruction) -> bytes:
    opcode = ins.opcode
    if opcode in (Opcode.GET_DATA, Opcode.SET_DATA):
        slot, enc = ins.operand  # type: ignore[misc]
        return struct.pack(">H", slot) + _serialize_enc_info(enc)
    if opcode is Opcode.PUSH_CONST:
        return _serialize_value_operand(ins.operand)  # type: ignore[arg-type]
    if opcode in (Opcode.COMP, Opcode.ARITH):
        name = str(ins.operand).encode("utf-8")
        return bytes([len(name)]) + name
    if opcode is Opcode.IS_NULL:
        return b"\x01" if ins.operand else b"\x00"
    if opcode is Opcode.TM_EVAL:
        blob, n_inputs = ins.operand  # type: ignore[misc]
        return struct.pack(">IH", len(blob), n_inputs) + blob
    return b""


def _deserialize_operand(opcode: Opcode, data: bytes, offset: int) -> tuple[object, int]:
    if opcode in (Opcode.GET_DATA, Opcode.SET_DATA):
        (slot,) = struct.unpack_from(">H", data, offset)
        enc, offset = _deserialize_enc_info(data, offset + 2)
        return (slot, enc), offset
    if opcode is Opcode.PUSH_CONST:
        return _deserialize_value_operand(data, offset)
    if opcode in (Opcode.COMP, Opcode.ARITH):
        length = data[offset]
        offset += 1
        name = data[offset : offset + length].decode("utf-8")
        return name, offset + length
    if opcode is Opcode.IS_NULL:
        return data[offset] == 1, offset + 1
    if opcode is Opcode.TM_EVAL:
        blob_len, n_inputs = struct.unpack_from(">IH", data, offset)
        offset += 6
        blob = data[offset : offset + blob_len]
        return (blob, n_inputs), offset + blob_len
    return None, offset


__all__ = ["Instruction", "Opcode", "StackProgram"]
