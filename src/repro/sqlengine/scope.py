"""Name resolution scope for binding queries against the catalog."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BindError
from repro.sqlengine.catalog import Catalog, ColumnSchema, TableSchema
from repro.sqlengine.sqlparser import ast


@dataclass(frozen=True)
class ResolvedColumn:
    """A column resolved to its table binding and global row slot."""

    binding: str           # table alias (or name) it resolved through
    table: TableSchema
    column: ColumnSchema
    slot: int              # position in the concatenated row layout


class Scope:
    """Tables in scope for one statement, with a concatenated row layout.

    For ``FROM A JOIN B`` the row layout is A's columns followed by B's;
    slot numbers index that layout. Parameters are appended after all
    column slots by the binder.
    """

    def __init__(self, catalog: Catalog):
        self._catalog = catalog
        self._bindings: list[tuple[str, TableSchema, int]] = []
        self._width = 0

    def add_table(self, ref: ast.TableRef) -> TableSchema:
        schema = self._catalog.table(ref.name)
        binding = ref.binding_name
        if any(b == binding for b, __, __ in self._bindings):
            raise BindError(f"duplicate table binding {binding!r}")
        self._bindings.append((binding, schema, self._width))
        self._width += schema.arity
        return schema

    @property
    def width(self) -> int:
        return self._width

    def bindings(self) -> list[tuple[str, TableSchema, int]]:
        return list(self._bindings)

    def resolve(self, name: ast.ColumnName) -> ResolvedColumn:
        matches: list[ResolvedColumn] = []
        for binding, schema, base in self._bindings:
            if name.table is not None and name.table.lower() != binding:
                continue
            for i, column in enumerate(schema.columns):
                if column.name.lower() == name.name.lower():
                    matches.append(
                        ResolvedColumn(binding=binding, table=schema, column=column, slot=base + i)
                    )
        if not matches:
            raise BindError(f"unknown column {name}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column {name}")
        return matches[0]

    def all_columns(self) -> list[ResolvedColumn]:
        out: list[ResolvedColumn] = []
        for binding, schema, base in self._bindings:
            for i, column in enumerate(schema.columns):
                out.append(ResolvedColumn(binding=binding, table=schema, column=column, slot=base + i))
        return out
