"""Storage: slotted pages, disk, buffer pool, heap files, write-ahead log."""

from repro.sqlengine.storage.bufferpool import BufferPool
from repro.sqlengine.storage.disk import Disk
from repro.sqlengine.storage.heap import HeapFile, RowId
from repro.sqlengine.storage.page import PAGE_SIZE, Page
from repro.sqlengine.storage.record import deserialize_row, serialize_row
from repro.sqlengine.storage.wal import LogOp, LogRecord, WriteAheadLog

__all__ = [
    "BufferPool",
    "Disk",
    "HeapFile",
    "LogOp",
    "LogRecord",
    "PAGE_SIZE",
    "Page",
    "RowId",
    "WriteAheadLog",
    "deserialize_row",
    "serialize_row",
]
