"""A simple LRU buffer pool between the executor and the disk.

Encrypted cells stay encrypted in the buffer pool — the paper's central
operational guarantee ("encrypted ... in SQL Server's internal memory while
in use"). The pool never deserializes cell contents; it caches
:class:`~repro.sqlengine.storage.page.Page` objects whose records are raw
bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.faults.registry import fault_point, register_fault_site
from repro.obs.latchprof import TimedLatch
from repro.obs.metrics import StatsView, get_registry
from repro.sqlengine.storage.disk import Disk
from repro.sqlengine.storage.page import Page

if TYPE_CHECKING:
    from repro.sqlengine.storage.wal import WriteAheadLog

register_fault_site(
    "bufferpool.evict", "one page evicted (dirty pages write back to disk)"
)


class BufferPoolStats(StatsView):
    """Per-pool view over the global ``bufferpool.*`` counters."""

    FIELDS = {
        "hits": "bufferpool.page_hits",
        "misses": "bufferpool.page_misses",
        "evictions": "bufferpool.pages_evicted",
        "flushes": "bufferpool.pages_flushed",
    }


class BufferPool:
    """LRU cache of pages with write-back on eviction and explicit flush.

    Hits, misses, evictions, and flushes all feed the metrics registry;
    evictions used to be silent, which made cache-size tuning blind.
    """

    def __init__(self, disk: Disk, capacity: int = 256, wal: "WriteAheadLog | None" = None):
        self._disk = disk
        self._wal = wal
        self._capacity = max(1, capacity)
        self._pages: OrderedDict[int, Page] = OrderedDict()
        self.stats = BufferPoolStats()
        self._cached_gauge = get_registry().gauge(
            "bufferpool.pages_cached", help="pages resident in this process's pools"
        )
        self._next_page_id = 0
        # Freshness hooks: page_write_hook is called with (page_id, image)
        # immediately before every disk write-back (the anchor's page map
        # leads the disk); page_wrote_hook is called with (page_id,) after
        # the write lands, confirming the advance so the anchor can stop
        # tolerating the previous version for that page.
        self.page_write_hook = None
        self.page_wrote_hook = None
        # Reentrant so heap files can hold the pool latch across a page
        # mutation (serializing it against eviction's page serialization)
        # while the nested get()/allocate_page() re-acquires it.
        self._latch = TimedLatch(
            "repro.sqlengine.storage.bufferpool.BufferPool._latch"
        )

    @property
    def latch(self) -> TimedLatch:
        """The pool latch; heap files hold it while mutating page contents."""
        return self._latch

    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    @property
    def evictions(self) -> int:
        return self.stats.evictions

    @property
    def flushes(self) -> int:
        return self.stats.flushes

    @property
    def hit_ratio(self) -> float:
        """Fraction of page requests served from memory (1.0 when idle)."""
        total = self.stats.hits + self.stats.misses
        return self.stats.hits / total if total else 1.0

    def allocate_page(self) -> Page:
        """Create a brand-new page (not yet on disk until flushed/evicted)."""
        with self._latch:
            page = Page(self._next_page_id)
            self._next_page_id += 1
            self._put(page)
            return page

    def note_existing_page_id(self, page_id: int) -> None:
        """Advance the allocator past ids found on disk (recovery path)."""
        with self._latch:
            self._next_page_id = max(self._next_page_id, page_id + 1)

    def get_or_create(self, page_id: int) -> Page:
        """Fetch a page, materializing an empty one if it exists nowhere.

        Recovery redo may reference pages that were allocated before the
        crash but never flushed; physically redoing into a fresh page of
        the same id is exactly what page-oriented redo does.
        """
        with self._latch:
            if page_id in self._pages or self._disk.has_page(page_id):
                return self.get(page_id)
            page = Page(page_id)
            self.note_existing_page_id(page_id)
            self._put(page)
            return page

    def get(self, page_id: int) -> Page:
        with self._latch:
            page = self._pages.get(page_id)
            if page is not None:
                self._pages.move_to_end(page_id)
                self.stats.inc("hits")
                return page
            self.stats.inc("misses")
            page = Page.from_bytes(self._disk.read_page(page_id))
            self._put(page)
            return page

    def _put(self, page: Page) -> None:
        with self._latch:
            self._pages[page.page_id] = page
            self._pages.move_to_end(page.page_id)
            while len(self._pages) > self._capacity:
                fault_point("bufferpool.evict")
                __, evicted = self._pages.popitem(last=False)
                self.stats.inc("evictions")
                if evicted.dirty:
                    self._write_back(evicted)
            self._cached_gauge.set(len(self._pages))

    def _write_back(self, page: Page) -> None:
        # Write-ahead rule: the log records covering this page's changes
        # must be durable before the page image lands on disk, otherwise a
        # crash leaves rows on disk that recovery knows nothing about.
        if self._wal is not None:
            self._wal.flush()
        image = page.to_bytes()
        # Anchor-before-data: the freshness anchor learns the new page
        # version before the disk does, so a crash in this window leaves
        # the disk exactly one (tolerated) version behind — never a page
        # the anchor knows nothing about.
        if self.page_write_hook is not None:
            self.page_write_hook(page.page_id, image)
        self._disk.write_page(page.page_id, image)
        if self.page_wrote_hook is not None:
            self.page_wrote_hook(page.page_id)
        page.dirty = False

    def flush_all(self) -> None:
        with self._latch:
            for page in self._pages.values():
                if page.dirty:
                    self._write_back(page)
                    self.stats.inc("flushes")

    def drop_all(self) -> None:
        """Discard every cached page without writing (crash simulation)."""
        with self._latch:
            self._pages.clear()
            self._cached_gauge.set(0)

    def cached_page_ids(self) -> list[int]:
        with self._latch:
            return list(self._pages)
