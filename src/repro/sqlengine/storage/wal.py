"""The write-ahead log.

Log records carry physical images (serialized rows) for redo and enough
information for *logical* undo — the combination the paper describes for
SQL Server ("redo recovery is physical, but undo recovery of indexes is
logical", Section 4.5). Like the data pages, the log is adversary-visible:
before/after images of encrypted cells are ciphertext envelopes.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ForcedCrash
from repro.faults.actions import PartialFlushDirective
from repro.faults.registry import fault_point, register_fault_site
from repro.obs.flightrec import record_event
from repro.obs.latchprof import TimedLatch
from repro.obs.metrics import get_registry
from repro.sqlengine.storage.heap import RowId

#: Chain digest before any record is folded. Must equal
#: ``repro.enclave.anchor.GENESIS`` — the host cannot import across the
#: trust boundary, so the constant (32 zero bytes) is mirrored here.
CHAIN_GENESIS = b"\x00" * 32

register_fault_site("wal.append", "one log record appended")
register_fault_site(
    "wal.flush",
    "the log forced to disk (commit durability point); partial-flush capable",
)


class LogOp(enum.Enum):
    BEGIN = "begin"
    # Two-phase commit: the participant's durable promise to commit on
    # request. The record's ``table`` field carries the global transaction
    # id (gtid) — as do the COMMIT/ABORT records resolving it, so recovery
    # can replay coordinator decisions idempotently.
    PREPARE = "prepare"
    COMMIT = "commit"
    ABORT = "abort"
    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"
    CHECKPOINT = "checkpoint"
    # Online key rotation (logged under txn_id 0, like CHECKPOINT, so the
    # loser/in-doubt analysis never adopts them). ``table`` carries the
    # rotation id; ``after`` carries the encoded rotation descriptor or
    # batch watermark. Folding these through the freshness chain means a
    # restore to a pre-rotation log forks the chain at ROTATE_BEGIN.
    ROTATE_BEGIN = "rotate_begin"
    ROTATE_PROGRESS = "rotate_progress"
    ROTATE_END = "rotate_end"


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    txn_id: int
    op: LogOp
    table: str | None = None
    rid: RowId | None = None
    before: bytes | None = None   # serialized row image
    after: bytes | None = None    # serialized row image


def encode_record(record: LogRecord) -> bytes:
    """Stable byte encoding of one record for the freshness hash chain.

    Length-prefixed so no two distinct records share an encoding. The
    freshness anchor folds these blobs — any edit, reorder, or swap of
    durable records changes every chain digest from that point on.
    """

    def _field(data: bytes) -> bytes:
        return len(data).to_bytes(4, "big") + data

    rid = b"" if record.rid is None else (
        record.rid.page_id.to_bytes(8, "big") + record.rid.slot.to_bytes(4, "big")
    )
    return b"".join((
        record.lsn.to_bytes(8, "big"),
        record.txn_id.to_bytes(8, "big", signed=True),
        _field(record.op.value.encode("utf-8")),
        _field((record.table or "").encode("utf-8")),
        _field(rid),
        _field(record.before or b""),
        _field(record.after or b""),
    ))


def chain_fold(digest: bytes, blob: bytes) -> bytes:
    """One chain step; must match ``repro.enclave.anchor.fold``."""
    return hashlib.sha256(digest + blob).digest()


@dataclass
class WriteAheadLog:
    """An append-only log that survives crashes (unlike the buffer pool).

    Alongside the records the log maintains a rolling SHA-256 **chain**
    over the durable stream (extended at flush time, one
    :func:`chain_fold` per newly durable record). The chain head feeds
    the freshness anchor: ``flush_hook`` — when set — is called *after*
    the latch is released with ``(flushed_lsn, chain_digest)`` on every
    completed flush. A partial flush (power loss mid-fsync) extends the
    chain but never calls the hook, exactly as a real crash between
    fsync and the anchor ecall would.
    """

    _records: list[LogRecord] = field(default_factory=list)
    _lock: TimedLatch = field(
        default_factory=lambda: TimedLatch(
            "repro.sqlengine.storage.wal.WriteAheadLog._lock"
        )
    )
    _next_lsn: int = 0
    flushed_lsn: int = -1
    #: chain head: digest over durable records ``[_base_lsn, _chain_lsn]``
    _chain_lsn: int = -1
    _chain_digest: bytes = CHAIN_GENESIS
    #: truncation base: records below ``_base_lsn`` are discarded; the
    #: digest at ``_base_lsn - 1`` seeds the fold
    _base_lsn: int = 0
    _base_digest: bytes = CHAIN_GENESIS
    flush_hook: "Callable[[int, bytes], None] | None" = None

    def append(
        self,
        txn_id: int,
        op: LogOp,
        table: str | None = None,
        rid: RowId | None = None,
        before: bytes | None = None,
        after: bytes | None = None,
    ) -> LogRecord:
        fault_point("wal.append", txn_id=txn_id, op=op)
        registry = get_registry()
        with self._lock:
            record = LogRecord(
                lsn=self._next_lsn,
                txn_id=txn_id,
                op=op,
                table=table,
                rid=rid,
                before=before,
                after=after,
            )
            self._next_lsn += 1
            self._records.append(record)
            # Counter updates stay inside the lock: a concurrent flush()
            # holds the same lock, so flushed_lsn can never cover a record
            # whose metrics have not landed yet (the totals and the
            # durability horizon advance atomically together).
            registry.counter("wal.records_appended").inc()
            registry.counter("wal.bytes_written").inc(
                len(before or b"") + len(after or b"")
            )
        return record

    def flush(self) -> None:
        """Force the log to "disk" (commit durability point)."""
        directive = fault_point("wal.flush")
        if isinstance(directive, PartialFlushDirective):
            with self._lock:
                # The tail never regresses: a previously durable record
                # stays durable; only the newest drop_last records miss.
                partial = self._next_lsn - 1 - directive.drop_last
                self.flushed_lsn = max(self.flushed_lsn, partial)
                self._extend_chain_locked()
            if directive.then_crash:
                raise ForcedCrash("wal.flush", "power lost mid-flush (torn log tail)")
            return
        with self._lock:
            self.flushed_lsn = self._next_lsn - 1
            flushed = self.flushed_lsn
            self._extend_chain_locked()
            digest = self._chain_digest
            hook = self.flush_hook
        get_registry().counter("wal.flushes").inc()
        record_event("wal.flush", flushed_lsn=flushed)
        if hook is not None:
            # Outside the latch: the hook crosses into the freshness
            # anchor (enclave/TPM), which must never nest inside storage
            # latches other than the caller's.
            hook(flushed, digest)

    # ------------------------------------------------------ freshness chain

    def _extend_chain_locked(self) -> None:
        """Fold newly durable records into the chain (latch held)."""
        if self._chain_lsn >= self.flushed_lsn or not self._records:
            return
        first_lsn = self._records[0].lsn
        start = self._chain_lsn + 1
        for record in self._records[start - first_lsn : self.flushed_lsn + 1 - first_lsn]:
            self._chain_digest = chain_fold(self._chain_digest, encode_record(record))
        self._chain_lsn = self.flushed_lsn

    def _digest_at_locked(self, upto_lsn: int) -> bytes:
        """The chain digest covering records ``[_base_lsn, upto_lsn]``."""
        if upto_lsn < self._base_lsn - 1:
            raise ValueError(
                f"lsn {upto_lsn} is below the truncation base {self._base_lsn}"
            )
        digest = self._base_digest
        for record in self._records:
            if record.lsn > upto_lsn:
                break
            digest = chain_fold(digest, encode_record(record))
        return digest

    def chain_state(self) -> tuple[int, bytes]:
        """The durable chain head ``(lsn, digest)``."""
        with self._lock:
            return self._chain_lsn, self._chain_digest

    def chain_base(self) -> tuple[int, bytes]:
        """The truncation base ``(lsn, digest at lsn - 1)``."""
        with self._lock:
            return self._base_lsn, self._base_digest

    def durable_chain_blobs(self) -> list[bytes]:
        """Encoded durable records above the base, for anchor verification."""
        with self._lock:
            return [
                encode_record(r)
                for r in self._records
                if self._base_lsn <= r.lsn <= self.flushed_lsn
            ]

    def records(self, durable_only: bool = True) -> list[LogRecord]:
        """Log records visible after a crash (those flushed), or all."""
        with self._lock:
            if durable_only:
                return [r for r in self._records if r.lsn <= self.flushed_lsn]
            return list(self._records)

    def drop_unflushed(self) -> int:
        """Discard records that never reached disk (crash semantics).

        The unflushed tail lives in the process's log buffer — volatile
        memory — so a crash loses it. Leaving it in place would let a
        post-recovery flush resurrect a COMMIT that was never durable,
        changing what the *next* recovery replays (an idempotence
        violation the anchored torture matrix caught). LSNs of the lost
        records are reused, exactly like rewriting a log file from the
        durable tail offset. Returns the number of records dropped.
        """
        with self._lock:
            keep = [r for r in self._records if r.lsn <= self.flushed_lsn]
            lost = len(self._records) - len(keep)
            self._records = keep
            self._next_lsn = self.flushed_lsn + 1
            return lost

    def tear_tail(self, lsn: int) -> int:
        """Post-crash test hook: tear the durable stream down to ``lsn``.

        Models a torn log tail discovered at recovery: records with
        ``lsn`` above the tear point were never fully on disk. Returns
        the number of durable records lost. Only meaningful between
        ``crash()`` and ``recover()`` — tearing a live log is nonsense.
        """
        with self._lock:
            lost = max(0, self.flushed_lsn - lsn)
            if lsn < self.flushed_lsn:
                self.flushed_lsn = lsn
            self._records = [r for r in self._records if r.lsn <= lsn]
            # Keep the LSN sequence contiguous: the torn region of the
            # file gets overwritten by whatever is logged next, and the
            # incremental chain fold assumes gap-free durable LSNs.
            self._next_lsn = min(self._next_lsn, max(lsn, -1) + 1)
            if lsn < self._chain_lsn:
                # The chain head covered records that no longer exist on
                # disk: recompute it over what survived the tear.
                self._chain_lsn = max(lsn, self._base_lsn - 1)
                self._chain_digest = self._digest_at_locked(self._chain_lsn)
            return lost

    def truncate_before(self, lsn: int) -> int:
        """Discard records below ``lsn`` (log truncation); returns count."""
        with self._lock:
            if lsn > self._base_lsn:
                # The new base digest must be computed while the records
                # below the cut still exist; it seeds every future fold.
                self._base_digest = self._digest_at_locked(lsn - 1)
                self._base_lsn = lsn
                if self._chain_lsn < lsn - 1:
                    self._chain_lsn = lsn - 1
                    self._chain_digest = self._base_digest
            keep = [r for r in self._records if r.lsn >= lsn]
            dropped = len(self._records) - len(keep)
            self._records = keep
            return dropped

    def size(self) -> int:
        with self._lock:
            return len(self._records)

    def adversary_view(self) -> list[LogRecord]:
        """Everything in the log — the strong adversary reads it freely."""
        return self.records(durable_only=False)

    # -- adversary hooks (the host owns the log file) ----------------------

    def snapshot_state(self) -> "WalSnapshot":
        """Copy the durable log state — the adversary taking a backup."""
        with self._lock:
            return WalSnapshot(
                records=tuple(self._records),
                next_lsn=self._next_lsn,
                flushed_lsn=self.flushed_lsn,
                chain_lsn=self._chain_lsn,
                chain_digest=self._chain_digest,
                base_lsn=self._base_lsn,
                base_digest=self._base_digest,
            )

    def restore_state(self, snapshot: "WalSnapshot") -> None:
        """Swap an old-but-valid log back in — the rollback attack.

        The restored log is internally consistent (its own chain cache
        included), so nothing host-side can tell it is stale; only the
        anchor's held head — which the restore cannot rewind — can.
        """
        with self._lock:
            self._records = list(snapshot.records)
            self._next_lsn = snapshot.next_lsn
            self.flushed_lsn = snapshot.flushed_lsn
            self._chain_lsn = snapshot.chain_lsn
            self._chain_digest = snapshot.chain_digest
            self._base_lsn = snapshot.base_lsn
            self._base_digest = snapshot.base_digest


@dataclass(frozen=True)
class WalSnapshot:
    """A point-in-time copy of the durable WAL state (adversary backup)."""

    records: tuple[LogRecord, ...]
    next_lsn: int
    flushed_lsn: int
    chain_lsn: int
    chain_digest: bytes
    base_lsn: int
    base_digest: bytes
