"""The write-ahead log.

Log records carry physical images (serialized rows) for redo and enough
information for *logical* undo — the combination the paper describes for
SQL Server ("redo recovery is physical, but undo recovery of indexes is
logical", Section 4.5). Like the data pages, the log is adversary-visible:
before/after images of encrypted cells are ciphertext envelopes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ForcedCrash
from repro.faults.actions import PartialFlushDirective
from repro.faults.registry import fault_point, register_fault_site
from repro.obs.flightrec import record_event
from repro.obs.latchprof import TimedLatch
from repro.obs.metrics import get_registry
from repro.sqlengine.storage.heap import RowId

register_fault_site("wal.append", "one log record appended")
register_fault_site(
    "wal.flush",
    "the log forced to disk (commit durability point); partial-flush capable",
)


class LogOp(enum.Enum):
    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    txn_id: int
    op: LogOp
    table: str | None = None
    rid: RowId | None = None
    before: bytes | None = None   # serialized row image
    after: bytes | None = None    # serialized row image


@dataclass
class WriteAheadLog:
    """An append-only log that survives crashes (unlike the buffer pool)."""

    _records: list[LogRecord] = field(default_factory=list)
    _lock: TimedLatch = field(
        default_factory=lambda: TimedLatch(
            "repro.sqlengine.storage.wal.WriteAheadLog._lock"
        )
    )
    _next_lsn: int = 0
    flushed_lsn: int = -1

    def append(
        self,
        txn_id: int,
        op: LogOp,
        table: str | None = None,
        rid: RowId | None = None,
        before: bytes | None = None,
        after: bytes | None = None,
    ) -> LogRecord:
        fault_point("wal.append", txn_id=txn_id, op=op)
        registry = get_registry()
        with self._lock:
            record = LogRecord(
                lsn=self._next_lsn,
                txn_id=txn_id,
                op=op,
                table=table,
                rid=rid,
                before=before,
                after=after,
            )
            self._next_lsn += 1
            self._records.append(record)
            # Counter updates stay inside the lock: a concurrent flush()
            # holds the same lock, so flushed_lsn can never cover a record
            # whose metrics have not landed yet (the totals and the
            # durability horizon advance atomically together).
            registry.counter("wal.records_appended").inc()
            registry.counter("wal.bytes_written").inc(
                len(before or b"") + len(after or b"")
            )
        return record

    def flush(self) -> None:
        """Force the log to "disk" (commit durability point)."""
        directive = fault_point("wal.flush")
        if isinstance(directive, PartialFlushDirective):
            with self._lock:
                # The tail never regresses: a previously durable record
                # stays durable; only the newest drop_last records miss.
                partial = self._next_lsn - 1 - directive.drop_last
                self.flushed_lsn = max(self.flushed_lsn, partial)
            if directive.then_crash:
                raise ForcedCrash("wal.flush", "power lost mid-flush (torn log tail)")
            return
        with self._lock:
            self.flushed_lsn = self._next_lsn - 1
            flushed = self.flushed_lsn
        get_registry().counter("wal.flushes").inc()
        record_event("wal.flush", flushed_lsn=flushed)

    def records(self, durable_only: bool = True) -> list[LogRecord]:
        """Log records visible after a crash (those flushed), or all."""
        with self._lock:
            if durable_only:
                return [r for r in self._records if r.lsn <= self.flushed_lsn]
            return list(self._records)

    def tear_tail(self, lsn: int) -> int:
        """Post-crash test hook: tear the durable stream down to ``lsn``.

        Models a torn log tail discovered at recovery: records with
        ``lsn`` above the tear point were never fully on disk. Returns
        the number of durable records lost. Only meaningful between
        ``crash()`` and ``recover()`` — tearing a live log is nonsense.
        """
        with self._lock:
            lost = max(0, self.flushed_lsn - lsn)
            if lsn < self.flushed_lsn:
                self.flushed_lsn = lsn
            self._records = [r for r in self._records if r.lsn <= lsn]
            return lost

    def truncate_before(self, lsn: int) -> int:
        """Discard records below ``lsn`` (log truncation); returns count."""
        with self._lock:
            keep = [r for r in self._records if r.lsn >= lsn]
            dropped = len(self._records) - len(keep)
            self._records = keep
            return dropped

    def size(self) -> int:
        with self._lock:
            return len(self._records)

    def adversary_view(self) -> list[LogRecord]:
        """Everything in the log — the strong adversary reads it freely."""
        return self.records(durable_only=False)
