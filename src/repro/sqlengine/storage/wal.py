"""The write-ahead log.

Log records carry physical images (serialized rows) for redo and enough
information for *logical* undo — the combination the paper describes for
SQL Server ("redo recovery is physical, but undo recovery of indexes is
logical", Section 4.5). Like the data pages, the log is adversary-visible:
before/after images of encrypted cells are ciphertext envelopes.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry
from repro.sqlengine.storage.heap import RowId


class LogOp(enum.Enum):
    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    lsn: int
    txn_id: int
    op: LogOp
    table: str | None = None
    rid: RowId | None = None
    before: bytes | None = None   # serialized row image
    after: bytes | None = None    # serialized row image


@dataclass
class WriteAheadLog:
    """An append-only log that survives crashes (unlike the buffer pool)."""

    _records: list[LogRecord] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _next_lsn: int = 0
    flushed_lsn: int = -1

    def append(
        self,
        txn_id: int,
        op: LogOp,
        table: str | None = None,
        rid: RowId | None = None,
        before: bytes | None = None,
        after: bytes | None = None,
    ) -> LogRecord:
        with self._lock:
            record = LogRecord(
                lsn=self._next_lsn,
                txn_id=txn_id,
                op=op,
                table=table,
                rid=rid,
                before=before,
                after=after,
            )
            self._next_lsn += 1
            self._records.append(record)
        registry = get_registry()
        registry.counter("wal.records_appended").inc()
        registry.counter("wal.bytes_written").inc(
            len(before or b"") + len(after or b"")
        )
        return record

    def flush(self) -> None:
        """Force the log to "disk" (commit durability point)."""
        with self._lock:
            self.flushed_lsn = self._next_lsn - 1
        get_registry().counter("wal.flushes").inc()

    def records(self, durable_only: bool = True) -> list[LogRecord]:
        """Log records visible after a crash (those flushed), or all."""
        with self._lock:
            if durable_only:
                return [r for r in self._records if r.lsn <= self.flushed_lsn]
            return list(self._records)

    def truncate_before(self, lsn: int) -> int:
        """Discard records below ``lsn`` (log truncation); returns count."""
        with self._lock:
            keep = [r for r in self._records if r.lsn >= lsn]
            dropped = len(self._records) - len(keep)
            self._records = keep
            return dropped

    def size(self) -> int:
        with self._lock:
            return len(self._records)

    def adversary_view(self) -> list[LogRecord]:
        """Everything in the log — the strong adversary reads it freely."""
        return self.records(durable_only=False)
