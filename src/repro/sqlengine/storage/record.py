"""Row (record) serialization for on-page storage.

A stored row is a sequence of cells, each either NULL, a plaintext scalar,
or an opaque ciphertext envelope. The record format tags each cell so the
engine can move rows without consulting the schema — which is also what
makes the strong adversary's view of disk pages realistic: ciphertext
cells appear as opaque blobs, plaintext cells are readable.
"""

from __future__ import annotations

import struct

from repro.errors import SqlError
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.values import deserialize_value, serialize_value

_CELL_NULL = 0
_CELL_PLAIN = 1
_CELL_CIPHER = 2


def serialize_row(row: tuple) -> bytes:
    """Serialize a row of cell values to bytes."""
    out = bytearray()
    out += struct.pack(">H", len(row))
    for cell in row:
        if cell is None:
            out.append(_CELL_NULL)
        elif isinstance(cell, Ciphertext):
            out.append(_CELL_CIPHER)
            out += struct.pack(">I", len(cell.envelope))
            out += cell.envelope
        else:
            blob = serialize_value(cell)
            out.append(_CELL_PLAIN)
            out += struct.pack(">I", len(blob))
            out += blob
    return bytes(out)


def deserialize_row(data: bytes) -> tuple:
    """Invert :func:`serialize_row`."""
    try:
        (arity,) = struct.unpack_from(">H", data, 0)
        offset = 2
        cells: list[object] = []
        for __ in range(arity):
            tag = data[offset]
            offset += 1
            if tag == _CELL_NULL:
                cells.append(None)
                continue
            (length,) = struct.unpack_from(">I", data, offset)
            offset += 4
            blob = data[offset : offset + length]
            offset += length
            if tag == _CELL_PLAIN:
                cells.append(deserialize_value(blob))
            elif tag == _CELL_CIPHER:
                cells.append(Ciphertext(blob))
            else:
                raise SqlError(f"unknown cell tag {tag}")
    except struct.error as exc:
        raise SqlError(f"malformed stored record: {exc}") from exc
    return tuple(cells)
