"""Heap files: unordered row storage for one table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SqlError
from repro.obs.latchprof import TimedLatch
from repro.sqlengine.storage.bufferpool import BufferPool
from repro.sqlengine.storage.record import deserialize_row, serialize_row


@dataclass(frozen=True, order=True)
class RowId:
    """A stable row address: (page id, slot id)."""

    page_id: int
    slot: int

    def __repr__(self) -> str:
        return f"RID({self.page_id}:{self.slot})"


class HeapFile:
    """Rows of one table, spread over slotted pages."""

    def __init__(self, table_name: str, pool: BufferPool):
        self.table_name = table_name
        self._pool = pool
        self._page_ids: list[int] = []
        # Serializes page-id bookkeeping; page *content* mutation happens
        # under the pool latch so eviction's page serialization never
        # observes a half-mutated slot directory.
        self._latch = TimedLatch("repro.sqlengine.storage.heap.HeapFile._latch")

    @property
    def page_ids(self) -> list[int]:
        with self._latch:
            return list(self._page_ids)

    def adopt_page(self, page_id: int) -> None:
        """Attach an existing page (recovery rebuild path)."""
        with self._latch:
            if page_id not in self._page_ids:
                self._page_ids.append(page_id)

    # -- row operations -------------------------------------------------------

    def insert(self, row: tuple) -> RowId:
        record = serialize_row(row)
        with self._latch, self._pool.latch:
            for page_id in reversed(self._page_ids):
                page = self._pool.get(page_id)
                if page.can_fit(record):
                    return RowId(page_id, page.insert(record))
            page = self._pool.allocate_page()
            self._page_ids.append(page.page_id)
            if not page.can_fit(record):
                raise SqlError(f"row of {len(record)} bytes exceeds page capacity")
            return RowId(page.page_id, page.insert(record))

    def insert_at(self, rid: RowId, row: tuple) -> None:
        """Physical placement at a known rid (redo recovery)."""
        with self._latch, self._pool.latch:
            if rid.page_id not in self._page_ids:
                self.adopt_page(rid.page_id)
            self._pool.get_or_create(rid.page_id).insert_at(rid.slot, serialize_row(row))

    def read(self, rid: RowId) -> tuple:
        with self._latch, self._pool.latch:
            if rid.page_id not in self._page_ids:
                raise SqlError(f"{rid} does not belong to table {self.table_name!r}")
            return deserialize_row(self._pool.get(rid.page_id).read(rid.slot))

    def read_or_none(self, rid: RowId) -> tuple | None:
        with self._latch, self._pool.latch:
            if rid.page_id not in self._page_ids:
                return None
            # get_or_create: recovery may probe pages that never hit the disk.
            record = self._pool.get_or_create(rid.page_id).read_or_none(rid.slot)
            return deserialize_row(record) if record is not None else None

    def update(self, rid: RowId, row: tuple) -> None:
        with self._latch, self._pool.latch:
            self._pool.get(rid.page_id).update(rid.slot, serialize_row(row))

    def delete(self, rid: RowId) -> None:
        with self._latch, self._pool.latch:
            self._pool.get(rid.page_id).delete(rid.slot)

    def scan(self) -> Iterator[tuple[RowId, tuple]]:
        """Yield every live row with its rid.

        Each page's slots are materialized under the latches, then yielded
        outside them, so a long scan doesn't hold the pool latch while the
        consumer processes rows.
        """
        with self._latch:
            page_ids = list(self._page_ids)
        for page_id in page_ids:
            with self._latch, self._pool.latch:
                page = self._pool.get(page_id)
                rows = [
                    (RowId(page_id, slot), deserialize_row(record))
                    for slot, record in page.slots()
                ]
            yield from rows

    def row_count(self) -> int:
        return sum(1 for __ in self.scan())
