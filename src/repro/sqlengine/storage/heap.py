"""Heap files: unordered row storage for one table."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import SqlError
from repro.sqlengine.storage.bufferpool import BufferPool
from repro.sqlengine.storage.record import deserialize_row, serialize_row


@dataclass(frozen=True, order=True)
class RowId:
    """A stable row address: (page id, slot id)."""

    page_id: int
    slot: int

    def __repr__(self) -> str:
        return f"RID({self.page_id}:{self.slot})"


class HeapFile:
    """Rows of one table, spread over slotted pages."""

    def __init__(self, table_name: str, pool: BufferPool):
        self.table_name = table_name
        self._pool = pool
        self._page_ids: list[int] = []

    @property
    def page_ids(self) -> list[int]:
        return list(self._page_ids)

    def adopt_page(self, page_id: int) -> None:
        """Attach an existing page (recovery rebuild path)."""
        if page_id not in self._page_ids:
            self._page_ids.append(page_id)

    # -- row operations -------------------------------------------------------

    def insert(self, row: tuple) -> RowId:
        record = serialize_row(row)
        for page_id in reversed(self._page_ids):
            page = self._pool.get(page_id)
            if page.can_fit(record):
                return RowId(page_id, page.insert(record))
        page = self._pool.allocate_page()
        self._page_ids.append(page.page_id)
        if not page.can_fit(record):
            raise SqlError(f"row of {len(record)} bytes exceeds page capacity")
        return RowId(page.page_id, page.insert(record))

    def insert_at(self, rid: RowId, row: tuple) -> None:
        """Physical placement at a known rid (redo recovery)."""
        if rid.page_id not in self._page_ids:
            self.adopt_page(rid.page_id)
        self._pool.get_or_create(rid.page_id).insert_at(rid.slot, serialize_row(row))

    def read(self, rid: RowId) -> tuple:
        if rid.page_id not in self._page_ids:
            raise SqlError(f"{rid} does not belong to table {self.table_name!r}")
        return deserialize_row(self._pool.get(rid.page_id).read(rid.slot))

    def read_or_none(self, rid: RowId) -> tuple | None:
        if rid.page_id not in self._page_ids:
            return None
        # get_or_create: recovery may probe pages that never hit the disk.
        record = self._pool.get_or_create(rid.page_id).read_or_none(rid.slot)
        return deserialize_row(record) if record is not None else None

    def update(self, rid: RowId, row: tuple) -> None:
        self._pool.get(rid.page_id).update(rid.slot, serialize_row(row))

    def delete(self, rid: RowId) -> None:
        self._pool.get(rid.page_id).delete(rid.slot)

    def scan(self) -> Iterator[tuple[RowId, tuple]]:
        """Yield every live row with its rid."""
        for page_id in self._page_ids:
            page = self._pool.get(page_id)
            for slot, record in page.slots():
                yield RowId(page_id, slot), deserialize_row(record)

    def row_count(self) -> int:
        return sum(1 for __ in self.scan())
