"""Host-side freshness coordination (rollback defense).

The *trusted* state — epoch counter, WAL chain head, page version map —
lives in an anchor backend inside a trust root the host cannot rewrite:
the VBS enclave (through the declared ``anchor_*`` ecalls) or a
simulated TPM NV slot (:class:`repro.attestation.tpm.TpmNvAnchor`) for
enclave-less DET deployments. This module is the untrusted glue:

* :class:`FreshnessAnchor` wires itself into a
  :class:`~repro.sqlengine.engine.StorageEngine`: the WAL's
  ``flush_hook`` reports each new chain head, the buffer pool's
  ``page_write_hook`` reports each page image digest immediately before
  the disk write, and recovery calls :meth:`verify_recovery` before
  trusting anything on disk;
* :class:`EnclaveAnchorBackend` adapts the backend protocol onto the
  sanctioned enclave ecall surface (the only names the trust-boundary
  analyzer permits on an enclave receiver).

Ordering is what makes detection sound with **zero false positives**
under the crash-torture matrix: the WAL flush completes before its
advance (a crash in between leaves an *unanchored suffix*, tolerated and
re-anchored at the next verify), and a page advance lands before its
disk write with a *confirmation* after it — pages whose writes were
never confirmed may still show their previous version at recovery.
Torn pages are exempt — recovery drops and redoes them from the
verified WAL.

Paper mode is pinned: with no anchor configured (the default), none of
these hooks exist and recovery behaves exactly as before.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.errors import StaleRestoreError
from repro.faults.registry import fault_point, register_fault_site

if TYPE_CHECKING:
    from repro.sqlengine.engine import StorageEngine
    from repro.sqlengine.storage.wal import WriteAheadLog

register_fault_site(
    "freshness.advance",
    "one anchor advance crossing into the trust root (WAL head or page)",
)
register_fault_site(
    "freshness.verify",
    "the recovery-time freshness verification against the anchor",
)


def page_digest(image: bytes) -> bytes:
    """The version digest of one page image (over ciphertext bytes)."""
    return hashlib.sha256(image).digest()


class EnclaveAnchorBackend:
    """Backend adapter over the enclave's sanctioned ``anchor_*`` ecalls."""

    def __init__(self, enclave):
        self._enclave = enclave

    def anchor_attach(
        self, pages, chain_lsn, chain_digest, base_lsn, base_digest, cek_versions=None
    ):
        return self._enclave.anchor_attach(
            pages, chain_lsn, chain_digest, base_lsn, base_digest, cek_versions
        )

    def anchor_advance(self, **kwargs):
        return self._enclave.anchor_advance(**kwargs)

    def anchor_confirm(self, page_id):
        return self._enclave.anchor_confirm(page_id)

    def anchor_cek_version(self, cek_name, version):
        return self._enclave.anchor_cek_version(cek_name, version)

    def anchor_verify(
        self, base_lsn, base_digest, blobs, page_digests, torn, cek_versions=None
    ):
        return self._enclave.anchor_verify(
            base_lsn, base_digest, blobs, page_digests, torn, cek_versions
        )

    def anchor_truncate(self, base_lsn, base_digest):
        return self._enclave.anchor_truncate(base_lsn, base_digest)

    def anchor_status(self):
        return self._enclave.anchor_status()


class FreshnessAnchor:
    """Wires an anchor backend into the engine's durability path.

    ``backend`` is anything exposing the ``anchor_*`` protocol:
    :class:`EnclaveAnchorBackend` or
    :class:`repro.attestation.tpm.TpmNvAnchor`.
    """

    def __init__(self, backend):
        self._backend = backend
        self._engine: "StorageEngine | None" = None

    @property
    def backend(self):
        return self._backend

    # -- wiring ------------------------------------------------------------

    def attach_engine(self, engine: "StorageEngine") -> int:
        """Hook the WAL and buffer pool, then seed the anchor.

        Whatever is durable at attach time becomes the trusted present;
        every later flush and write-back advances the anchor.
        """
        self._engine = engine
        engine.wal.flush_hook = self._on_wal_flush
        engine.pool.page_write_hook = self._on_page_write
        engine.pool.page_wrote_hook = self._on_page_wrote
        return self.rebaseline()

    def rebaseline(self) -> int:
        """Re-seed the anchor from the engine's current durable state.

        Used at attach, and by the operator's explicit
        ``accept_restored_state`` — the one sanctioned way to make a
        detected stale restore the new trusted present.
        """
        engine = self._engine
        assert engine is not None, "attach_engine first"
        pages = {
            pid: page_digest(engine.disk.read_page(pid))
            for pid in engine.disk.page_ids()
        }
        chain_lsn, chain_digest = engine.wal.chain_state()
        base_lsn, base_digest = engine.wal.chain_base()
        return self._backend.anchor_attach(
            pages,
            chain_lsn,
            chain_digest,
            base_lsn,
            base_digest,
            engine.catalog.cek_versions(),
        )

    # -- advance hooks -----------------------------------------------------

    def _on_wal_flush(self, flushed_lsn: int, chain_digest: bytes) -> None:
        fault_point("freshness.advance", lsn=flushed_lsn)
        self._backend.anchor_advance(
            chain_lsn=flushed_lsn, chain_digest=chain_digest
        )

    def _on_page_write(self, page_id: int, image: bytes) -> None:
        fault_point("freshness.advance", page_id=page_id)
        self._backend.anchor_advance(
            page_id=page_id, page_digest=page_digest(image)
        )

    def _on_page_wrote(self, page_id: int) -> None:
        self._backend.anchor_confirm(page_id)

    def witness_cek_version(self, cek_name: str, version: int) -> int:
        """Report a completed CEK rotation to the trust root.

        Called *after* the catalog's version bump is durable (ROTATE_END
        flushed), so a crash in between leaves the catalog ahead of the
        anchor — adopted at the next verify, never a false positive.
        """
        fault_point("freshness.advance", cek_name=cek_name, version=version)
        return self._backend.anchor_cek_version(cek_name, version)

    # -- recovery ----------------------------------------------------------

    def verify_recovery(
        self,
        wal: "WriteAheadLog",
        page_digests: dict[int, bytes],
        torn_page_ids: set[int],
        cek_versions: dict[str, int] | None = None,
    ):
        """Check the durable state against the anchor; raise on rollback.

        Returns the backend's verdict on success; raises
        :class:`~repro.errors.StaleRestoreError` when the presented
        WAL/pages are old — internally consistent, every ciphertext
        valid, and still not the present.
        """
        fault_point("freshness.verify")
        base_lsn, base_digest = wal.chain_base()
        verdict = self._backend.anchor_verify(
            base_lsn,
            base_digest,
            wal.durable_chain_blobs(),
            page_digests,
            torn_page_ids,
            cek_versions,
        )
        if not verdict.ok:
            raise StaleRestoreError(verdict.describe())
        return verdict

    def seal_truncation(self, wal: "WriteAheadLog") -> int:
        """Seal the flushed horizon as the new chain base before truncation."""
        chain_lsn, chain_digest = wal.chain_state()
        return self._backend.anchor_truncate(chain_lsn + 1, chain_digest)

    def status(self) -> dict:
        return self._backend.anchor_status()
