"""Slotted pages — the unit of storage and buffering.

A page holds variable-length records in slots. Deleted slots leave
tombstones so row ids (page id, slot id) stay stable, which both the heap
and the B+-trees rely on. Pages serialize to a flat byte image — that
image is what lives on the simulated disk and what the strong adversary
reads.
"""

from __future__ import annotations

import struct

from repro.errors import SqlError

PAGE_SIZE = 8192
_HEADER = struct.Struct(">IH")  # page_id, slot_count
_SLOT = struct.Struct(">I")     # record length (0xFFFFFFFF = tombstone)

_TOMBSTONE = 0xFFFFFFFF


class Page:
    """An in-memory slotted page."""

    def __init__(self, page_id: int):
        self.page_id = page_id
        self._records: list[bytes | None] = []  # None = tombstone
        self.dirty = False

    # -- record operations -------------------------------------------------

    def free_space(self) -> int:
        used = _HEADER.size
        for record in self._records:
            used += _SLOT.size + (len(record) if record is not None else 0)
        return PAGE_SIZE - used

    def can_fit(self, record: bytes) -> bool:
        return self.free_space() >= _SLOT.size + len(record)

    def insert(self, record: bytes) -> int:
        """Insert a record; returns its slot id. Reuses tombstoned slots."""
        if not self.can_fit(record):
            raise SqlError(f"record of {len(record)} bytes does not fit in page {self.page_id}")
        for slot, existing in enumerate(self._records):
            if existing is None:
                self._records[slot] = record
                self.dirty = True
                return slot
        self._records.append(record)
        self.dirty = True
        return len(self._records) - 1

    def insert_at(self, slot: int, record: bytes) -> None:
        """Place a record at a specific slot (physical redo during recovery)."""
        while len(self._records) <= slot:
            self._records.append(None)
        self._records[slot] = record
        self.dirty = True

    def read(self, slot: int) -> bytes:
        record = self._slot(slot)
        if record is None:
            raise SqlError(f"slot {slot} of page {self.page_id} is empty")
        return record

    def read_or_none(self, slot: int) -> bytes | None:
        if slot >= len(self._records):
            return None
        return self._records[slot]

    def update(self, slot: int, record: bytes) -> None:
        self._slot(slot)  # must exist
        self._records[slot] = record
        if not self.can_fit(b""):
            raise SqlError(f"update overflows page {self.page_id}")
        self.dirty = True

    def delete(self, slot: int) -> None:
        self._slot(slot)  # must exist
        self._records[slot] = None
        self.dirty = True

    def slots(self) -> list[tuple[int, bytes]]:
        """All live (slot, record) pairs."""
        return [(i, r) for i, r in enumerate(self._records) if r is not None]

    def _slot(self, slot: int) -> bytes | None:
        if slot < 0 or slot >= len(self._records):
            raise SqlError(f"slot {slot} out of range on page {self.page_id}")
        return self._records[slot]

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray(_HEADER.pack(self.page_id, len(self._records)))
        for record in self._records:
            if record is None:
                out += _SLOT.pack(_TOMBSTONE)
            else:
                out += _SLOT.pack(len(record))
                out += record
        if len(out) > PAGE_SIZE:
            raise SqlError(f"page {self.page_id} overflows PAGE_SIZE on serialization")
        out += b"\x00" * (PAGE_SIZE - len(out))
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Page":
        page_id, slot_count = _HEADER.unpack_from(data, 0)
        page = cls(page_id)
        offset = _HEADER.size
        for __ in range(slot_count):
            (length,) = _SLOT.unpack_from(data, offset)
            offset += _SLOT.size
            if length == _TOMBSTONE:
                page._records.append(None)
            else:
                page._records.append(data[offset : offset + length])
                offset += length
        return page
