"""Slotted pages — the unit of storage and buffering.

A page holds variable-length records in slots. Deleted slots leave
tombstones so row ids (page id, slot id) stay stable, which both the heap
and the B+-trees rely on. Pages serialize to a flat byte image — that
image is what lives on the simulated disk and what the strong adversary
reads.

The image header carries a CRC32 of the payload, so a torn write (some
bytes of the new image, some of the old) is *detectable*:
:meth:`Page.from_bytes` raises :class:`~repro.errors.PageCorruptError`
and recovery reformats the page and redoes its rows from the WAL — the
physical, keyless redo of Section 4.5.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import PageCorruptError, SqlError

PAGE_SIZE = 8192
_HEADER = struct.Struct(">IHI")  # page_id, slot_count, payload crc32
_SLOT = struct.Struct(">I")      # record length (0xFFFFFFFF = tombstone)

_TOMBSTONE = 0xFFFFFFFF


class Page:
    """An in-memory slotted page."""

    def __init__(self, page_id: int):
        self.page_id = page_id
        self._records: list[bytes | None] = []  # None = tombstone
        self.dirty = False

    # -- record operations -------------------------------------------------

    def free_space(self) -> int:
        used = _HEADER.size
        for record in self._records:
            used += _SLOT.size + (len(record) if record is not None else 0)
        return PAGE_SIZE - used

    def can_fit(self, record: bytes) -> bool:
        return self.free_space() >= _SLOT.size + len(record)

    def insert(self, record: bytes) -> int:
        """Insert a record; returns its slot id. Reuses tombstoned slots."""
        if not self.can_fit(record):
            raise SqlError(f"record of {len(record)} bytes does not fit in page {self.page_id}")
        for slot, existing in enumerate(self._records):
            if existing is None:
                self._records[slot] = record
                self.dirty = True
                return slot
        self._records.append(record)
        self.dirty = True
        return len(self._records) - 1

    def insert_at(self, slot: int, record: bytes) -> None:
        """Place a record at a specific slot (physical redo during recovery)."""
        while len(self._records) <= slot:
            self._records.append(None)
        self._records[slot] = record
        self.dirty = True

    def read(self, slot: int) -> bytes:
        record = self._slot(slot)
        if record is None:
            raise SqlError(f"slot {slot} of page {self.page_id} is empty")
        return record

    def read_or_none(self, slot: int) -> bytes | None:
        if slot >= len(self._records):
            return None
        return self._records[slot]

    def update(self, slot: int, record: bytes) -> None:
        self._slot(slot)  # must exist
        self._records[slot] = record
        if not self.can_fit(b""):
            raise SqlError(f"update overflows page {self.page_id}")
        self.dirty = True

    def delete(self, slot: int) -> None:
        self._slot(slot)  # must exist
        self._records[slot] = None
        self.dirty = True

    def slots(self) -> list[tuple[int, bytes]]:
        """All live (slot, record) pairs."""
        return [(i, r) for i, r in enumerate(self._records) if r is not None]

    def _slot(self, slot: int) -> bytes | None:
        if slot < 0 or slot >= len(self._records):
            raise SqlError(f"slot {slot} out of range on page {self.page_id}")
        return self._records[slot]

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        payload = bytearray()
        for record in self._records:
            if record is None:
                payload += _SLOT.pack(_TOMBSTONE)
            else:
                payload += _SLOT.pack(len(record))
                payload += record
        if _HEADER.size + len(payload) > PAGE_SIZE:
            raise SqlError(f"page {self.page_id} overflows PAGE_SIZE on serialization")
        payload += b"\x00" * (PAGE_SIZE - _HEADER.size - len(payload))
        crc = zlib.crc32(payload)
        return _HEADER.pack(self.page_id, len(self._records), crc) + bytes(payload)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Page":
        try:
            page_id, slot_count, crc = _HEADER.unpack_from(data, 0)
        except struct.error as exc:
            raise PageCorruptError(f"page image too short to parse: {exc}") from exc
        if zlib.crc32(data[_HEADER.size :]) != crc:
            raise PageCorruptError(
                f"page {page_id} fails its checksum (torn or partial write)"
            )
        page = cls(page_id)
        offset = _HEADER.size
        for __ in range(slot_count):
            (length,) = _SLOT.unpack_from(data, offset)
            offset += _SLOT.size
            if length == _TOMBSTONE:
                page._records.append(None)
            else:
                page._records.append(data[offset : offset + length])
                offset += length
        return page
