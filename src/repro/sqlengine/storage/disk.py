"""The simulated disk: a flat store of serialized page images.

Separate from the buffer pool so a "crash" can discard all in-memory state
while the disk (and the log file, kept beside it) survives — the scenario
Section 4.5's recovery machinery exists for. The adversary can read every
byte here; tests assert that no plaintext of encrypted columns ever lands
on it.
"""

from __future__ import annotations

import threading

from repro.errors import SqlError


class Disk:
    """Page-addressed persistent storage."""

    def __init__(self) -> None:
        self._pages: dict[int, bytes] = {}
        self._lock = threading.Lock()
        self.reads = 0
        self.writes = 0

    def write_page(self, page_id: int, image: bytes) -> None:
        with self._lock:
            self._pages[page_id] = image
            self.writes += 1

    def read_page(self, page_id: int) -> bytes:
        with self._lock:
            self.reads += 1
            try:
                return self._pages[page_id]
            except KeyError:
                raise SqlError(f"page {page_id} does not exist on disk") from None

    def has_page(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._pages

    def page_ids(self) -> list[int]:
        with self._lock:
            return sorted(self._pages)

    def raw_bytes(self) -> bytes:
        """Everything on disk, concatenated — the adversary's view."""
        with self._lock:
            return b"".join(self._pages[pid] for pid in sorted(self._pages))
