"""The simulated disk: a flat store of serialized page images.

Separate from the buffer pool so a "crash" can discard all in-memory state
while the disk (and the log file, kept beside it) survives — the scenario
Section 4.5's recovery machinery exists for. The adversary can read every
byte here; tests assert that no plaintext of encrypted columns ever lands
on it.

Both page I/O paths are fault-injection sites (`disk.write_page`,
`disk.read_page`). A torn-write directive at the write site applies a
partial image — the new bytes up to the tear point, the old bytes after —
and then raises :class:`~repro.errors.ForcedCrash`, modelling power loss
mid-write. The page checksum (see :mod:`page`) makes the tear detectable
at recovery time.
"""

from __future__ import annotations

import threading

from repro.errors import ForcedCrash, SqlError
from repro.faults.actions import TornWriteDirective
from repro.faults.registry import fault_point, register_fault_site

register_fault_site(
    "disk.write_page",
    "one page image written to durable storage; torn-write capable",
)
register_fault_site("disk.read_page", "one page image read from durable storage")


class Disk:
    """Page-addressed persistent storage."""

    def __init__(self) -> None:
        self._pages: dict[int, bytes] = {}
        self._lock = threading.Lock()
        self.reads = 0
        self.writes = 0

    def write_page(self, page_id: int, image: bytes) -> None:
        directive = fault_point("disk.write_page", page_id=page_id, image=image)
        if isinstance(directive, TornWriteDirective):
            with self._lock:
                torn = directive.tear(image, self._pages.get(page_id))
                self._pages[page_id] = torn
                self.writes += 1
            if directive.then_crash:
                raise ForcedCrash("disk.write_page", f"power lost tearing page {page_id}")
            return
        with self._lock:
            self._pages[page_id] = image
            self.writes += 1

    def read_page(self, page_id: int) -> bytes:
        fault_point("disk.read_page", page_id=page_id)
        with self._lock:
            self.reads += 1
            try:
                return self._pages[page_id]
            except KeyError:
                raise SqlError(f"page {page_id} does not exist on disk") from None

    def drop_page(self, page_id: int) -> None:
        """Discard a page image (recovery reformats a torn page; its
        contents come back through physical redo from the WAL)."""
        with self._lock:
            self._pages.pop(page_id, None)

    def has_page(self, page_id: int) -> bool:
        with self._lock:
            return page_id in self._pages

    def page_ids(self) -> list[int]:
        with self._lock:
            return sorted(self._pages)

    def raw_bytes(self) -> bytes:
        """Everything on disk, concatenated — the adversary's view."""
        with self._lock:
            return b"".join(self._pages[pid] for pid in sorted(self._pages))

    # -- adversary hooks (Section 2.6: the host owns the disk) -------------

    def snapshot_pages(self) -> dict[int, bytes]:
        """Copy every page image — the adversary taking a backup."""
        with self._lock:
            return dict(self._pages)

    def restore_pages(self, pages: dict[int, bytes], replace: bool = False) -> None:
        """Swap old-but-valid page images back in — the rollback attack.

        ``replace=True`` models restoring a whole-disk backup (pages
        created since the snapshot vanish); ``replace=False`` replays
        only the given pages, leaving the rest of the disk current.
        """
        with self._lock:
            if replace:
                self._pages = dict(pages)
            else:
                self._pages.update(pages)
            self.writes += 1
