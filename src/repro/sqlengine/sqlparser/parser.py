"""Recursive-descent parser for the engine's SQL dialect.

Covers the DDL the paper introduces (CREATE COLUMN MASTER KEY / COLUMN
ENCRYPTION KEY, ENCRYPTED WITH column clauses, ALTER TABLE ALTER COLUMN for
in-place encryption) plus the DML surface the workloads need: SELECT with
joins / grouping / ordering / LIKE / BETWEEN / IN, INSERT, UPDATE, DELETE,
and transaction control.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sqlengine.sqlparser import ast
from repro.sqlengine.sqlparser.lexer import Token, TokenType, tokenize

_AGG_FUNCS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_TYPE_NAMES = {"INT", "BIGINT", "FLOAT", "VARCHAR", "CHAR", "VARBINARY", "BIT"}


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement."""
    return _Parser(tokenize(sql)).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, type_: TokenType, value: str | None = None) -> bool:
        return self._peek().matches(type_, value)

    def _accept(self, type_: TokenType, value: str | None = None) -> Token | None:
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, value: str | None = None) -> Token:
        token = self._accept(type_, value)
        if token is None:
            actual = self._peek()
            want = value or type_.value
            raise ParseError(
                f"expected {want!r} but found {actual.value!r} at position {actual.position}"
            )
        return token

    def _expect_keyword(self, *words: str) -> None:
        for word in words:
            self._expect(TokenType.KEYWORD, word)

    def _ident(self) -> str:
        token = self._peek()
        # Permit non-reserved keyword-ish identifiers where unambiguous.
        if token.type is TokenType.IDENT:
            return self._advance().value
        raise ParseError(f"expected identifier, found {token.value!r} at {token.position}")

    # -- statements -------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        stmt = self._statement()
        self._accept(TokenType.OPERATOR, ";")
        self._expect(TokenType.EOF)
        return stmt

    def _statement(self) -> ast.Statement:
        if self._check(TokenType.KEYWORD, "SELECT"):
            return self._select()
        if self._check(TokenType.KEYWORD, "INSERT"):
            return self._insert()
        if self._check(TokenType.KEYWORD, "UPDATE"):
            return self._update()
        if self._check(TokenType.KEYWORD, "DELETE"):
            return self._delete()
        if self._check(TokenType.KEYWORD, "CREATE"):
            return self._create()
        if self._check(TokenType.KEYWORD, "DROP"):
            return self._drop()
        if self._check(TokenType.KEYWORD, "ALTER"):
            return self._alter()
        if self._accept(TokenType.KEYWORD, "BEGIN"):
            self._accept(TokenType.KEYWORD, "TRANSACTION")
            return ast.BeginStmt()
        if self._accept(TokenType.KEYWORD, "COMMIT"):
            self._accept(TokenType.KEYWORD, "TRANSACTION")
            return ast.CommitStmt()
        if self._accept(TokenType.KEYWORD, "ROLLBACK"):
            self._accept(TokenType.KEYWORD, "TRANSACTION")
            return ast.RollbackStmt()
        token = self._peek()
        raise ParseError(f"unexpected token {token.value!r} at position {token.position}")

    # -- SELECT -------------------------------------------------------------------

    def _select(self) -> ast.SelectStmt:
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = self._accept(TokenType.KEYWORD, "DISTINCT") is not None
        items = self._select_items()
        table = None
        joins: list[ast.Join] = []
        if self._accept(TokenType.KEYWORD, "FROM"):
            table = self._table_ref()
            while self._check(TokenType.KEYWORD, "JOIN") or self._check(TokenType.KEYWORD, "INNER"):
                self._accept(TokenType.KEYWORD, "INNER")
                self._expect(TokenType.KEYWORD, "JOIN")
                join_table = self._table_ref()
                self._expect(TokenType.KEYWORD, "ON")
                condition = self._expression()
                joins.append(ast.Join(table=join_table, condition=condition))
        where = self._expression() if self._accept(TokenType.KEYWORD, "WHERE") else None
        group_by: tuple[ast.AstExpr, ...] = ()
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by = tuple(self._expression_list())
        order_by: list[ast.OrderItem] = []
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            while True:
                expr = self._expression()
                ascending = True
                if self._accept(TokenType.KEYWORD, "DESC"):
                    ascending = False
                else:
                    self._accept(TokenType.KEYWORD, "ASC")
                order_by.append(ast.OrderItem(expr=expr, ascending=ascending))
                if not self._accept(TokenType.OPERATOR, ","):
                    break
        limit = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            limit = int(self._expect(TokenType.NUMBER).value)
        return ast.SelectStmt(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _select_items(self) -> list[ast.SelectItem]:
        items: list[ast.SelectItem] = []
        while True:
            if self._accept(TokenType.OPERATOR, "*"):
                items.append(ast.SelectItem(expr=None))
            else:
                expr = self._expression()
                alias = None
                if self._accept(TokenType.KEYWORD, "AS"):
                    alias = self._ident()
                elif self._check(TokenType.IDENT):
                    alias = self._ident()
                items.append(ast.SelectItem(expr=expr, alias=alias))
            if not self._accept(TokenType.OPERATOR, ","):
                return items

    def _table_ref(self) -> ast.TableRef:
        name = self._ident()
        alias = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._ident()
        elif self._check(TokenType.IDENT):
            alias = self._ident()
        return ast.TableRef(name=name, alias=alias)

    # -- DML -------------------------------------------------------------------

    def _insert(self) -> ast.InsertStmt:
        self._expect_keyword("INSERT", "INTO")
        table = self._ident()
        columns: list[str] = []
        if self._accept(TokenType.OPERATOR, "("):
            while True:
                columns.append(self._ident())
                if not self._accept(TokenType.OPERATOR, ","):
                    break
            self._expect(TokenType.OPERATOR, ")")
        self._expect(TokenType.KEYWORD, "VALUES")
        rows: list[tuple[ast.AstExpr, ...]] = []
        while True:
            self._expect(TokenType.OPERATOR, "(")
            rows.append(tuple(self._expression_list()))
            self._expect(TokenType.OPERATOR, ")")
            if not self._accept(TokenType.OPERATOR, ","):
                break
        return ast.InsertStmt(table=table, columns=tuple(columns), rows=tuple(rows))

    def _update(self) -> ast.UpdateStmt:
        self._expect(TokenType.KEYWORD, "UPDATE")
        table = self._ident()
        self._expect(TokenType.KEYWORD, "SET")
        assignments: list[tuple[str, ast.AstExpr]] = []
        while True:
            column = self._ident()
            self._expect(TokenType.OPERATOR, "=")
            assignments.append((column, self._expression()))
            if not self._accept(TokenType.OPERATOR, ","):
                break
        where = self._expression() if self._accept(TokenType.KEYWORD, "WHERE") else None
        return ast.UpdateStmt(table=table, assignments=tuple(assignments), where=where)

    def _delete(self) -> ast.DeleteStmt:
        self._expect_keyword("DELETE", "FROM")
        table = self._ident()
        where = self._expression() if self._accept(TokenType.KEYWORD, "WHERE") else None
        return ast.DeleteStmt(table=table, where=where)

    # -- DDL --------------------------------------------------------------------

    def _create(self) -> ast.Statement:
        self._expect(TokenType.KEYWORD, "CREATE")
        if self._check(TokenType.KEYWORD, "TABLE"):
            return self._create_table()
        if self._check(TokenType.KEYWORD, "COLUMN"):
            return self._create_key()
        unique = self._accept(TokenType.KEYWORD, "UNIQUE") is not None
        clustered = False
        if self._accept(TokenType.KEYWORD, "CLUSTERED"):
            clustered = True
        else:
            self._accept(TokenType.KEYWORD, "NONCLUSTERED")
        self._expect(TokenType.KEYWORD, "INDEX")
        name = self._ident()
        self._expect(TokenType.KEYWORD, "ON")
        table = self._ident()
        self._expect(TokenType.OPERATOR, "(")
        columns = [self._ident()]
        while self._accept(TokenType.OPERATOR, ","):
            columns.append(self._ident())
        self._expect(TokenType.OPERATOR, ")")
        return ast.CreateIndexStmt(
            name=name, table=table, columns=tuple(columns), unique=unique, clustered=clustered
        )

    def _create_key(self) -> ast.Statement:
        self._expect(TokenType.KEYWORD, "COLUMN")
        if self._accept(TokenType.KEYWORD, "MASTER"):
            self._expect(TokenType.KEYWORD, "KEY")
            name = self._ident()
            self._expect(TokenType.KEYWORD, "WITH")
            self._expect(TokenType.OPERATOR, "(")
            provider = key_path = None
            signature: bytes | None = None
            while True:
                prop = self._ident().upper()
                if prop == "KEY_STORE_PROVIDER_NAME":
                    self._expect(TokenType.OPERATOR, "=")
                    provider = self._expect(TokenType.STRING).value
                elif prop == "KEY_PATH":
                    self._expect(TokenType.OPERATOR, "=")
                    key_path = self._expect(TokenType.STRING).value
                elif prop == "ENCLAVE_COMPUTATIONS":
                    self._expect(TokenType.OPERATOR, "(")
                    sig_prop = self._ident().upper()
                    if sig_prop != "SIGNATURE":
                        raise ParseError("ENCLAVE_COMPUTATIONS expects SIGNATURE = 0x...")
                    self._expect(TokenType.OPERATOR, "=")
                    signature = bytes.fromhex(self._expect(TokenType.HEXBLOB).value)
                    self._expect(TokenType.OPERATOR, ")")
                else:
                    raise ParseError(f"unknown CMK property {prop!r}")
                if not self._accept(TokenType.OPERATOR, ","):
                    break
            self._expect(TokenType.OPERATOR, ")")
            if provider is None or key_path is None:
                raise ParseError("CMK requires KEY_STORE_PROVIDER_NAME and KEY_PATH")
            return ast.CreateCmkStmt(
                name=name,
                key_store_provider_name=provider,
                key_path=key_path,
                enclave_computations_signature=signature,
            )
        self._expect(TokenType.KEYWORD, "ENCRYPTION")
        self._expect(TokenType.KEYWORD, "KEY")
        name = self._ident()
        self._expect(TokenType.KEYWORD, "WITH")
        self._expect(TokenType.KEYWORD, "VALUES")
        self._expect(TokenType.OPERATOR, "(")
        cmk_name = algorithm = None
        encrypted_value = signature_bytes = None
        while True:
            if self._check(TokenType.KEYWORD, "COLUMN"):
                self._expect_keyword("COLUMN", "MASTER", "KEY")
                self._expect(TokenType.OPERATOR, "=")
                cmk_name = self._ident()
            else:
                prop = self._ident().upper()
                self._expect(TokenType.OPERATOR, "=")
                if prop == "COLUMN_MASTER_KEY":
                    cmk_name = self._ident()
                elif prop == "ALGORITHM":
                    algorithm = self._expect(TokenType.STRING).value
                elif prop == "ENCRYPTED_VALUE":
                    encrypted_value = bytes.fromhex(self._expect(TokenType.HEXBLOB).value)
                elif prop == "SIGNATURE":
                    signature_bytes = bytes.fromhex(self._expect(TokenType.HEXBLOB).value)
                else:
                    raise ParseError(f"unknown CEK property {prop!r}")
            if not self._accept(TokenType.OPERATOR, ","):
                break
        self._expect(TokenType.OPERATOR, ")")
        if cmk_name is None or algorithm is None or encrypted_value is None or signature_bytes is None:
            raise ParseError(
                "CEK requires COLUMN_MASTER_KEY, ALGORITHM, ENCRYPTED_VALUE, and SIGNATURE"
            )
        return ast.CreateCekStmt(
            name=name,
            cmk_name=cmk_name,
            algorithm=algorithm,
            encrypted_value=encrypted_value,
            signature=signature_bytes,
        )

    def _create_table(self) -> ast.CreateTableStmt:
        self._expect(TokenType.KEYWORD, "TABLE")
        name = self._ident()
        self._expect(TokenType.OPERATOR, "(")
        columns: list[ast.ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self._check(TokenType.KEYWORD, "PRIMARY"):
                self._expect_keyword("PRIMARY", "KEY")
                self._expect(TokenType.OPERATOR, "(")
                pk = [self._ident()]
                while self._accept(TokenType.OPERATOR, ","):
                    pk.append(self._ident())
                self._expect(TokenType.OPERATOR, ")")
                primary_key = tuple(pk)
            else:
                columns.append(self._column_def())
            if not self._accept(TokenType.OPERATOR, ","):
                break
        self._expect(TokenType.OPERATOR, ")")
        inline_pk = tuple(c.name for c in columns if c.primary_key)
        if inline_pk and primary_key:
            raise ParseError("both inline and table-level PRIMARY KEY specified")
        return ast.CreateTableStmt(
            name=name, columns=tuple(columns), primary_key=primary_key or inline_pk
        )

    def _column_def(self) -> ast.ColumnDef:
        name = self._ident()
        type_name, type_length = self._type()
        encryption = None
        nullable = True
        primary_key = False
        while True:
            if self._accept(TokenType.KEYWORD, "ENCRYPTED"):
                self._expect(TokenType.KEYWORD, "WITH")
                encryption = self._encryption_clause()
            elif self._accept(TokenType.KEYWORD, "NOT"):
                self._expect(TokenType.KEYWORD, "NULL")
                nullable = False
            elif self._accept(TokenType.KEYWORD, "NULL"):
                nullable = True
            elif self._accept(TokenType.KEYWORD, "PRIMARY"):
                self._expect(TokenType.KEYWORD, "KEY")
                primary_key = True
                nullable = False
            else:
                break
        return ast.ColumnDef(
            name=name,
            type_name=type_name,
            type_length=type_length,
            encryption=encryption,
            nullable=nullable,
            primary_key=primary_key,
        )

    def _type(self) -> tuple[str, int | None]:
        token = self._peek()
        if token.type is not TokenType.IDENT or token.value.upper() not in _TYPE_NAMES:
            raise ParseError(f"expected a type name, found {token.value!r} at {token.position}")
        type_name = self._advance().value.upper()
        length = None
        if self._accept(TokenType.OPERATOR, "("):
            length = int(self._expect(TokenType.NUMBER).value)
            self._expect(TokenType.OPERATOR, ")")
        return type_name, length

    def _encryption_clause(self) -> ast.ColumnEncryptionClause:
        self._expect(TokenType.OPERATOR, "(")
        cek_name = encryption_type = algorithm = None
        while True:
            prop = self._ident().upper()
            self._expect(TokenType.OPERATOR, "=")
            if prop == "COLUMN_ENCRYPTION_KEY":
                cek_name = self._ident()
            elif prop == "ENCRYPTION_TYPE":
                encryption_type = self._ident()
            elif prop == "ALGORITHM":
                algorithm = self._expect(TokenType.STRING).value
            else:
                raise ParseError(f"unknown ENCRYPTED WITH property {prop!r}")
            if not self._accept(TokenType.OPERATOR, ","):
                break
        self._expect(TokenType.OPERATOR, ")")
        if cek_name is None or encryption_type is None or algorithm is None:
            raise ParseError(
                "ENCRYPTED WITH requires COLUMN_ENCRYPTION_KEY, ENCRYPTION_TYPE, and ALGORITHM"
            )
        if encryption_type.capitalize() not in ("Deterministic", "Randomized"):
            raise ParseError(f"unknown ENCRYPTION_TYPE {encryption_type!r}")
        return ast.ColumnEncryptionClause(
            cek_name=cek_name,
            encryption_type=encryption_type.capitalize(),
            algorithm=algorithm,
        )

    def _drop(self) -> ast.Statement:
        self._expect(TokenType.KEYWORD, "DROP")
        if self._accept(TokenType.KEYWORD, "TABLE"):
            return ast.DropTableStmt(name=self._ident())
        self._expect(TokenType.KEYWORD, "INDEX")
        name = self._ident()
        self._expect(TokenType.KEYWORD, "ON")
        table = self._ident()
        return ast.DropIndexStmt(name=name, table=table)

    def _alter(self) -> ast.Statement:
        self._expect(TokenType.KEYWORD, "ALTER")
        if self._check(TokenType.KEYWORD, "COLUMN"):
            return self._alter_cek()
        self._expect(TokenType.KEYWORD, "TABLE")
        table = self._ident()
        self._expect_keyword("ALTER", "COLUMN")
        column = self._ident()
        type_name, type_length = self._type()
        encryption = None
        if self._accept(TokenType.KEYWORD, "ENCRYPTED"):
            self._expect(TokenType.KEYWORD, "WITH")
            encryption = self._encryption_clause()
        return ast.AlterColumnStmt(
            table=table,
            column=column,
            type_name=type_name,
            type_length=type_length,
            encryption=encryption,
        )

    def _alter_cek(self) -> ast.AlterCekStmt:
        """ALTER COLUMN ENCRYPTION KEY <name> ADD VALUE (...) | DROP VALUE (...)."""
        self._expect_keyword("COLUMN", "ENCRYPTION", "KEY")
        name = self._ident()
        # ADD and VALUE are not reserved words; they lex as identifiers.
        if self._check(TokenType.KEYWORD, "DROP"):
            self._advance()
            action = "drop"
        else:
            word = self._ident().upper()
            if word != "ADD":
                raise ParseError(f"expected ADD or DROP after CEK name, found {word!r}")
            action = "add"
        value_kw = self._ident().upper()
        if value_kw != "VALUE":
            raise ParseError(f"expected VALUE after {action.upper()}, found {value_kw!r}")
        self._expect(TokenType.OPERATOR, "(")
        cmk_name = algorithm = None
        encrypted_value = signature_bytes = None
        while True:
            if self._check(TokenType.KEYWORD, "COLUMN"):
                self._expect_keyword("COLUMN", "MASTER", "KEY")
                self._expect(TokenType.OPERATOR, "=")
                cmk_name = self._ident()
            else:
                prop = self._ident().upper()
                self._expect(TokenType.OPERATOR, "=")
                if prop == "COLUMN_MASTER_KEY":
                    cmk_name = self._ident()
                elif prop == "ALGORITHM":
                    algorithm = self._expect(TokenType.STRING).value
                elif prop == "ENCRYPTED_VALUE":
                    encrypted_value = bytes.fromhex(self._expect(TokenType.HEXBLOB).value)
                elif prop == "SIGNATURE":
                    signature_bytes = bytes.fromhex(self._expect(TokenType.HEXBLOB).value)
                else:
                    raise ParseError(f"unknown ALTER CEK property {prop!r}")
            if not self._accept(TokenType.OPERATOR, ","):
                break
        self._expect(TokenType.OPERATOR, ")")
        if cmk_name is None:
            raise ParseError("ALTER CEK requires COLUMN_MASTER_KEY")
        if action == "add" and (
            algorithm is None or encrypted_value is None or signature_bytes is None
        ):
            raise ParseError(
                "ALTER CEK ADD VALUE requires ALGORITHM, ENCRYPTED_VALUE, and SIGNATURE"
            )
        return ast.AlterCekStmt(
            name=name,
            action=action,
            cmk_name=cmk_name,
            algorithm=algorithm,
            encrypted_value=encrypted_value,
            signature=signature_bytes,
        )

    # -- expressions ---------------------------------------------------------------

    def _expression_list(self) -> list[ast.AstExpr]:
        exprs = [self._expression()]
        while self._accept(TokenType.OPERATOR, ","):
            exprs.append(self._expression())
        return exprs

    def _expression(self) -> ast.AstExpr:
        return self._or_expr()

    def _or_expr(self) -> ast.AstExpr:
        left = self._and_expr()
        while self._accept(TokenType.KEYWORD, "OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.AstExpr:
        left = self._not_expr()
        while self._accept(TokenType.KEYWORD, "AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.AstExpr:
        if self._accept(TokenType.KEYWORD, "NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.AstExpr:
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self._advance()
            return ast.BinaryOp(token.value, left, self._additive())
        negated = False
        if self._check(TokenType.KEYWORD, "NOT") and self._peek(1).matches(TokenType.KEYWORD, "LIKE"):
            self._advance()
            negated = True
        if self._accept(TokenType.KEYWORD, "LIKE"):
            return ast.LikeOp(value=left, pattern=self._additive(), negated=negated)
        if self._check(TokenType.KEYWORD, "NOT") and self._peek(1).matches(TokenType.KEYWORD, "IN"):
            self._advance()
            self._advance()
            self._expect(TokenType.OPERATOR, "(")
            options = tuple(self._expression_list())
            self._expect(TokenType.OPERATOR, ")")
            return ast.InOp(value=left, options=options, negated=True)
        if self._accept(TokenType.KEYWORD, "BETWEEN"):
            low = self._additive()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._additive()
            return ast.BetweenOp(value=left, low=low, high=high)
        if self._accept(TokenType.KEYWORD, "IN"):
            self._expect(TokenType.OPERATOR, "(")
            options = tuple(self._expression_list())
            self._expect(TokenType.OPERATOR, ")")
            return ast.InOp(value=left, options=options)
        if self._accept(TokenType.KEYWORD, "IS"):
            negated = self._accept(TokenType.KEYWORD, "NOT") is not None
            self._expect(TokenType.KEYWORD, "NULL")
            return ast.IsNullOp(value=left, negated=negated)
        return left

    def _additive(self) -> ast.AstExpr:
        left = self._term()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                self._advance()
                left = ast.BinaryOp(token.value, left, self._term())
            else:
                return left

    def _term(self) -> ast.AstExpr:
        left = self._factor()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.value in ("*", "/"):
                self._advance()
                left = ast.BinaryOp(token.value, left, self._factor())
            else:
                return left

    def _factor(self) -> ast.AstExpr:
        token = self._peek()
        if self._accept(TokenType.OPERATOR, "("):
            expr = self._expression()
            self._expect(TokenType.OPERATOR, ")")
            return expr
        if self._accept(TokenType.OPERATOR, "-"):
            operand = self._factor()
            if isinstance(operand, ast.Literal) and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.HEXBLOB:
            self._advance()
            return ast.Literal(bytes.fromhex(token.value))
        if token.type is TokenType.PARAM:
            self._advance()
            return ast.Param(token.value)
        if token.matches(TokenType.KEYWORD, "NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches(TokenType.KEYWORD, "TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches(TokenType.KEYWORD, "FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.type is TokenType.KEYWORD and token.value in _AGG_FUNCS:
            self._advance()
            self._expect(TokenType.OPERATOR, "(")
            if token.value == "COUNT" and self._accept(TokenType.OPERATOR, "*"):
                self._expect(TokenType.OPERATOR, ")")
                return ast.Aggregate(func="COUNT", argument=None)
            argument = self._expression()
            self._expect(TokenType.OPERATOR, ")")
            return ast.Aggregate(func=token.value, argument=argument)
        if token.type is TokenType.IDENT:
            name = self._advance().value
            if self._accept(TokenType.OPERATOR, "."):
                column = self._ident()
                return ast.ColumnName(name=column, table=name)
            return ast.ColumnName(name=name)
        raise ParseError(f"unexpected token {token.value!r} at position {token.position}")
