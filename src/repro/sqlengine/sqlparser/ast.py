"""Unbound AST for parsed SQL statements.

These nodes carry names, not resolved slots/types — binding against the
catalog (and encryption type deduction) happens later, mirroring the
parse → bind → (encryption) type deduction pipeline of Section 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Scalar expressions (unbound)
# ---------------------------------------------------------------------------


class AstExpr:
    __slots__ = ()


@dataclass(frozen=True)
class ColumnName(AstExpr):
    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal(AstExpr):
    value: object  # int | float | str | bytes | bool | None


@dataclass(frozen=True)
class Param(AstExpr):
    name: str


@dataclass(frozen=True)
class BinaryOp(AstExpr):
    op: str  # = <> < <= > >= + - * / AND OR
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class UnaryOp(AstExpr):
    op: str  # NOT, -
    operand: AstExpr


@dataclass(frozen=True)
class LikeOp(AstExpr):
    value: AstExpr
    pattern: AstExpr
    negated: bool = False


@dataclass(frozen=True)
class BetweenOp(AstExpr):
    value: AstExpr
    low: AstExpr
    high: AstExpr


@dataclass(frozen=True)
class InOp(AstExpr):
    value: AstExpr
    options: tuple[AstExpr, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNullOp(AstExpr):
    value: AstExpr
    negated: bool = False


@dataclass(frozen=True)
class Aggregate(AstExpr):
    func: str  # COUNT SUM AVG MIN MAX
    argument: AstExpr | None  # None = COUNT(*)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    __slots__ = ()


@dataclass(frozen=True)
class SelectItem:
    expr: AstExpr | None  # None = '*'
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


@dataclass(frozen=True)
class Join:
    table: TableRef
    condition: AstExpr


@dataclass(frozen=True)
class OrderItem:
    expr: AstExpr
    ascending: bool = True


@dataclass(frozen=True)
class SelectStmt(Statement):
    items: tuple[SelectItem, ...]
    table: TableRef | None
    joins: tuple[Join, ...] = ()
    where: AstExpr | None = None
    group_by: tuple[AstExpr, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class InsertStmt(Statement):
    table: str
    columns: tuple[str, ...]       # empty = all columns in schema order
    rows: tuple[tuple[AstExpr, ...], ...]


@dataclass(frozen=True)
class UpdateStmt(Statement):
    table: str
    assignments: tuple[tuple[str, AstExpr], ...]
    where: AstExpr | None = None


@dataclass(frozen=True)
class DeleteStmt(Statement):
    table: str
    where: AstExpr | None = None


@dataclass(frozen=True)
class ColumnEncryptionClause:
    """The ``ENCRYPTED WITH (...)`` clause of Figure 1."""

    cek_name: str
    encryption_type: str       # 'Deterministic' | 'Randomized'
    algorithm: str


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    type_length: int | None = None
    encryption: ColumnEncryptionClause | None = None
    nullable: bool = True
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTableStmt(Statement):
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()


@dataclass(frozen=True)
class CreateIndexStmt(Statement):
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    clustered: bool = False


@dataclass(frozen=True)
class DropTableStmt(Statement):
    name: str


@dataclass(frozen=True)
class DropIndexStmt(Statement):
    name: str
    table: str


@dataclass(frozen=True)
class CreateCmkStmt(Statement):
    """CREATE COLUMN MASTER KEY (Figure 1)."""

    name: str
    key_store_provider_name: str
    key_path: str
    enclave_computations_signature: bytes | None = None


@dataclass(frozen=True)
class CreateCekStmt(Statement):
    """CREATE COLUMN ENCRYPTION KEY (Figure 1)."""

    name: str
    cmk_name: str
    algorithm: str
    encrypted_value: bytes
    signature: bytes


@dataclass(frozen=True)
class AlterCekStmt(Statement):
    """ALTER COLUMN ENCRYPTION KEY ... ADD VALUE / DROP VALUE.

    The CMK-rotation half of the key lifecycle: a CEK gains a second
    encrypted value under the new CMK, clients migrate, then the old
    value is dropped. ``action`` is ``'add'`` or ``'drop'``; the value
    fields are populated only for ``'add'``.
    """

    name: str
    action: str                      # 'add' | 'drop'
    cmk_name: str
    algorithm: str | None = None
    encrypted_value: bytes | None = None
    signature: bytes | None = None


@dataclass(frozen=True)
class AlterColumnStmt(Statement):
    """ALTER TABLE ... ALTER COLUMN — in-place (initial) encryption,
    decryption, or key rotation through the enclave (Section 2.4.2)."""

    table: str
    column: str
    type_name: str
    type_length: int | None = None
    encryption: ColumnEncryptionClause | None = None  # None = decrypt


@dataclass(frozen=True)
class BeginStmt(Statement):
    pass


@dataclass(frozen=True)
class CommitStmt(Statement):
    pass


@dataclass(frozen=True)
class RollbackStmt(Statement):
    pass


def collect_params(expr: AstExpr | None, out: list[str] | None = None) -> list[str]:
    """All parameter names referenced by an expression, in first-seen order."""
    if out is None:
        out = []
    if expr is None:
        return out
    if isinstance(expr, Param):
        if expr.name not in out:
            out.append(expr.name)
    elif isinstance(expr, BinaryOp):
        collect_params(expr.left, out)
        collect_params(expr.right, out)
    elif isinstance(expr, UnaryOp):
        collect_params(expr.operand, out)
    elif isinstance(expr, LikeOp):
        collect_params(expr.value, out)
        collect_params(expr.pattern, out)
    elif isinstance(expr, BetweenOp):
        collect_params(expr.value, out)
        collect_params(expr.low, out)
        collect_params(expr.high, out)
    elif isinstance(expr, InOp):
        collect_params(expr.value, out)
        for option in expr.options:
            collect_params(option, out)
    elif isinstance(expr, IsNullOp):
        collect_params(expr.value, out)
    elif isinstance(expr, Aggregate) and expr.argument is not None:
        collect_params(expr.argument, out)
    return out


def statement_params(stmt: Statement) -> list[str]:
    """All parameter names used anywhere in a statement."""
    params: list[str] = []
    if isinstance(stmt, SelectStmt):
        for item in stmt.items:
            collect_params(item.expr, params)
        for join in stmt.joins:
            collect_params(join.condition, params)
        collect_params(stmt.where, params)
    elif isinstance(stmt, InsertStmt):
        for row in stmt.rows:
            for expr in row:
                collect_params(expr, params)
    elif isinstance(stmt, UpdateStmt):
        for __, expr in stmt.assignments:
            collect_params(expr, params)
        collect_params(stmt.where, params)
    elif isinstance(stmt, DeleteStmt):
        collect_params(stmt.where, params)
    return params
