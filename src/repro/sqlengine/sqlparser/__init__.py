"""SQL lexer, AST, and parser."""

from repro.sqlengine.sqlparser import ast
from repro.sqlengine.sqlparser.lexer import Token, TokenType, tokenize
from repro.sqlengine.sqlparser.parser import parse

__all__ = ["Token", "TokenType", "ast", "parse", "tokenize"]
