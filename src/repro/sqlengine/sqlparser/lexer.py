"""SQL lexer: tokens for the dialect subset this engine speaks."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "LIKE", "BETWEEN", "IN",
    "IS", "NULL", "AS", "JOIN", "INNER", "ON", "GROUP", "BY", "ORDER", "ASC",
    "DESC", "LIMIT", "DISTINCT", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
    "DELETE", "CREATE", "TABLE", "INDEX", "UNIQUE", "CLUSTERED",
    "NONCLUSTERED", "DROP", "ALTER", "COLUMN", "MASTER", "KEY", "ENCRYPTION",
    "WITH", "ENCRYPTED", "PRIMARY", "BEGIN", "TRANSACTION", "COMMIT",
    "ROLLBACK", "COUNT", "SUM", "AVG", "MIN", "MAX", "TRUE", "FALSE",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    HEXBLOB = "hexblob"
    PARAM = "param"         # @name
    OPERATOR = "operator"   # = <> < <= > >= + - * / . , ( ) ; *
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches(self, type_: TokenType, value: str | None = None) -> bool:
        if self.type is not type_:
            return False
        if value is None:
            return True
        return self.value.upper() == value.upper()


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "(", ")", ",", ".", ";")


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL statement; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        # Hex blob: 0x...
        if ch == "0" and i + 1 < n and sql[i + 1] in "xX":
            j = i + 2
            while j < n and sql[j] in "0123456789abcdefABCDEF":
                j += 1
            if j == i + 2:
                raise ParseError(f"empty hex literal at position {i}")
            tokens.append(Token(TokenType.HEXBLOB, sql[i + 2 : j], i))
            i = j
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    # A dot not followed by a digit is a separate token.
                    if j + 1 >= n or not sql[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch == "@":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            if j == i + 1:
                raise ParseError(f"bare '@' at position {i}")
            tokens.append(Token(TokenType.PARAM, sql[i + 1 : j], i))
            i = j
            continue
        if ch == "'" or (ch in "nN" and i + 1 < n and sql[i + 1] == "'"):
            if ch in "nN":
                i += 1  # N'...' national string prefix
            j = i + 1
            buf: list[str] = []
            while j < n:
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(sql[j])
                j += 1
            else:
                raise ParseError(f"unterminated string starting at position {i}")
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch == "[":
            j = sql.find("]", i)
            if j == -1:
                raise ParseError(f"unterminated bracketed identifier at position {i}")
            tokens.append(Token(TokenType.IDENT, sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        for op in _OPERATORS:
            if sql.startswith(op, i):
                value = "<>" if op == "!=" else op
                tokens.append(Token(TokenType.OPERATOR, value, i))
                i += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
