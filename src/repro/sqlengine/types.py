"""SQL type system extended with encryption attributes (Section 4.3).

The paper enhances SQL Server's type system so encryption is "an additional
attribute of SQL types": an encrypted integer, encrypted string, and so on.
Here a column's full type is a :class:`ColumnType` — a plaintext
:class:`SqlType` plus an optional :class:`EncryptionInfo` carrying the
scheme, the algorithm, and the identity of the CEK.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aead import ALGORITHM_NAME, EncryptionScheme
from repro.errors import SqlError
from repro.sqlengine.values import SqlScalar

_VALID_BASES = {"INT", "BIGINT", "FLOAT", "VARCHAR", "CHAR", "VARBINARY", "BIT"}
_LENGTH_BASES = {"VARCHAR", "CHAR", "VARBINARY"}


@dataclass(frozen=True)
class SqlType:
    """A plaintext SQL type: base name plus optional length."""

    base: str
    length: int | None = None

    def __post_init__(self) -> None:
        base = self.base.upper()
        object.__setattr__(self, "base", base)
        if base not in _VALID_BASES:
            raise SqlError(f"unsupported SQL type {base!r}")
        if self.length is not None and base not in _LENGTH_BASES:
            raise SqlError(f"type {base} does not take a length")

    def validate(self, value: SqlScalar) -> None:
        """Raise :class:`SqlError` if ``value`` does not fit this type."""
        if value is None:
            return
        base = self.base
        if base in ("INT", "BIGINT"):
            if isinstance(value, bool) or not isinstance(value, int):
                raise SqlError(f"expected integer for {base}, got {type(value).__name__}")
        elif base == "FLOAT":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SqlError(f"expected numeric for FLOAT, got {type(value).__name__}")
        elif base in ("VARCHAR", "CHAR"):
            if not isinstance(value, str):
                raise SqlError(f"expected string for {base}, got {type(value).__name__}")
            if self.length is not None and len(value) > self.length:
                raise SqlError(
                    f"string of length {len(value)} exceeds {base}({self.length})"
                )
        elif base == "VARBINARY":
            if not isinstance(value, (bytes, bytearray)):
                raise SqlError(f"expected bytes for VARBINARY, got {type(value).__name__}")
            if self.length is not None and len(value) > self.length:
                raise SqlError(
                    f"binary of length {len(value)} exceeds VARBINARY({self.length})"
                )
        elif base == "BIT":
            if not isinstance(value, bool):
                raise SqlError(f"expected bool for BIT, got {type(value).__name__}")

    def __str__(self) -> str:
        if self.length is not None:
            return f"{self.base}({self.length})"
        return self.base


@dataclass(frozen=True)
class EncryptionInfo:
    """The encryption attribute of a column type.

    ``enclave_enabled`` is derived from the CEK's CMK at DDL time and
    cached here because every type-deduction decision needs it.
    """

    scheme: EncryptionScheme
    cek_name: str
    enclave_enabled: bool
    algorithm: str = ALGORITHM_NAME

    def __str__(self) -> str:
        enclave = ", enclave" if self.enclave_enabled else ""
        return f"{self.scheme.short_name}(cek={self.cek_name}{enclave})"


@dataclass(frozen=True)
class ColumnType:
    """The full type of a column / parameter: plaintext type + encryption."""

    sql_type: SqlType
    encryption: EncryptionInfo | None = None

    @property
    def is_encrypted(self) -> bool:
        return self.encryption is not None

    def __str__(self) -> str:
        if self.encryption is None:
            return str(self.sql_type)
        return f"{self.sql_type} ENCRYPTED[{self.encryption}]"


def int_type() -> SqlType:
    return SqlType("INT")


def varchar(length: int | None = None) -> SqlType:
    return SqlType("VARCHAR", length)
