"""The storage engine: tables, indexes, transactions, and recovery.

This facade ties the substrates together and implements the Section 4.5
behaviours around crash recovery of encrypted indexes:

* redo is physical (row images from the WAL, no keys needed);
* undo of transactions that touched tables with encrypted *range* indexes
  is logical — it needs enclave comparisons, hence enclave keys, which the
  client only supplies when running queries. Missing keys make recovery
  mark such transactions **deferred**: they keep their locks, blocking
  updates to the rows they touched (and log truncation) until the client
  connects or the index is invalidated;
* with **constant-time recovery (CTR)** enabled, the versioned heap makes
  the database fully available immediately (undo to the committed version
  is keyless); the *version cleaner* retries the index cleanup in the
  background until keys arrive;
* **index invalidation** forces resolution by skipping index recovery and
  marking the index invalid; automatic when no enclave is configured.
  Clustered indexes on encrypted columns are rejected at DDL time because
  invalidating one would lose data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.crypto.aead import EncryptionScheme
from repro.enclave import Enclave
from repro.errors import (
    ConstraintError,
    KeysUnavailableError,
    PageCorruptError,
    RecoveryError,
    SqlError,
    TransactionError,
)
from repro.sqlengine.storage.freshness import FreshnessAnchor, page_digest
from repro.faults.registry import fault_point, register_fault_site
from repro.obs.metrics import get_registry
from repro.sqlengine.storage.page import Page
from repro.sqlengine.catalog import Catalog, IndexSchema, TableSchema
from repro.sqlengine.index.btree import BPlusTree
from repro.sqlengine.index.comparators import (
    CellComparator,
    CiphertextBinaryComparator,
    CompositeComparator,
    EnclaveComparator,
    PlaintextComparator,
)
from repro.sqlengine.storage.bufferpool import BufferPool
from repro.sqlengine.storage.disk import Disk
from repro.sqlengine.storage.heap import HeapFile, RowId
from repro.sqlengine.storage.record import deserialize_row, serialize_row
from repro.sqlengine.storage.wal import LogOp, LogRecord, WriteAheadLog
from repro.sqlengine.txn.locks import LockManager, LockMode
from repro.sqlengine.txn.transaction import (
    Transaction,
    TransactionManager,
    TxnState,
    UndoEntry,
)


register_fault_site(
    "engine.commit", "transaction commit entry (before the COMMIT record lands)"
)
register_fault_site(
    "engine.prepare", "2PC prepare entry (before the PREPARE record lands)"
)
register_fault_site(
    "engine.index_insert", "index maintenance for one inserted/updated row"
)


class IndexState(enum.Enum):
    READY = "ready"
    PENDING_REBUILD = "pending"   # waiting for enclave keys after a crash
    INVALID = "invalid"           # invalidated during recovery (Section 4.5)


@dataclass
class IndexObject:
    """A live index: schema + tree + recovery state.

    Keys are tuples (one element per indexed column) even for single-column
    indexes, so composite indexes mixing plaintext and encrypted columns —
    like TPC-C's CUSTOMER_NC1 — work uniformly.
    """

    schema: IndexSchema
    tree: BPlusTree
    key_slots: list[int]
    state: IndexState = IndexState.READY
    cek_names: tuple[str, ...] = ()  # CEKs of encrypted key columns

    @property
    def usable(self) -> bool:
        return self.state is IndexState.READY and self.schema.valid

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[slot] for slot in self.key_slots)


@dataclass
class TableObject:
    schema: TableSchema
    heap: HeapFile
    indexes: dict[str, IndexObject] = field(default_factory=dict)


@dataclass
class PendingCleanup:
    """CTR version-cleaner work: index entries of a rolled-back txn."""

    txn_id: int
    table: str
    retries: int = 0


class StorageEngine:
    """The transactional storage engine underneath the SQL executor."""

    def __init__(
        self,
        catalog: Catalog | None = None,
        enclave: Enclave | None = None,
        ctr_enabled: bool = True,
        lock_timeout_s: float = 2.0,
        buffer_pool_pages: int = 4096,
        batch_index_probes: bool = True,
        freshness: FreshnessAnchor | None = None,
    ):
        self.catalog = catalog or Catalog()
        self.enclave = enclave
        self.ctr_enabled = ctr_enabled
        self.batch_index_probes = batch_index_probes
        self.disk = Disk()
        self.wal = WriteAheadLog()
        self.pool = BufferPool(self.disk, capacity=buffer_pool_pages, wal=self.wal)
        # Paper mode (no anchor) stays the default: recovery behaviour and
        # the Figure 8/9 calibration are unchanged unless an anchor is
        # explicitly configured.
        self.freshness = freshness
        if freshness is not None:
            freshness.attach_engine(self)
        self.locks = LockManager(default_timeout_s=lock_timeout_s)
        self.txns = TransactionManager()
        self.tables: dict[str, TableObject] = {}
        self.deferred: dict[int, Transaction] = {}
        # 2PC participants: gtid → prepared transaction (in-doubt after a
        # crash until the coordinator's decision arrives), plus the gtids
        # whose decision already landed so coordinator retries stay
        # idempotent (rebuilt from the WAL at recovery).
        self.prepared: dict[str, Transaction] = {}
        self._resolved_gtids: set[str] = set()
        self.pending_cleanups: list[PendingCleanup] = []
        # Durable metadata (simulating system pages): table → heap page ids.
        self._durable_table_pages: dict[str, list[int]] = {}

    # ------------------------------------------------------------------ DDL

    def create_table(self, schema: TableSchema) -> TableObject:
        self.catalog.create_table(schema)
        table = TableObject(schema=schema, heap=HeapFile(schema.name, self.pool))
        self.tables[schema.name.lower()] = table
        self._durable_table_pages[schema.name.lower()] = []
        if schema.primary_key:
            pk_index = IndexSchema(
                name=f"pk_{schema.name}",
                table_name=schema.name,
                column_names=schema.primary_key,
                unique=True,
            )
            self._create_index_object(table, pk_index)
            schema.indexes[pk_index.name] = pk_index
        return table

    def create_index(self, index: IndexSchema) -> IndexObject:
        table = self.table(index.table_name)
        for column_name in index.column_names:
            column = table.schema.column(column_name)
            if index.clustered and column.is_encrypted:
                # Section 4.5: invalidating a clustered index loses data, so
                # clustered indexes on encrypted columns are not supported.
                raise SqlError(
                    "clustered indexes are not supported on encrypted columns"
                )
            enc = column.column_type.encryption
            if (
                enc is not None
                and enc.scheme is EncryptionScheme.RANDOMIZED
                and not enc.enclave_enabled
            ):
                raise SqlError(
                    "cannot index a randomized column without an enclave-enabled key"
                )
        obj = self._create_index_object(table, index)
        table.schema.indexes[index.name] = index
        # Build from existing rows (an index build sorts the data — the
        # ordering leakage the paper notes for RND range indexes).
        entries = []
        for rid, row in table.heap.scan():
            entries.append((obj.key_of(row), rid))
        obj.tree.bulk_build(entries)
        return obj

    def _create_index_object(self, table: TableObject, index: IndexSchema) -> IndexObject:
        if index.name in table.indexes:
            raise SqlError(f"index {index.name!r} already exists")
        key_slots: list[int] = []
        cells: list[CellComparator] = []
        cek_names: list[str] = []
        leak_column: str | None = None
        for column_name in index.column_names:
            column = table.schema.column(column_name)
            key_slots.append(table.schema.column_index(column_name))
            enc = column.column_type.encryption
            # The leakage ledger attributes observations to qualified
            # column names; the first encrypted key column labels the
            # tree's access pattern.
            column_label = f"{table.schema.name}.{column_name}"
            if enc is None:
                cells.append(CellComparator(PlaintextComparator()))
            elif enc.scheme is EncryptionScheme.DETERMINISTIC:
                cells.append(
                    CellComparator(CiphertextBinaryComparator(column=column_label))
                )
                cek_names.append(enc.cek_name)
                leak_column = leak_column or column_label
            else:
                if self.enclave is None:
                    raise SqlError("a range index on a RND column requires an enclave")
                cells.append(
                    CellComparator(
                        EnclaveComparator(
                            self.enclave,
                            enc.cek_name,
                            batch_probes=self.batch_index_probes,
                            column=column_label,
                        )
                    )
                )
                cek_names.append(enc.cek_name)
                leak_column = leak_column or column_label
        obj = IndexObject(
            schema=index,
            tree=BPlusTree(
                CompositeComparator(cells),
                unique=index.unique,
                leak_column=leak_column,
            ),
            key_slots=key_slots,
            cek_names=tuple(cek_names),
        )
        table.indexes[index.name] = obj
        return obj

    def drop_index(self, table_name: str, index_name: str) -> None:
        table = self.table(table_name)
        table.indexes.pop(index_name, None)
        table.schema.indexes.pop(index_name, None)

    def rebind_index_cek(self, table_name: str, column_name: str, new_cek: str) -> None:
        """Repoint index comparators after a rotation's metadata flip.

        Enclave comparators capture the column's CEK name at index build
        time; when an online rotation flips the column to a new CEK the
        trees keyed on it must follow, or the first post-rotation probe
        MAC-fails against entries rewritten under the new key.
        """
        table = self.table(table_name)
        target = column_name.lower()
        for obj in table.indexes.values():
            names = [name.lower() for name in obj.schema.column_names]
            if target not in names:
                continue
            for name, cell in zip(names, obj.tree.comparator.cells):
                if name == target and isinstance(cell.inner, EnclaveComparator):
                    cell.inner.rebind_cek(new_cek)
            obj.cek_names = tuple(
                enc.cek_name
                for enc in (
                    table.schema.column(column).column_type.encryption
                    for column in obj.schema.column_names
                )
                if enc is not None
            )

    def table(self, name: str) -> TableObject:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise SqlError(f"unknown table {name!r}") from None

    # ----------------------------------------------------------- transactions

    def begin(self) -> Transaction:
        return self.txns.begin()

    def _ensure_begin_logged(self, txn: Transaction) -> None:
        if not txn.begin_logged:
            self.wal.append(txn.txn_id, LogOp.BEGIN)
            txn.begin_logged = True

    def commit(self, txn: Transaction) -> None:
        if not txn.is_active:
            raise TransactionError(f"cannot commit txn in state {txn.state}")
        fault_point("engine.commit", txn_id=txn.txn_id)
        self._ensure_begin_logged(txn)
        self.wal.append(txn.txn_id, LogOp.COMMIT)
        self.wal.flush()
        self.txns.finish(txn, TxnState.COMMITTED)
        self.locks.release_all(txn.txn_id)

    def abort(self, txn: Transaction) -> None:
        if not txn.is_active:
            raise TransactionError(f"cannot abort txn in state {txn.state}")
        self._ensure_begin_logged(txn)
        self._undo(txn, log_compensation=True)
        self.wal.append(txn.txn_id, LogOp.ABORT)
        self.wal.flush()
        self.txns.finish(txn, TxnState.ABORTED)
        self.locks.release_all(txn.txn_id)

    # -------------------------------------------------- two-phase commit

    def prepare(self, txn: Transaction, gtid: str) -> None:
        """Phase one: durably promise to commit ``txn`` under ``gtid``.

        The PREPARE record (gtid in the ``table`` field) reaches disk
        before we answer the coordinator; the transaction keeps every
        lock and its undo log, so either decision remains executable —
        including after a crash, when recovery rebuilds it as in-doubt.
        """
        if not txn.is_active:
            raise TransactionError(f"cannot prepare txn in state {txn.state}")
        if gtid in self.prepared or gtid in self._resolved_gtids:
            raise TransactionError(f"gtid {gtid!r} already prepared or resolved")
        fault_point("engine.prepare", txn_id=txn.txn_id, gtid=gtid)
        self._ensure_begin_logged(txn)
        self.wal.append(txn.txn_id, LogOp.PREPARE, table=gtid)
        self.wal.flush()
        self.txns.finish(txn, TxnState.PREPARED)
        self.prepared[gtid] = txn

    def commit_prepared(self, gtid: str) -> bool:
        """Phase two, commit decision. Idempotent: a coordinator retrying
        after a crash gets ``False`` if the decision already applied."""
        if gtid in self._resolved_gtids:
            return False
        txn = self.prepared.pop(gtid, None)
        if txn is None:
            # Presumed abort: an unknown, unresolved gtid was never
            # prepared here (or its PREPARE never became durable).
            raise TransactionError(f"no prepared transaction for gtid {gtid!r}")
        self.wal.append(txn.txn_id, LogOp.COMMIT, table=gtid)
        self.wal.flush()
        txn.state = TxnState.COMMITTED
        txn.undo_log.clear()
        self._resolved_gtids.add(gtid)
        self.locks.release_all(txn.txn_id)
        return True

    def abort_prepared(self, gtid: str) -> bool:
        """Phase two, abort decision (also the presumed-abort path)."""
        if gtid in self._resolved_gtids:
            return False
        txn = self.prepared.pop(gtid, None)
        if txn is None:
            # Presumed abort: nothing prepared means nothing to undo.
            return False
        self._undo(txn, log_compensation=True)
        self.wal.append(txn.txn_id, LogOp.ABORT, table=gtid)
        self.wal.flush()
        txn.state = TxnState.ABORTED
        self._resolved_gtids.add(gtid)
        self.locks.release_all(txn.txn_id)
        return True

    def indoubt_gtids(self) -> list[str]:
        """Gtids awaiting a coordinator decision (recovery repopulates)."""
        return sorted(self.prepared)

    # ------------------------------------------------------------------- DML

    def insert(self, txn: Transaction, table_name: str, row: tuple) -> RowId:
        table = self.table(table_name)
        self._validate_row(table, row)
        self._ensure_begin_logged(txn)
        rid = table.heap.insert(row)
        try:
            # The heap can hand out a reused slot whose rid another
            # transaction still locks (it deleted the old row and hasn't
            # finished): a lock timeout must not leak the unlogged row.
            self.locks.acquire(txn.txn_id, ("row", table_name.lower(), rid), LockMode.EXCLUSIVE)
        except Exception:
            table.heap.delete(rid)
            raise
        try:
            self._index_insert(table, row, rid)
        except Exception:
            # Constraint violation or injected fault: either way the heap
            # row must not outlive its missing index entries.
            table.heap.delete(rid)
            raise
        try:
            self.wal.append(
                txn.txn_id, LogOp.INSERT, table=table_name.lower(), rid=rid, after=serialize_row(row)
            )
        except Exception:
            # Write-ahead rule: a change that could not be logged must not
            # survive in memory either — eviction or checkpoint could push
            # it to disk with recovery knowing nothing about it.
            self._index_delete(table, row, rid)
            table.heap.delete(rid)
            raise
        txn.undo_log.append(UndoEntry("insert", table_name.lower(), rid, None, row))
        txn.touched_tables.add(table_name.lower())
        return rid

    def delete(self, txn: Transaction, table_name: str, rid: RowId) -> None:
        table = self.table(table_name)
        self.locks.acquire(txn.txn_id, ("row", table_name.lower(), rid), LockMode.EXCLUSIVE)
        self._ensure_begin_logged(txn)
        row = table.heap.read(rid)
        self._index_delete(table, row, rid)
        table.heap.delete(rid)
        try:
            self.wal.append(
                txn.txn_id, LogOp.DELETE, table=table_name.lower(), rid=rid, before=serialize_row(row)
            )
        except Exception:
            table.heap.insert_at(rid, row)
            self._index_reinsert_raw(table, row, rid)
            raise
        txn.undo_log.append(UndoEntry("delete", table_name.lower(), rid, row, None))
        txn.touched_tables.add(table_name.lower())

    def update(self, txn: Transaction, table_name: str, rid: RowId, new_row: tuple) -> None:
        table = self.table(table_name)
        self._validate_row(table, new_row)
        self.locks.acquire(txn.txn_id, ("row", table_name.lower(), rid), LockMode.EXCLUSIVE)
        self._ensure_begin_logged(txn)
        old_row = table.heap.read(rid)
        self._index_delete(table, old_row, rid)
        try:
            self._index_insert(table, new_row, rid)
        except Exception:
            self._index_insert(table, old_row, rid)
            raise
        try:
            table.heap.update(rid, new_row)
        except SqlError:
            # The row grew past its page's free space (e.g. in-place
            # encryption turning small plaintext into 65+-byte envelopes):
            # relocate it, repointing index entries at the new rid.
            self._relocate_row(txn, table, table_name.lower(), rid, old_row, new_row)
            return
        try:
            self.wal.append(
                txn.txn_id,
                LogOp.UPDATE,
                table=table_name.lower(),
                rid=rid,
                before=serialize_row(old_row),
                after=serialize_row(new_row),
            )
        except Exception:
            table.heap.update(rid, old_row)
            self._index_delete(table, new_row, rid)
            self._index_reinsert_raw(table, old_row, rid)
            raise
        txn.undo_log.append(UndoEntry("update", table_name.lower(), rid, old_row, new_row))
        txn.touched_tables.add(table_name.lower())

    def _relocate_row(
        self,
        txn: Transaction,
        table: TableObject,
        table_name: str,
        rid: RowId,
        old_row: tuple,
        new_row: tuple,
    ) -> RowId:
        table.heap.delete(rid)
        new_rid = table.heap.insert(new_row)
        self.locks.acquire(txn.txn_id, ("row", table_name, new_rid), LockMode.EXCLUSIVE)
        for obj in list(table.indexes.values()):
            if obj.state is not IndexState.READY or not obj.schema.valid:
                continue
            key = obj.key_of(new_row)
            obj.tree.delete(key, rid)
            obj.tree.insert(key, new_rid)
        self.wal.append(
            txn.txn_id, LogOp.DELETE, table=table_name, rid=rid, before=serialize_row(old_row)
        )
        self.wal.append(
            txn.txn_id, LogOp.INSERT, table=table_name, rid=new_rid, after=serialize_row(new_row)
        )
        txn.undo_log.append(UndoEntry("delete", table_name, rid, old_row, None))
        txn.undo_log.append(UndoEntry("insert", table_name, new_rid, None, new_row))
        txn.touched_tables.add(table_name)
        return new_rid

    def lock_row(self, txn: Transaction, table_name: str, rid: RowId) -> None:
        """Acquire an exclusive row lock ahead of a read-modify-write.

        Update/delete qualification must be re-checked *after* this lock:
        reads are unlocked, so the row seen during scanning may be stale.
        """
        self.locks.acquire(txn.txn_id, ("row", table_name.lower(), rid), LockMode.EXCLUSIVE)

    def read(self, table_name: str, rid: RowId) -> tuple | None:
        return self.table(table_name).heap.read_or_none(rid)

    def scan(self, table_name: str) -> Iterator[tuple[RowId, tuple]]:
        return self.table(table_name).heap.scan()

    def _validate_row(self, table: TableObject, row: tuple) -> None:
        if len(row) != table.schema.arity:
            raise SqlError(
                f"row arity {len(row)} does not match table "
                f"{table.schema.name!r} ({table.schema.arity} columns)"
            )
        from repro.sqlengine.cells import Ciphertext

        for cell, column in zip(row, table.schema.columns):
            if cell is None:
                if not column.nullable:
                    raise ConstraintError(
                        f"column {column.name!r} does not allow NULL"
                    )
                continue
            if column.is_encrypted:
                if not isinstance(cell, Ciphertext):
                    # During an online *initial encryption* the column's
                    # metadata flips to encrypted at ROTATE_BEGIN while old
                    # rows are still plaintext; the sweep converts them.
                    # Only that declared window tolerates a mixed cell.
                    rotation = self.catalog.column_rotation(
                        table.schema.name, column.name
                    )
                    if rotation is not None and rotation.kind == "encrypt":
                        continue
                    raise SqlError(
                        f"column {column.name!r} is encrypted; the engine only "
                        "accepts ciphertext for it (the driver encrypts)"
                    )
            else:
                if isinstance(cell, Ciphertext):
                    raise SqlError(f"column {column.name!r} is plaintext; got ciphertext")
                column.column_type.sql_type.validate(cell)

    # -------------------------------------------------------- index maintenance

    def _index_insert(self, table: TableObject, row: tuple, rid: RowId) -> None:
        fault_point("engine.index_insert", table=table.schema.name, rid=rid)
        inserted: list[tuple[IndexObject, object]] = []
        try:
            # list(): concurrent DDL on another session must not mutate the
            # dict under this iteration.
            for obj in list(table.indexes.values()):
                if obj.state is not IndexState.READY or not obj.schema.valid:
                    continue
                key = obj.key_of(row)
                obj.tree.insert(key, rid)
                inserted.append((obj, key))
        except Exception:
            for obj, key in inserted:
                obj.tree.delete(key, rid)
            raise

    def _index_delete(self, table: TableObject, row: tuple, rid: RowId) -> None:
        for obj in list(table.indexes.values()):
            if obj.state is not IndexState.READY or not obj.schema.valid:
                continue
            obj.tree.delete(obj.key_of(row), rid)

    def _index_reinsert_raw(self, table: TableObject, row: tuple, rid: RowId) -> None:
        """Restore just-removed index entries while rolling back a failed
        WAL append. No fault point, no constraint surprises: the entries
        were present moments ago."""
        for obj in list(table.indexes.values()):
            if obj.state is not IndexState.READY or not obj.schema.valid:
                continue
            obj.tree.insert(obj.key_of(row), rid)

    def _rebuild_index(self, table: TableObject, obj: IndexObject) -> None:
        entries = []
        for rid, row in table.heap.scan():
            entries.append((obj.key_of(row), rid))
        obj.tree = BPlusTree(obj.tree.comparator, unique=obj.schema.unique)
        obj.tree.bulk_build(entries)
        obj.state = IndexState.READY

    # ------------------------------------------------------------------- undo

    def _undo(self, txn: Transaction, log_compensation: bool) -> None:
        for entry in reversed(txn.undo_log):
            table = self.table(entry.table)
            if entry.op == "insert":
                current = table.heap.read_or_none(entry.rid)
                if current is not None:
                    self._index_delete(table, current, entry.rid)
                    table.heap.delete(entry.rid)
                if log_compensation:
                    self.wal.append(
                        txn.txn_id,
                        LogOp.DELETE,
                        table=entry.table,
                        rid=entry.rid,
                        before=serialize_row(entry.after or ()),
                    )
            elif entry.op == "delete":
                assert entry.before is not None
                table.heap.insert_at(entry.rid, entry.before)
                self._index_insert(table, entry.before, entry.rid)
                if log_compensation:
                    self.wal.append(
                        txn.txn_id,
                        LogOp.INSERT,
                        table=entry.table,
                        rid=entry.rid,
                        after=serialize_row(entry.before),
                    )
            elif entry.op == "update":
                assert entry.before is not None and entry.after is not None
                current = table.heap.read_or_none(entry.rid)
                if current is not None:
                    self._index_delete(table, current, entry.rid)
                table.heap.insert_at(entry.rid, entry.before)
                self._index_insert(table, entry.before, entry.rid)
                if log_compensation:
                    self.wal.append(
                        txn.txn_id,
                        LogOp.UPDATE,
                        table=entry.table,
                        rid=entry.rid,
                        before=serialize_row(entry.after),
                        after=serialize_row(entry.before),
                    )
        txn.undo_log.clear()

    # ------------------------------------------------------- checkpoint / crash

    def checkpoint(self) -> None:
        """Flush dirty pages and record durable heap membership."""
        self.pool.flush_all()
        for name, table in self.tables.items():
            self._durable_table_pages[name] = table.heap.page_ids
        self.wal.append(0, LogOp.CHECKPOINT)
        self.wal.flush()

    def crash(self) -> None:
        """Simulate a crash: all volatile state is lost.

        Dirty buffered pages vanish; the disk, the flushed WAL, and the
        (system-page) catalog and table-page metadata survive.
        """
        self.pool.drop_all()
        self.wal.drop_unflushed()
        self.locks = LockManager(default_timeout_s=self.locks.default_timeout_s)
        self.txns = TransactionManager()
        self.tables = {}
        self.deferred = {}
        self.prepared = {}
        self._resolved_gtids = set()
        self.pending_cleanups = []

    def recover(self) -> "RecoveryReport":
        """Run crash recovery: physical redo, then (deferrable) undo."""
        report = RecoveryReport()

        # 0. Sweep every on-disk page image through its checksum. A torn
        #    write (power loss mid-write) can hit any page the pool ever
        #    wrote back — checkpointed or evicted — so the sweep covers the
        #    whole disk, not just the durable heap metadata. A corrupt image
        #    is dropped and replaced by a fresh (dirty, so it writes back)
        #    empty page of the same id; physical redo recreates its rows
        #    from the WAL.
        torn_page_ids: set[int] = set()
        page_digests: dict[int, bytes] = {}
        for page_id in self.disk.page_ids():
            image = self.disk.read_page(page_id)
            try:
                Page.from_bytes(image)
            except PageCorruptError:
                self.disk.drop_page(page_id)
                self.pool.get_or_create(page_id).dirty = True
                get_registry().counter(
                    "recovery.torn_pages_detected",
                    help="page images failing their checksum at recovery",
                ).inc()
                report.torn_pages += 1
                torn_page_ids.add(page_id)
            else:
                page_digests[page_id] = page_digest(image)

        # 0b. Freshness gate: before trusting a byte of the durable state,
        #     check it against the anchor. An internally consistent but
        #     *old* WAL/disk (a restored snapshot, replayed pages, a
        #     pre-rotation backup) raises StaleRestoreError here instead
        #     of silently recovering; torn pages are exempt because their
        #     contents come back from the WAL this very check verified.
        if self.freshness is not None:
            verdict = self.freshness.verify_recovery(
                self.wal,
                page_digests,
                torn_page_ids,
                self.catalog.cek_versions(),
            )
            report.freshness_verified = True
            report.anchor_epoch = verdict.epoch

        # 1. Reattach heaps from durable metadata and recreate index objects
        #    from the (durable) catalog — empty for now, rebuilt in step 5.
        for schema in self.catalog.tables():
            table = TableObject(schema=schema, heap=HeapFile(schema.name, self.pool))
            self.tables[schema.name.lower()] = table
            for page_id in self._durable_table_pages.get(schema.name.lower(), []):
                if self.disk.has_page(page_id) or page_id in torn_page_ids:
                    table.heap.adopt_page(page_id)
                    self.pool.note_existing_page_id(page_id)
            for index_schema in schema.indexes.values():
                try:
                    obj = self._create_index_object(table, index_schema)
                except SqlError:
                    # A RND range index with no enclave configured (e.g. a
                    # backup restored on an enclave-less machine): index
                    # invalidation is automatic (Section 4.5).
                    index_schema.valid = False
                    report.invalidated_indexes.append(index_schema.name)
                    continue
                if not index_schema.valid:
                    obj.state = IndexState.INVALID

        records = self.wal.records(durable_only=True)
        if records:
            # New transactions must not reuse ids the durable log already
            # mentions: the *next* recovery would conflate their records
            # (e.g. treat a fresh PREPARE as resolved by an old COMMIT).
            self.txns.advance_past(max(r.txn_id for r in records))

        # 2. Physical redo of every row operation, in LSN order. Idempotent
        #    and keyless: images are (possibly ciphertext) bytes.
        for record in records:
            if record.op is LogOp.INSERT:
                table = self.table(record.table)
                table.heap.insert_at(record.rid, deserialize_row(record.after))
                self.pool.note_existing_page_id(record.rid.page_id)
                report.redone += 1
            elif record.op is LogOp.DELETE:
                table = self.table(record.table)
                if table.heap.read_or_none(record.rid) is not None:
                    table.heap.delete(record.rid)
                report.redone += 1
            elif record.op is LogOp.UPDATE:
                table = self.table(record.table)
                table.heap.insert_at(record.rid, deserialize_row(record.after))
                report.redone += 1

        # 3. Identify loser transactions. A transaction with a durable
        #    PREPARE but no decision record is *in-doubt*, not a loser:
        #    presumed-abort 2PC keeps it (and its locks) until the
        #    coordinator resolves it. Decisions for prepared txns carry
        #    their gtid in the table field; remembering them makes
        #    coordinator retries after a crash idempotent.
        finished = {
            r.txn_id for r in records if r.op in (LogOp.COMMIT, LogOp.ABORT)
        }
        self._resolved_gtids = {
            r.table
            for r in records
            if r.op in (LogOp.COMMIT, LogOp.ABORT) and r.table is not None
        }
        indoubt_gtid_by_txn: dict[int, str] = {
            r.txn_id: r.table
            for r in records
            if r.op is LogOp.PREPARE
            and r.table is not None
            and r.txn_id not in finished
        }
        losers: dict[int, Transaction] = {}
        indoubt: dict[int, Transaction] = {}
        for record in records:
            if record.op is LogOp.BEGIN and record.txn_id not in finished:
                txn = Transaction(txn_id=record.txn_id)
                if record.txn_id in indoubt_gtid_by_txn:
                    indoubt[record.txn_id] = txn
                else:
                    losers[record.txn_id] = txn
        for record in records:
            loser = losers.get(record.txn_id) or indoubt.get(record.txn_id)
            if loser is None:
                continue
            if record.op is LogOp.INSERT:
                loser.undo_log.append(
                    UndoEntry("insert", record.table, record.rid, None, deserialize_row(record.after))
                )
                loser.touched_tables.add(record.table)
            elif record.op is LogOp.DELETE:
                loser.undo_log.append(
                    UndoEntry("delete", record.table, record.rid, deserialize_row(record.before), None)
                )
                loser.touched_tables.add(record.table)
            elif record.op is LogOp.UPDATE:
                loser.undo_log.append(
                    UndoEntry(
                        "update",
                        record.table,
                        record.rid,
                        deserialize_row(record.before),
                        deserialize_row(record.after),
                    )
                )
                loser.touched_tables.add(record.table)

        # 4. Undo losers — deferring those gated on missing enclave keys.
        for loser in losers.values():
            gating = self._keyless_encrypted_indexes(loser.touched_tables)
            if gating and self.enclave is None:
                # No enclave configured (e.g. restoring a backup on a
                # machine without one): invalidation is automatic.
                for table_name, index_name in gating:
                    self.invalidate_index(table_name, index_name)
                    report.invalidated_indexes.append(index_name)
                gating = []
            if gating:
                if self.ctr_enabled:
                    # CTR: committed versions become visible immediately
                    # (keyless heap undo), locks are NOT retained; the
                    # version cleaner owns the index-side cleanup.
                    self._undo_heap_only(loser)
                    for table_name, __ in gating:
                        self.pending_cleanups.append(
                            PendingCleanup(txn_id=loser.txn_id, table=table_name)
                        )
                    loser.state = TxnState.ABORTED
                    self.wal.append(loser.txn_id, LogOp.ABORT)
                    report.ctr_reverted.append(loser.txn_id)
                else:
                    loser.state = TxnState.DEFERRED
                    self.deferred[loser.txn_id] = loser
                    self.locks.rehold(
                        loser.txn_id,
                        {("row", e.table, e.rid) for e in loser.undo_log},
                    )
                    report.deferred.append(loser.txn_id)
            else:
                self._undo_heap_only(loser)
                loser.state = TxnState.ABORTED
                self.wal.append(loser.txn_id, LogOp.ABORT)
                report.undone.append(loser.txn_id)

        # 4b. Reinstate in-doubt 2PC participants: state PREPARED, undo log
        #     rebuilt from the WAL, locks re-held — nothing may touch their
        #     rows until the coordinator's commit_prepared/abort_prepared.
        for txn in indoubt.values():
            gtid = indoubt_gtid_by_txn[txn.txn_id]
            txn.state = TxnState.PREPARED
            txn.begin_logged = True
            # Adopt pushes the id counter past the recovered id — a new
            # transaction reusing it would silently share the re-held
            # locks (same-holder grants) instead of blocking on them.
            self.txns.adopt(txn)
            self.txns.finish(txn, TxnState.PREPARED)
            self.prepared[gtid] = txn
            self.locks.rehold(
                txn.txn_id,
                {("row", e.table, e.rid) for e in txn.undo_log},
            )
            report.indoubt.append(gtid)
        self.wal.flush()

        # 4c. Key-lifecycle resume analysis. ROTATE_* records ride txn 0,
        #     so steps 2-4 ignored them; here they are authoritative over
        #     whatever the in-memory catalog still believes. A durable
        #     ROTATE_BEGIN without its ROTATE_END means the crash landed
        #     mid-rotation: rebuild the catalog's rotation state at the
        #     checkpointed watermark (and re-flip the column's CEK, which
        #     happens after the BEGIN flush) so a lifecycle job can resume.
        #     A durable ROTATE_END re-applies the version bump — the bump
        #     precedes the anchor witness, so recovery must never report a
        #     version *below* what the anchor holds.
        rotate_begun: dict[str, LogRecord] = {}
        rotate_watermarks: dict[str, int] = {}
        rotate_ended: dict[str, LogRecord] = {}
        for record in records:
            if record.table is None:
                continue
            if record.op is LogOp.ROTATE_BEGIN:
                rotate_begun[record.table] = record
            elif record.op is LogOp.ROTATE_PROGRESS:
                rotate_watermarks[record.table] = int.from_bytes(
                    record.after or b"", "big", signed=True
                )
            elif record.op is LogOp.ROTATE_END:
                rotate_ended[record.table] = record
        if rotate_begun:
            from repro.sqlengine.rotation import (
                decode_rotation_descriptor,
                reinstate_rotation,
            )

            for rotation_id, begin_record in rotate_begun.items():
                descriptor = decode_rotation_descriptor(begin_record.after or b"")
                end_record = rotate_ended.get(rotation_id)
                if end_record is not None:
                    version = int.from_bytes(end_record.after or b"", "big", signed=True)
                    self.catalog.ensure_cek_version(descriptor.new_cek, version)
                    if self.catalog.column_rotation(descriptor.table, descriptor.column):
                        self.catalog.finish_column_rotation(rotation_id)
                    report.completed_rotations.append(rotation_id)
                else:
                    reinstate_rotation(
                        self,
                        rotation_id,
                        descriptor,
                        rotate_watermarks.get(rotation_id, -1),
                    )
                    report.resumed_rotations.append(rotation_id)

        # 5. Rebuild indexes. Keyless kinds rebuild now; enclave-comparator
        #    indexes rebuild only if the CEK is installed.
        for table in self.tables.values():
            for obj in table.indexes.values():
                if not obj.schema.valid:
                    obj.state = IndexState.INVALID
                    continue
                try:
                    self._rebuild_index(table, obj)
                except KeysUnavailableError:
                    obj.state = IndexState.PENDING_REBUILD
                    report.pending_indexes.append(obj.schema.name)

        return report

    def _undo_heap_only(self, txn: Transaction) -> None:
        """Undo against the heap using before-images; indexes are derived
        later by rebuild, so no index navigation (no keys) is needed."""
        for entry in reversed(txn.undo_log):
            table = self.table(entry.table)
            if entry.op == "insert":
                if table.heap.read_or_none(entry.rid) is not None:
                    table.heap.delete(entry.rid)
            elif entry.op == "delete":
                assert entry.before is not None
                table.heap.insert_at(entry.rid, entry.before)
            elif entry.op == "update":
                assert entry.before is not None
                table.heap.insert_at(entry.rid, entry.before)
            self.wal.append(
                txn.txn_id,
                LogOp.UPDATE if entry.op == "update" else
                (LogOp.DELETE if entry.op == "insert" else LogOp.INSERT),
                table=entry.table,
                rid=entry.rid,
                before=serialize_row(entry.after) if entry.op == "update" else (
                    serialize_row(entry.after) if entry.op == "insert" else None
                ),
                after=serialize_row(entry.before) if entry.op in ("delete", "update") else None,
            )

    def _keyless_encrypted_indexes(self, table_names: set[str]) -> list[tuple[str, str]]:
        """(table, index) pairs with enclave comparators whose CEK is absent."""
        gating: list[tuple[str, str]] = []
        for table_name in table_names:
            table = self.tables.get(table_name)
            if table is None:
                continue
            for obj in table.indexes.values():
                if not obj.schema.valid:
                    continue
                needs_enclave = any(
                    isinstance(cell.inner, EnclaveComparator)
                    for cell in obj.tree.comparator.cells
                )
                if needs_enclave and (
                    self.enclave is None
                    # installed_ceks() is the sanctioned ecall for this
                    # question; reaching into enclave.sqlos would cross
                    # the trust boundary (and trips the analyzer).
                    or not set(obj.cek_names) <= self.enclave.installed_ceks()
                ):
                    gating.append((table_name, obj.schema.name))
        return gating

    # ------------------------------------------------ deferred-txn resolution

    def resolve_deferred_transactions(self) -> list[int]:
        """Retry deferred undo — called when the client has supplied keys."""
        resolved: list[int] = []
        for txn_id in list(self.deferred):
            txn = self.deferred[txn_id]
            gating = self._keyless_encrypted_indexes(txn.touched_tables)
            if gating:
                continue
            self._undo_heap_only(txn)
            txn.state = TxnState.ABORTED
            self.wal.append(txn.txn_id, LogOp.ABORT)
            self.locks.release_all(txn_id)
            del self.deferred[txn_id]
            resolved.append(txn_id)
        self.wal.flush()
        # Indexes pending rebuild may now be buildable.
        self.retry_pending_indexes()
        return resolved

    def retry_pending_indexes(self) -> list[str]:
        rebuilt: list[str] = []
        for table in self.tables.values():
            for obj in table.indexes.values():
                if obj.state is IndexState.PENDING_REBUILD and obj.schema.valid:
                    try:
                        self._rebuild_index(table, obj)
                        rebuilt.append(obj.schema.name)
                    except KeysUnavailableError:
                        pass
        return rebuilt

    def run_version_cleaner(self) -> tuple[int, int]:
        """One CTR version-cleaner pass; returns (cleaned, still_pending).

        Cleanup here is completing the pending index rebuilds; each failed
        attempt increments the retry counter, reproducing "it keeps
        retrying" from Section 4.5.
        """
        still: list[PendingCleanup] = []
        cleaned = 0
        for pending in self.pending_cleanups:
            table = self.tables.get(pending.table)
            done = True
            if table is not None:
                for obj in table.indexes.values():
                    if obj.state is IndexState.PENDING_REBUILD and obj.schema.valid:
                        try:
                            self._rebuild_index(table, obj)
                        except KeysUnavailableError:
                            done = False
            if done:
                cleaned += 1
            else:
                pending.retries += 1
                still.append(pending)
        self.pending_cleanups = still
        return cleaned, len(still)

    def invalidate_index(self, table_name: str, index_name: str) -> None:
        """Skip recovery of an index and mark it invalid (Section 4.5)."""
        table = self.table(table_name)
        obj = table.indexes.get(index_name)
        if obj is None:
            raise SqlError(f"unknown index {index_name!r}")
        if obj.schema.clustered:
            raise RecoveryError("invalidating a clustered index would lose data")
        obj.schema.valid = False
        obj.state = IndexState.INVALID
        # Deferred transactions gated only on this index can now resolve.
        self.resolve_deferred_transactions()

    def apply_invalidation_policy(self, max_log_records: int | None = None) -> list[str]:
        """Policy-driven invalidation: e.g. log-space consumption threshold."""
        invalidated: list[str] = []
        if max_log_records is not None and self.wal.size() > max_log_records and self.deferred:
            tables = set()
            for txn in self.deferred.values():
                tables |= txn.touched_tables
            for table_name, index_name in self._keyless_encrypted_indexes(tables):
                self.invalidate_index(table_name, index_name)
                invalidated.append(index_name)
        return invalidated

    def truncate_log(self) -> int:
        """Truncate the WAL; blocked while deferred transactions exist."""
        if self.deferred:
            raise TransactionError(
                "log truncation is blocked by deferred transactions "
                "(client keys or index invalidation required)"
            )
        if self.prepared:
            raise TransactionError(
                "log truncation is blocked by in-doubt prepared transactions "
                "(their PREPARE records must survive until resolution)"
            )
        if self.freshness is not None:
            # Seal the durable horizon as the anchor's new chain base
            # before the records below it disappear — verification of any
            # later restore folds from this sealed base.
            self.wal.flush()
            self.freshness.seal_truncation(self.wal)
        return self.wal.truncate_before(self.wal.flushed_lsn + 1)

    # ---------------------------------------------------- consistency checks

    def verify_index_consistency(self) -> list[str]:
        """Compare every usable index against its heap, at quiesce.

        For each READY+valid index, the multiset of (key, rid) entries in
        the tree must equal the multiset derived from scanning the heap.
        Ciphertext keys compare by envelope bytes. Returns human-readable
        violation strings (empty = consistent). Only meaningful when no
        transactions are in flight.
        """
        from collections import Counter as _Counter

        from repro.sqlengine.cells import Ciphertext

        def _norm(key: tuple) -> tuple:
            return tuple(
                cell.envelope if isinstance(cell, Ciphertext) else cell
                for cell in key
            )

        violations: list[str] = []
        for table in list(self.tables.values()):
            heap_rows = list(table.heap.scan())
            for obj in list(table.indexes.values()):
                if not obj.usable:
                    continue
                expected = _Counter(
                    (_norm(obj.key_of(row)), rid) for rid, row in heap_rows
                )
                actual = _Counter(
                    (_norm(key), rid) for key, rid in obj.tree.scan_all()
                )
                if expected != actual:
                    missing = expected - actual
                    extra = actual - expected
                    violations.append(
                        f"index {obj.schema.name!r} on {table.schema.name!r}: "
                        f"{sum(missing.values())} heap rows missing from index, "
                        f"{sum(extra.values())} stale index entries"
                    )
        return violations


@dataclass
class RecoveryReport:
    """What recovery did — the observable Section 4.5 outcomes."""

    redone: int = 0
    torn_pages: int = 0
    undone: list[int] = field(default_factory=list)
    deferred: list[int] = field(default_factory=list)
    #: gtids of in-doubt 2PC participants reinstated with locks held.
    indoubt: list[str] = field(default_factory=list)
    ctr_reverted: list[int] = field(default_factory=list)
    pending_indexes: list[str] = field(default_factory=list)
    invalidated_indexes: list[str] = field(default_factory=list)
    #: True when a freshness anchor verified the durable state (and, on
    #: success, re-anchored to it); always False in paper mode.
    freshness_verified: bool = False
    #: The anchor epoch after verification (each verify advances it).
    anchor_epoch: int | None = None
    #: Rotation ids whose ROTATE_BEGIN is durable but whose ROTATE_END is
    #: not: the crash landed mid-rotation and a lifecycle job can resume
    #: from the checkpointed watermark.
    resumed_rotations: list[str] = field(default_factory=list)
    #: Rotation ids whose ROTATE_END is durable: recovery re-applied the
    #: CEK version bump in case the crash beat the in-memory catalog.
    completed_rotations: list[str] = field(default_factory=list)
