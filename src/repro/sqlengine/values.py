"""SQL values and their canonical binary serialization.

Cell encryption operates on *serialized* values: the driver and the enclave
must agree byte-for-byte on how an INT or VARCHAR is laid out, because
deterministic encryption preserves equality only of identical plaintext
bytes. This module defines that canonical encoding.

NULL handling follows the shipped feature: NULL cells are stored as NULL
(no ciphertext), so encryption never hides nullness — the paper already
concedes value lengths and cardinalities as metadata leakage.
"""

from __future__ import annotations

import struct
from typing import Union

from repro.errors import SqlError

SqlScalar = Union[int, float, str, bytes, bool, None]

_TAG_INT = 0x01
_TAG_FLOAT = 0x02
_TAG_STR = 0x03
_TAG_BYTES = 0x04
_TAG_BOOL = 0x05

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def serialize_value(value: SqlScalar) -> bytes:
    """Serialize a non-NULL scalar to canonical type-tagged bytes."""
    if value is None:
        raise SqlError("NULL values are stored as NULL, never serialized for encryption")
    if isinstance(value, bool):
        # bool before int: bool is a subclass of int in Python.
        return bytes([_TAG_BOOL, 1 if value else 0])
    if isinstance(value, int):
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise SqlError(f"integer {value} out of 64-bit range")
        return bytes([_TAG_INT]) + struct.pack(">q", value)
    if isinstance(value, float):
        return bytes([_TAG_FLOAT]) + struct.pack(">d", value)
    if isinstance(value, str):
        return bytes([_TAG_STR]) + value.encode("utf-8")
    if isinstance(value, (bytes, bytearray)):
        return bytes([_TAG_BYTES]) + bytes(value)
    raise SqlError(f"unsupported SQL value type {type(value).__name__}")


def deserialize_value(data: bytes) -> SqlScalar:
    """Invert :func:`serialize_value`."""
    if not data:
        raise SqlError("empty serialized value")
    tag, body = data[0], data[1:]
    if tag == _TAG_BOOL:
        if len(body) != 1 or body[0] not in (0, 1):
            raise SqlError("malformed serialized BIT value")
        return body[0] == 1
    if tag == _TAG_INT:
        if len(body) != 8:
            raise SqlError("malformed serialized INT value")
        return struct.unpack(">q", body)[0]
    if tag == _TAG_FLOAT:
        if len(body) != 8:
            raise SqlError("malformed serialized FLOAT value")
        return struct.unpack(">d", body)[0]
    if tag == _TAG_STR:
        return body.decode("utf-8")
    if tag == _TAG_BYTES:
        return body
    raise SqlError(f"unknown serialized value tag {tag:#x}")


def compare_values(left: SqlScalar, right: SqlScalar) -> int:
    """Three-way comparison with SQL semantics for supported scalars.

    Mixed int/float compare numerically; everything else must match in
    type. NULLs never reach here: SQL three-valued logic is handled by the
    expression VM, which short-circuits NULL operands to UNKNOWN.
    """
    if left is None or right is None:
        raise SqlError("compare_values does not accept NULL; handle three-valued logic upstream")
    numeric = (int, float)
    if isinstance(left, bool) != isinstance(right, bool):
        raise SqlError("cannot compare BIT with non-BIT value")
    if isinstance(left, numeric) and isinstance(right, numeric):
        return (left > right) - (left < right)
    if type(left) is not type(right):
        raise SqlError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    return (left > right) - (left < right)  # type: ignore[operator]


def like_match(value: str, pattern: str) -> bool:
    """Evaluate a SQL LIKE pattern (``%`` any run, ``_`` one char).

    This is the string pattern matching the paper's enclave supports. A
    simple backtracking matcher; no escape-character support (the TPC-C
    workload and our examples don't need it).
    """
    # Iterative two-pointer algorithm with backtracking on '%'.
    v_idx = p_idx = 0
    star_p = star_v = -1
    while v_idx < len(value):
        if p_idx < len(pattern) and (pattern[p_idx] == "_" or pattern[p_idx] == value[v_idx]):
            v_idx += 1
            p_idx += 1
        elif p_idx < len(pattern) and pattern[p_idx] == "%":
            star_p = p_idx
            star_v = v_idx
            p_idx += 1
        elif star_p != -1:
            star_v += 1
            v_idx = star_v
            p_idx = star_p + 1
        else:
            return False
    while p_idx < len(pattern) and pattern[p_idx] == "%":
        p_idx += 1
    return p_idx == len(pattern)
