"""The (untrusted) SQL Server facade.

Implements the server-side surface the paper describes:

* ``sp_describe_parameter_encryption`` (Section 4.1) — parse + bind +
  encryption type deduction, returning per-parameter encryption types, the
  CEK/CMK metadata the driver needs, and — when the query needs the
  enclave — attestation information;
* query execution through the executor, with a plan cache holding the
  results of type deduction alongside parsed statements (Section 4.3);
* DDL, including the enclave-mediated ``ALTER TABLE ALTER COLUMN`` paths
  for initial encryption, key rotation, and decryption (Sections 2.4.2,
  3.2) — all *online* and without any client round-trip per row;
* forwarding sealed CEK packages from driver to enclave (SQL is the
  untrusted man-in-the-middle), which also unblocks deferred transactions
  and pending index rebuilds, since "the client connects and sends keys".
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.attestation.hgs import HostGuardianService
from repro.attestation.protocol import AttestationInfo, server_attest
from repro.attestation.tpm import HostMachine
from repro.crypto.aead import ALGORITHM_NAME, EncryptionScheme
from repro.enclave import CallMode, Enclave, EnclaveCallGateway, SealedPackage
from repro.errors import (
    BindError,
    EnclaveError,
    ServerBusyError,
    SqlError,
    StaleRestoreError,
    TransactionError,
)
from repro.keys.cek import CekEncryptedValue, ColumnEncryptionKey
from repro.obs.flightrec import record_event
from repro.obs.metrics import StatsView, get_registry
from repro.obs.querystats import QueryStatsCollector
from repro.obs.tracing import STATEMENT, TraceContext, get_tracer
from repro.keys.cmk import ColumnMasterKey
from repro.sqlengine.catalog import Catalog, ColumnSchema, IndexSchema, TableSchema
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.engine import StorageEngine
from repro.sqlengine.rotation import (
    InitialEncryptionJob,
    KeyLifecycleJob,
    KeyRotationJob,
    RotationDescriptor,
    RotationStatus,
    job_for_descriptor,
)
from repro.sqlengine.storage.freshness import FreshnessAnchor
from repro.sqlengine.exec.executor import Executor, QueryResult
from repro.sqlengine.scheduler import StatementScheduler
from repro.sqlengine.scope import Scope
from repro.sqlengine.sqlparser import ast, parse
from repro.sqlengine.typededuce import DeductionResult, deduce
from repro.sqlengine.types import ColumnType, SqlType
from repro.sqlengine.values import deserialize_value, serialize_value


#: The one message a quarantined server ever gives a query. Fixed text on
#: purpose: DET and RND deployments must refuse *identically*, so the
#: refusal channel itself leaks nothing about configuration or data.
QUARANTINE_MESSAGE = (
    "server quarantined: recovery detected a stale restore (freshness anchor "
    "mismatch); an operator must call accept_restored_state() to proceed"
)


@dataclass(frozen=True)
class ParameterDescription:
    """Encryption type info for one query parameter."""

    name: str
    column_type: ColumnType


@dataclass(frozen=True)
class CekMetadata:
    """CEK metadata as shipped to the driver: encrypted values + CMK info."""

    cek: ColumnEncryptionKey
    cmks: tuple[ColumnMasterKey, ...]


@dataclass
class DescribeResult:
    """Output of ``sp_describe_parameter_encryption``."""

    parameters: list[ParameterDescription]
    parameter_ceks: dict[str, CekMetadata]   # cek name → metadata
    enclave_ceks: list[CekMetadata]          # CEKs needed inside the enclave
    attestation: AttestationInfo | None = None

    @property
    def uses_enclave(self) -> bool:
        return bool(self.enclave_ceks)


@dataclass
class _CachedPlan:
    stmt: ast.Statement
    deduction: DeductionResult
    hits: int = 0


class ServerStats(StatsView):
    """Per-server view over the ``server.*`` registry counters."""

    FIELDS = {
        "plan_cache_hits": "server.plan_cache_hits",
        "plan_cache_misses": "server.plan_cache_misses",
        "describe_calls": "server.describe_calls",
        "statements_executed": "server.statements_executed",
    }


class SqlServer:
    """One SQL Server instance (the shaded, untrusted box of Figure 3)."""

    def __init__(
        self,
        enclave: Enclave | None = None,
        host_machine: HostMachine | None = None,
        hgs: HostGuardianService | None = None,
        ctr_enabled: bool = True,
        enclave_threads: int = 4,
        enclave_call_mode: CallMode = CallMode.QUEUED,
        lock_timeout_s: float = 2.0,
        allow_enclave_order_by: bool = False,
        eval_batch_size: int = 64,
        worker_threads: int = 4,
        max_sessions: int | None = None,
        freshness: FreshnessAnchor | None = None,
    ):
        self.catalog = Catalog()
        self.enclave = enclave
        self.host_machine = host_machine
        self.hgs = hgs
        self.engine = StorageEngine(
            catalog=self.catalog,
            enclave=enclave,
            ctr_enabled=ctr_enabled,
            lock_timeout_s=lock_timeout_s,
            batch_index_probes=eval_batch_size > 1,
            freshness=freshness,
        )
        # Set when recovery detects a stale restore; every session refuses
        # queries with the fixed QUARANTINE_MESSAGE until an operator
        # explicitly accepts the restored state.
        self._quarantined = False
        self.gateway: EnclaveCallGateway | None = None
        if enclave is not None:
            self.gateway = EnclaveCallGateway(
                enclave, mode=enclave_call_mode, n_threads=enclave_threads
            )
        self.allow_enclave_order_by = allow_enclave_order_by
        self.eval_batch_size = eval_batch_size
        self.executor = Executor(
            self.engine,
            enclave_gateway=self.gateway,
            allow_enclave_order_by=allow_enclave_order_by,
            eval_batch_size=eval_batch_size,
        )
        self._plan_cache: dict[str, _CachedPlan] = {}
        self._plan_lock = threading.Lock()
        self.stats = ServerStats()
        self._tracer = get_tracer()
        self._session_ids = itertools.count(1)
        # Process-wide statement ids: unique across sessions, so traces
        # and flight-recorder events never collide between clients.
        self._statement_ids = itertools.count(1)
        self.scheduler = StatementScheduler(worker_threads=worker_threads)
        self.max_sessions = max_sessions
        self._sessions_lock = threading.Lock()
        self._open_sessions: set[int] = set()
        # Online key-lifecycle jobs, keyed by rotation id. Jobs survive
        # here only as long as the process; after a crash the catalog's
        # reinstated rotation state is the source of truth and a client
        # re-adopts it through rotate_resume (re-authorizing the DDL text
        # first — enclave sessions do not survive crashes).
        self._rotation_jobs: dict[str, KeyLifecycleJob] = {}
        self._rotation_ids = itertools.count(1)
        self._rotation_lock = threading.Lock()
        self._sessions_gauge = get_registry().gauge(
            "server.sessions_open", help="client sessions currently connected"
        )

    # Historical attribute API, now views over the registry.

    @property
    def plan_cache_hits(self) -> int:
        return self.stats.plan_cache_hits

    @property
    def plan_cache_misses(self) -> int:
        return self.stats.plan_cache_misses

    @property
    def describe_calls(self) -> int:
        return self.stats.describe_calls

    # ------------------------------------------------------------- connections

    def connect(self) -> "ServerSession":
        session_id = next(self._session_ids)
        with self._sessions_lock:
            if (
                self.max_sessions is not None
                and len(self._open_sessions) >= self.max_sessions
            ):
                raise ServerBusyError(
                    f"server at max_sessions={self.max_sessions}; "
                    "close a session before connecting"
                )
            self._open_sessions.add(session_id)
            self._sessions_gauge.set(len(self._open_sessions))
        return ServerSession(self, session_id)

    def _release_session(self, session_id: int) -> None:
        with self._sessions_lock:
            self._open_sessions.discard(session_id)
            self._sessions_gauge.set(len(self._open_sessions))

    # ------------------------------------------------------------- plan cache

    def _plan(self, query_text: str) -> _CachedPlan:
        with self._plan_lock:
            cached = self._plan_cache.get(query_text)
        if cached is not None:
            cached.hits += 1
            self.stats.inc("plan_cache_hits")
            return cached
        self.stats.inc("plan_cache_misses")
        # Parse + deduce outside the lock: they only read the catalog, and
        # concurrent first-executions of the same text just race to insert
        # equivalent plans.
        stmt = parse(query_text)
        deduction = self._deduce(stmt)
        cached = _CachedPlan(stmt=stmt, deduction=deduction)
        if isinstance(stmt, (ast.SelectStmt, ast.InsertStmt, ast.UpdateStmt, ast.DeleteStmt)):
            with self._plan_lock:
                existing = self._plan_cache.get(query_text)
                if existing is not None:
                    return existing
                self._plan_cache[query_text] = cached
        return cached

    def _deduce(self, stmt: ast.Statement) -> DeductionResult:
        scope = Scope(self.catalog)
        if isinstance(stmt, ast.SelectStmt):
            if stmt.table is not None:
                scope.add_table(stmt.table)
            for join in stmt.joins:
                scope.add_table(join.table)
        elif isinstance(stmt, (ast.InsertStmt, ast.UpdateStmt, ast.DeleteStmt)):
            scope.add_table(ast.TableRef(name=stmt.table))
        else:
            return DeductionResult(param_types={}, enclave_ceks=set())
        return deduce(stmt, scope, allow_enclave_order_by=self.allow_enclave_order_by)

    def _invalidate_plan_cache(self) -> None:
        with self._plan_lock:
            self._plan_cache.clear()

    # ------------------------------------------- sp_describe_parameter_encryption

    def describe_parameter_encryption(
        self, query_text: str, client_dh_public: int | None = None
    ) -> DescribeResult:
        """The Section 4.1 API: per-parameter encryption types, CEK/CMK
        metadata, and attestation info when the enclave is involved."""
        self.stats.inc("describe_calls")
        plan = self._plan(query_text)
        parameters = [
            ParameterDescription(name=name, column_type=column_type)
            for name, column_type in plan.deduction.param_types.items()
        ]
        parameter_ceks: dict[str, CekMetadata] = {}
        for description in parameters:
            enc = description.column_type.encryption
            if enc is not None:
                parameter_ceks[enc.cek_name] = self._cek_metadata(enc.cek_name)
        enclave_ceks = [
            self._cek_metadata(name) for name in sorted(plan.deduction.enclave_ceks)
        ]
        attestation = None
        if enclave_ceks and client_dh_public is not None:
            attestation = self.attest(client_dh_public)
        return DescribeResult(
            parameters=parameters,
            parameter_ceks=parameter_ceks,
            enclave_ceks=enclave_ceks,
            attestation=attestation,
        )

    def attest(self, client_dh_public: int) -> AttestationInfo:
        if self.enclave is None or self.host_machine is None or self.hgs is None:
            raise EnclaveError("this server has no enclave/attestation configured")
        return server_attest(self.host_machine, self.hgs, self.enclave, client_dh_public)

    def _cek_metadata(self, cek_name: str) -> CekMetadata:
        cek = self.catalog.cek(cek_name)
        cmks = tuple(self.catalog.cmk(name) for name in cek.cmk_names())
        return CekMetadata(cek=cek, cmks=cmks)

    def fetch_cek_metadata(self, cek_name: str) -> CekMetadata:
        """Driver-side helper for decrypting result columns."""
        return self._cek_metadata(cek_name)

    # --------------------------------------------------------- enclave forwarding

    def forward_enclave_package(self, enclave_session_id: int, sealed: SealedPackage) -> None:
        """Forward a driver's sealed CEK package to the enclave.

        SQL cannot read the package (it is encrypted under the attestation
        shared secret); it is purely a conduit. A client connecting with
        keys is also the event that unblocks deferred transactions and
        pending index rebuilds (Section 4.5).
        """
        if self.enclave is None:
            raise EnclaveError("no enclave configured")
        self.enclave.install_package(enclave_session_id, sealed)
        self.engine.resolve_deferred_transactions()

    # ------------------------------------------------------------------- recovery

    def crash(self) -> None:
        self.engine.crash()
        self._invalidate_plan_cache()

    def recover(self):
        try:
            return self.engine.recover()
        except StaleRestoreError:
            self._quarantined = True
            raise

    @property
    def quarantined(self) -> bool:
        return self._quarantined

    # ------------------------------------------------------- two-phase commit

    def commit_prepared(self, gtid: str) -> bool:
        """Apply a coordinator's commit decision to a prepared txn."""
        return self.engine.commit_prepared(gtid)

    def abort_prepared(self, gtid: str) -> bool:
        """Apply a coordinator's abort decision (presumed-abort safe)."""
        return self.engine.abort_prepared(gtid)

    def indoubt_gtids(self) -> list[str]:
        """Prepared transactions awaiting a coordinator decision."""
        return self.engine.indoubt_gtids()

    def accept_restored_state(self):
        """Operator override: make the restored state the trusted present.

        The one sanctioned way out of quarantine — re-seeds the anchor
        from the current durable state (so the restored snapshot becomes
        the new baseline), then re-runs recovery. Without an anchor this
        is just a recover()."""
        self._quarantined = False
        if self.engine.freshness is not None:
            self.engine.freshness.rebaseline()
        return self.recover()

    # ------------------------------------------------- online key lifecycle

    def rotate_start(
        self,
        table: str,
        column: str,
        new_cek: str,
        query_text: str,
        batch_size: int = 64,
        kind: str = "rotate",
        scheme: EncryptionScheme | None = None,
    ) -> str:
        """Start an online lifecycle job; returns its rotation id.

        ``query_text`` is the DDL text the client authorized through its
        sealed CEK package — the enclave refuses the per-batch recrypt
        without it, so starting a rotation is useless to an attacker who
        has only compromised the server.
        """
        if self._quarantined:
            raise StaleRestoreError(QUARANTINE_MESSAGE)
        if kind not in ("rotate", "encrypt"):
            raise SqlError(f"unknown lifecycle kind {kind!r}")
        with self._rotation_lock:
            rotation_id = (
                f"rot-{next(self._rotation_ids)}-{table.lower()}.{column.lower()}"
            )
            cls = InitialEncryptionJob if kind == "encrypt" else KeyRotationJob
            job = cls(
                self.engine,
                rotation_id,
                query_text,
                table,
                column,
                new_cek,
                batch_size=batch_size,
                scheme=scheme,
            )
            job.begin()
            self._rotation_jobs[rotation_id] = job
        # New statements must bind against the flipped column metadata.
        self._invalidate_plan_cache()
        return rotation_id

    def rotate_resume(
        self, rotation_id: str, query_text: str, batch_size: int = 64
    ) -> str:
        """Re-adopt a recovery-reinstated rotation after a crash.

        The caller must have re-authorized ``query_text`` (a fresh sealed
        package) — the enclave's session state did not survive the crash.
        """
        if self._quarantined:
            raise StaleRestoreError(QUARANTINE_MESSAGE)
        with self._rotation_lock:
            state = self.catalog.rotation(rotation_id)
            encryption = (
                self.catalog.table(state.table)
                .column(state.column)
                .column_type.encryption
            )
            if encryption is None:
                raise SqlError(
                    f"rotation {rotation_id!r} column lost its encryption metadata"
                )
            descriptor = RotationDescriptor(
                table=state.table,
                column=state.column,
                old_cek=state.old_cek,
                new_cek=state.new_cek,
                scheme=encryption.scheme,
                kind=state.kind,
            )
            self._rotation_jobs[rotation_id] = job_for_descriptor(
                self.engine, rotation_id, descriptor, query_text, batch_size
            )
        return rotation_id

    def rotate_step(self, rotation_id: str, max_batches: int = 1) -> tuple[bool, int]:
        """Advance a job by up to ``max_batches`` batches.

        Returns ``(more_work, rows_changed)``. Driving the loop from the
        caller keeps each step short, so live traffic interleaves between
        batches exactly as the paper's online rotation requires.
        """
        if self._quarantined:
            raise StaleRestoreError(QUARANTINE_MESSAGE)
        with self._rotation_lock:
            job = self._rotation_jobs.get(rotation_id)
        if job is None:
            raise BindError(
                f"unknown or unresumed rotation {rotation_id!r}; after a crash "
                "call rotate_resume first"
            )
        more, total = True, 0
        for _ in range(max(1, max_batches)):
            more, rows = job.step()
            total += rows
            if not more:
                break
        if not more:
            self._invalidate_plan_cache()
        return more, total

    def rotate_run(self, rotation_id: str) -> int:
        """Drive a job to completion (in-process convenience)."""
        more = True
        total = 0
        while more:
            more, rows = self.rotate_step(rotation_id)
            total += rows
        return total

    def rotation_states(self) -> list[RotationStatus]:
        """Every known lifecycle job's status, including catalog-reinstated
        rotations that no in-process job has adopted yet (post-crash)."""
        out: list[RotationStatus] = []
        with self._rotation_lock:
            jobs = dict(self._rotation_jobs)
        for job in jobs.values():
            out.append(job.status())
        seen = {status.rotation_id for status in out}
        for state in self.catalog.active_rotations():
            if state.rotation_id in seen:
                continue
            out.append(
                RotationStatus(
                    rotation_id=state.rotation_id,
                    table=state.table,
                    column=state.column,
                    old_cek=state.old_cek,
                    new_cek=state.new_cek,
                    kind=state.kind,
                    watermark=state.watermark,
                    rows_rotated=state.rows_rotated,
                    active=True,
                )
            )
        return out

    def cek_versions(self) -> dict[str, int]:
        """The catalog's CEK version table (anchor-witnessed on rotation)."""
        return self.catalog.cek_versions()


class ServerSession:
    """One client connection: transaction state + execution entry point.

    A session is used by one client thread at a time (the usual connection
    contract); *different* sessions execute concurrently, dispatched onto
    the server's statement scheduler.
    """

    def __init__(self, server: SqlServer, session_id: int):
        self.server = server
        self.session_id = session_id
        self._txn = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release the session slot; rolls back any open transaction."""
        if self._closed:
            return
        self._closed = True
        if self._txn is not None:
            self.server.engine.abort(self._txn)
            self._txn = None
        self.server._release_session(self.session_id)

    def __enter__(self) -> "ServerSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transactions -------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def _begin(self) -> None:
        if self._txn is not None:
            raise TransactionError("transaction already open on this session")
        self._txn = self.server.engine.begin()

    def _commit(self) -> None:
        if self._txn is None:
            raise TransactionError("no open transaction")
        self.server.engine.commit(self._txn)
        self._txn = None

    def _rollback(self) -> None:
        if self._txn is None:
            raise TransactionError("no open transaction")
        self.server.engine.abort(self._txn)
        self._txn = None

    def prepare_transaction(self, gtid: str) -> None:
        """2PC phase one: durably prepare this session's open transaction.

        On return the session has no open transaction — the prepared txn
        belongs to the engine's in-doubt table until the coordinator's
        commit_prepared/abort_prepared decision arrives (possibly on a
        different connection, possibly after a crash)."""
        if self._txn is None:
            raise TransactionError("no open transaction to prepare")
        self.server.engine.prepare(self._txn, gtid)
        self._txn = None

    # -- execution ------------------------------------------------------------------

    def execute(self, query_text: str, params: dict[str, object] | None = None) -> QueryResult:
        """Execute a statement. Parameters arrive already encrypted when the
        column requires it (the driver did that); SQL never sees plaintext
        for encrypted columns."""
        if self._closed:
            raise SqlError("session is closed")
        if self.server._quarantined:
            # Checked before any parsing or routing: a quarantined server
            # gives every statement the same fixed refusal, independent of
            # statement kind, encryption scheme, or schema.
            raise StaleRestoreError(QUARANTINE_MESSAGE)
        stmt_probe = query_text.lstrip().upper()
        if stmt_probe.startswith(("CREATE", "DROP", "ALTER")):
            result = self._execute_ddl(query_text)
            self.server._invalidate_plan_cache()
            return result
        if stmt_probe.startswith("BEGIN"):
            self._begin()
            return QueryResult()
        if stmt_probe.startswith("COMMIT"):
            self._commit()
            return QueryResult()
        if stmt_probe.startswith("ROLLBACK"):
            self._rollback()
            return QueryResult()
        # DML runs start-to-finish on one scheduler worker, so the
        # thread-local tracer and stats attribution context both live on
        # the thread actually doing the work.
        return self.server.scheduler.submit(
            lambda: self._run_statement(query_text, params or {})
        )

    def _run_statement(self, query_text: str, params: dict[str, object]) -> QueryResult:
        statement_id = next(self.server._statement_ids)
        trace_context = TraceContext(
            trace_id=statement_id,
            statement_id=statement_id,
            session_id=self.session_id,
        )
        collector = QueryStatsCollector(query_text=query_text)
        tracer = self.server._tracer
        try:
            with tracer.trace(trace_context):
                record_event("stmt.begin", query=query_text[:120])
                plan = self.server._plan(query_text)
                autocommit = self._txn is None and not isinstance(
                    plan.stmt, ast.SelectStmt
                )
                txn = self._txn
                if autocommit:
                    txn = self.server.engine.begin()
                try:
                    with tracer.span(
                        "server.statement",
                        kind=STATEMENT,
                        session=self.session_id,
                        statement=statement_id,
                    ) as root_span:
                        result = self.server.executor.execute(
                            plan.stmt, params, txn=txn, deduction=plan.deduction
                        )
                except Exception:
                    if autocommit and txn is not None:
                        self.server.engine.abort(txn)
                    record_event("stmt.end", ok=False, query=query_text[:120])
                    raise
                if autocommit and txn is not None:
                    self.server.engine.commit(txn)
        except BaseException:
            collector.cancel()
            raise
        self.server.stats.inc("statements_executed")
        result.stats = collector.finish(
            rows_returned=result.rowcount,
            plan_info=result.plan_info,
            root_span=root_span,
        )
        result.stats.statement_id = statement_id
        result.stats.session_id = self.session_id
        with tracer.trace(trace_context):
            record_event(
                "stmt.end",
                ok=True,
                elapsed_s=result.stats.elapsed_s,
                rows=result.rowcount,
                query=query_text[:120],
            )
        return result

    # -- DDL ---------------------------------------------------------------------------

    def _execute_ddl(self, query_text: str) -> QueryResult:
        stmt = parse(query_text)
        if isinstance(stmt, ast.CreateCmkStmt):
            cmk = ColumnMasterKey(
                name=stmt.name,
                key_store_provider_name=stmt.key_store_provider_name,
                key_path=stmt.key_path,
                allow_enclave_computations=stmt.enclave_computations_signature is not None,
                signature=stmt.enclave_computations_signature or b"",
            )
            self.server.catalog.create_cmk(cmk)
            return QueryResult()
        if isinstance(stmt, ast.CreateCekStmt):
            value = CekEncryptedValue(
                column_master_key_name=stmt.cmk_name,
                algorithm=stmt.algorithm,
                encrypted_value=stmt.encrypted_value,
                signature=stmt.signature,
            )
            cek = ColumnEncryptionKey(name=stmt.name, encrypted_values=[value])
            self.server.catalog.create_cek(cek)
            return QueryResult()
        if isinstance(stmt, ast.CreateTableStmt):
            return self._create_table(stmt)
        if isinstance(stmt, ast.CreateIndexStmt):
            self.server.engine.create_index(
                IndexSchema(
                    name=stmt.name,
                    table_name=stmt.table,
                    column_names=stmt.columns,
                    unique=stmt.unique,
                    clustered=stmt.clustered,
                )
            )
            return QueryResult()
        if isinstance(stmt, ast.DropTableStmt):
            self.server.engine.tables.pop(stmt.name.lower(), None)
            self.server.catalog.drop_table(stmt.name)
            return QueryResult()
        if isinstance(stmt, ast.DropIndexStmt):
            self.server.engine.drop_index(stmt.table, stmt.name)
            return QueryResult()
        if isinstance(stmt, ast.AlterColumnStmt):
            return self._alter_column(query_text, stmt)
        if isinstance(stmt, ast.AlterCekStmt):
            # CMK rotation metadata surgery (§4.3): ADD VALUE starts it
            # (the CEK is temporarily wrapped under both CMKs), DROP VALUE
            # finishes it. Pure system-table DDL — no enclave, no rows.
            if stmt.action == "add":
                value = CekEncryptedValue(
                    column_master_key_name=stmt.cmk_name,
                    algorithm=stmt.algorithm,
                    encrypted_value=stmt.encrypted_value,
                    signature=stmt.signature,
                )
                self.server.catalog.alter_cek_add_value(stmt.name, value)
            else:
                self.server.catalog.alter_cek_drop_value(stmt.name, stmt.cmk_name)
            return QueryResult()
        raise SqlError(f"unsupported DDL {type(stmt).__name__}")

    def _create_table(self, stmt: ast.CreateTableStmt) -> QueryResult:
        columns: list[ColumnSchema] = []
        for definition in stmt.columns:
            encryption = None
            if definition.encryption is not None:
                scheme = (
                    EncryptionScheme.DETERMINISTIC
                    if definition.encryption.encryption_type == "Deterministic"
                    else EncryptionScheme.RANDOMIZED
                )
                encryption = self.server.catalog.encryption_info(
                    definition.encryption.cek_name, scheme, definition.encryption.algorithm
                )
            columns.append(
                ColumnSchema(
                    name=definition.name,
                    column_type=ColumnType(
                        sql_type=SqlType(definition.type_name, definition.type_length),
                        encryption=encryption,
                    ),
                    nullable=definition.nullable,
                )
            )
        schema = TableSchema(name=stmt.name, columns=columns, primary_key=stmt.primary_key)
        self.server.engine.create_table(schema)
        return QueryResult()

    def _alter_column(self, query_text: str, stmt: ast.AlterColumnStmt) -> QueryResult:
        """In-place (initial) encryption / rotation / decryption (§2.4.2, §3.2).

        Uses the enclave's gated Encrypt/Recrypt/Decrypt: the enclave will
        refuse unless the client authorized exactly this query text via the
        sealed CEK package. All row rewrites run in one transaction and are
        logged, so the operation is online and recoverable.
        """
        server = self.server
        if server.enclave is None:
            raise EnclaveError(
                "ALTER COLUMN encryption changes require an enclave; use the "
                "client-side tools for enclave-less (round-trip) encryption"
            )
        engine = server.engine
        table = engine.table(stmt.table)
        schema = table.schema
        column = schema.column(stmt.column)
        slot = schema.column_index(stmt.column)
        old_enc = column.column_type.encryption

        new_enc = None
        if stmt.encryption is not None:
            scheme = (
                EncryptionScheme.DETERMINISTIC
                if stmt.encryption.encryption_type == "Deterministic"
                else EncryptionScheme.RANDOMIZED
            )
            new_enc = server.catalog.encryption_info(
                stmt.encryption.cek_name, scheme, stmt.encryption.algorithm
            )
            if not new_enc.enclave_enabled:
                raise EnclaveError(
                    "in-place encryption requires an enclave-enabled CEK; "
                    "otherwise a client round-trip is needed"
                )
        if old_enc is None and new_enc is None:
            raise SqlError("ALTER COLUMN: column is already plaintext")

        # Indexes keyed on this column must be rebuilt under the new type;
        # drop their trees and recreate after the rewrite.
        affected_indexes = [
            obj.schema
            for obj in table.indexes.values()
            if slot in obj.key_slots
        ]
        for index_schema in affected_indexes:
            engine.drop_index(stmt.table, index_schema.name)

        # Update the schema first so row validation accepts the new cell
        # form during the rewrite; on failure the old type is restored.
        old_column_type = column.column_type
        column.column_type = ColumnType(
            sql_type=SqlType(stmt.type_name, stmt.type_length), encryption=new_enc
        )
        txn = engine.begin()
        try:
            for rid, row in list(table.heap.scan()):
                cell = row[slot]
                if cell is None:
                    continue
                new_cell = self._convert_cell(query_text, cell, old_enc, new_enc)
                new_row = list(row)
                new_row[slot] = new_cell
                engine.update(txn, stmt.table, rid, tuple(new_row))
            engine.commit(txn)
        except Exception:
            if txn.is_active:
                engine.abort(txn)
            column.column_type = old_column_type
            raise
        for index_schema in affected_indexes:
            index_schema.valid = True
            engine.create_index(index_schema)
        server._invalidate_plan_cache()
        return QueryResult()

    def _convert_cell(self, query_text, cell, old_enc, new_enc):
        enclave = self.server.enclave
        if old_enc is None:
            # Initial encryption: plaintext → ciphertext via the gated oracle.
            return enclave.encrypt_for_ddl(
                query_text, new_enc.cek_name, serialize_value(cell), new_enc.scheme
            )
        if new_enc is None:
            # Decryption back to plaintext (client-authorized).
            if not isinstance(cell, Ciphertext):
                raise SqlError("expected ciphertext cell during decryption DDL")
            return deserialize_value(
                enclave.decrypt_for_ddl(query_text, old_enc.cek_name, cell)
            )
        # Key rotation / scheme change: recrypt inside the enclave.
        if not isinstance(cell, Ciphertext):
            raise SqlError("expected ciphertext cell during recrypt DDL")
        return enclave.recrypt_for_ddl(
            query_text, old_enc.cek_name, new_enc.cek_name, cell, new_enc.scheme
        )


ALGORITHM = ALGORITHM_NAME
