"""The catalog: table schemas plus AE key metadata (Section 4.3).

The paper stores key metadata in new system tables so "the database is the
single source of truth" — CMK and CEK metadata replicate and back up with
the data. We mirror that: :class:`Catalog` owns the CMK/CEK system tables
alongside table schemas, and derives each column's ``enclave_enabled`` flag
from its CEK's CMK, exactly the chain the DDL in Figure 1 establishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.aead import ALGORITHM_NAME, EncryptionScheme
from repro.errors import BindError, SqlError
from repro.keys.cek import ColumnEncryptionKey
from repro.keys.cmk import ColumnMasterKey
from repro.obs.latchprof import TimedLatch
from repro.sqlengine.types import ColumnType, EncryptionInfo, SqlType


@dataclass
class ColumnSchema:
    """One column: name, full type (with encryption attribute), nullability."""

    name: str
    column_type: ColumnType
    nullable: bool = True

    @property
    def is_encrypted(self) -> bool:
        return self.column_type.is_encrypted


@dataclass
class IndexSchema:
    """Metadata for one index."""

    name: str
    table_name: str
    column_names: tuple[str, ...]
    unique: bool = False
    clustered: bool = False
    # Encrypted indexes can be invalidated during recovery (Section 4.5).
    valid: bool = True

    @property
    def key_column(self) -> str:
        return self.column_names[0]


@dataclass
class TableSchema:
    """One table: ordered columns, primary key, index list."""

    name: str
    columns: list[ColumnSchema]
    primary_key: tuple[str, ...] = ()
    indexes: dict[str, IndexSchema] = field(default_factory=dict)

    def column(self, name: str) -> ColumnSchema:
        for col in self.columns:
            if col.name.lower() == name.lower():
                return col
        raise BindError(f"table {self.name!r} has no column {name!r}")

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name.lower() == name.lower():
                return i
        raise BindError(f"table {self.name!r} has no column {name!r}")

    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)


class Catalog:
    """All metadata: tables, indexes, and the CMK/CEK system tables."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}
        self._cmks: dict[str, ColumnMasterKey] = {}
        self._ceks: dict[str, ColumnEncryptionKey] = {}
        # Concurrent sessions read the catalog on every bind; DDL mutates
        # it. One reentrant latch keeps lookups consistent with drops.
        self._latch = TimedLatch("repro.sqlengine.catalog.Catalog._latch")

    # -- tables ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        with self._latch:
            key = schema.name.lower()
            if key in self._tables:
                raise SqlError(f"table {schema.name!r} already exists")
            self._tables[key] = schema

    def drop_table(self, name: str) -> None:
        with self._latch:
            self._require_table(name)
            del self._tables[name.lower()]

    def table(self, name: str) -> TableSchema:
        with self._latch:
            return self._require_table(name)

    def has_table(self, name: str) -> bool:
        with self._latch:
            return name.lower() in self._tables

    def tables(self) -> list[TableSchema]:
        with self._latch:
            return list(self._tables.values())

    def _require_table(self, name: str) -> TableSchema:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise BindError(f"unknown table {name!r}") from None

    # -- key metadata (the new system tables of Section 4.3) --------------------

    def create_cmk(self, cmk: ColumnMasterKey) -> None:
        with self._latch:
            if cmk.name in self._cmks:
                raise SqlError(f"column master key {cmk.name!r} already exists")
            self._cmks[cmk.name] = cmk

    def create_cek(self, cek: ColumnEncryptionKey) -> None:
        with self._latch:
            if cek.name in self._ceks:
                raise SqlError(f"column encryption key {cek.name!r} already exists")
            for cmk_name in cek.cmk_names():
                if cmk_name not in self._cmks:
                    raise BindError(f"CEK {cek.name!r} references unknown CMK {cmk_name!r}")
            self._ceks[cek.name] = cek

    def cmk(self, name: str) -> ColumnMasterKey:
        with self._latch:
            try:
                return self._cmks[name]
            except KeyError:
                raise BindError(f"unknown column master key {name!r}") from None

    def cek(self, name: str) -> ColumnEncryptionKey:
        with self._latch:
            try:
                return self._ceks[name]
            except KeyError:
                raise BindError(f"unknown column encryption key {name!r}") from None

    def cmks(self) -> list[ColumnMasterKey]:
        with self._latch:
            return list(self._cmks.values())

    def ceks(self) -> list[ColumnEncryptionKey]:
        with self._latch:
            return list(self._ceks.values())

    # -- adversary hooks (the system tables live on the host's disk) -------

    def snapshot_ceks(self) -> dict[str, ColumnEncryptionKey]:
        """Copy the CEK system table — the adversary taking a backup."""
        with self._latch:
            return dict(self._ceks)

    def restore_ceks(self, ceks: dict[str, ColumnEncryptionKey]) -> None:
        """Swap old CEK metadata back in — a pre-rotation backup restore.

        The encrypted key values are ciphertext under CMKs, so the stale
        versions still verify; only a freshness anchor over the durable
        state that *references* them can tell they are old."""
        with self._latch:
            self._ceks = dict(ceks)

    def cek_enclave_enabled(self, cek_name: str) -> bool:
        """A CEK is enclave-enabled iff (some of) its CMK(s) allow it.

        During a CMK rotation a CEK may be under two CMKs; it is treated
        as enclave-enabled only if *all* its CMKs permit enclave use — the
        conservative reading of the client's authorization.
        """
        cek = self.cek(cek_name)
        return all(
            self.cmk(cmk_name).allow_enclave_computations for cmk_name in cek.cmk_names()
        )

    def encryption_info(
        self, cek_name: str, scheme: EncryptionScheme, algorithm: str = ALGORITHM_NAME
    ) -> EncryptionInfo:
        """Build a column's EncryptionInfo, deriving the enclave flag."""
        if algorithm != ALGORITHM_NAME:
            raise SqlError(f"unsupported cell encryption algorithm {algorithm!r}")
        self.cek(cek_name)  # existence check
        return EncryptionInfo(
            scheme=scheme,
            cek_name=cek_name,
            enclave_enabled=self.cek_enclave_enabled(cek_name),
        )


def plain_column(name: str, base: str, length: int | None = None, nullable: bool = True) -> ColumnSchema:
    """Convenience constructor for an unencrypted column."""
    return ColumnSchema(name=name, column_type=ColumnType(SqlType(base, length)), nullable=nullable)
