"""The catalog: table schemas plus AE key metadata (Section 4.3).

The paper stores key metadata in new system tables so "the database is the
single source of truth" — CMK and CEK metadata replicate and back up with
the data. We mirror that: :class:`Catalog` owns the CMK/CEK system tables
alongside table schemas, and derives each column's ``enclave_enabled`` flag
from its CEK's CMK, exactly the chain the DDL in Figure 1 establishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.aead import ALGORITHM_NAME, EncryptionScheme
from repro.errors import BindError, SqlError
from repro.keys.cek import ColumnEncryptionKey
from repro.keys.cmk import ColumnMasterKey
from repro.obs.latchprof import TimedLatch
from repro.sqlengine.types import ColumnType, EncryptionInfo, SqlType


@dataclass
class ColumnSchema:
    """One column: name, full type (with encryption attribute), nullability."""

    name: str
    column_type: ColumnType
    nullable: bool = True

    @property
    def is_encrypted(self) -> bool:
        return self.column_type.is_encrypted


@dataclass
class IndexSchema:
    """Metadata for one index."""

    name: str
    table_name: str
    column_names: tuple[str, ...]
    unique: bool = False
    clustered: bool = False
    # Encrypted indexes can be invalidated during recovery (Section 4.5).
    valid: bool = True

    @property
    def key_column(self) -> str:
        return self.column_names[0]


@dataclass
class TableSchema:
    """One table: ordered columns, primary key, index list."""

    name: str
    columns: list[ColumnSchema]
    primary_key: tuple[str, ...] = ()
    indexes: dict[str, IndexSchema] = field(default_factory=dict)

    def column(self, name: str) -> ColumnSchema:
        for col in self.columns:
            if col.name.lower() == name.lower():
                return col
        raise BindError(f"table {self.name!r} has no column {name!r}")

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name.lower() == name.lower():
                return i
        raise BindError(f"table {self.name!r} has no column {name!r}")

    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    @property
    def arity(self) -> int:
        return len(self.columns)


@dataclass
class ColumnRotationState:
    """Mid-rotation metadata for one column (the mixed-version window).

    While a rotation is active, rows at or below ``watermark`` (heap scan
    order position) are under ``new_cek``; rows above are under
    ``old_cek``. The driver cannot see scan positions, so it resolves the
    version per cell by MAC probe; the engine uses the watermark only to
    resume after a crash.
    """

    rotation_id: str
    table: str
    column: str
    old_cek: str
    new_cek: str
    watermark: int = -1   # last re-encrypted batch's final row ordinal
    #: "rotate" re-encrypts old_cek → new_cek; "encrypt" is the initial
    #: encryption of a plaintext column (old_cek is empty).
    kind: str = "rotate"
    #: rows the lifecycle job has re-encrypted so far (progress telemetry)
    rows_rotated: int = 0


class Catalog:
    """All metadata: tables, indexes, and the CMK/CEK system tables."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}
        self._cmks: dict[str, ColumnMasterKey] = {}
        self._ceks: dict[str, ColumnEncryptionKey] = {}
        #: CEK name → version, bumped on each completed rotation. Version 1
        #: is implicit for keys never rotated (absent from the dict).
        self._cek_versions: dict[str, int] = {}
        #: rotation_id → in-flight column rotation (the mixed-version map)
        self._rotations: dict[str, ColumnRotationState] = {}
        # Concurrent sessions read the catalog on every bind; DDL mutates
        # it. One reentrant latch keeps lookups consistent with drops.
        self._latch = TimedLatch("repro.sqlengine.catalog.Catalog._latch")

    # -- tables ----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        with self._latch:
            key = schema.name.lower()
            if key in self._tables:
                raise SqlError(f"table {schema.name!r} already exists")
            self._tables[key] = schema

    def drop_table(self, name: str) -> None:
        with self._latch:
            self._require_table(name)
            del self._tables[name.lower()]

    def table(self, name: str) -> TableSchema:
        with self._latch:
            return self._require_table(name)

    def has_table(self, name: str) -> bool:
        with self._latch:
            return name.lower() in self._tables

    def tables(self) -> list[TableSchema]:
        with self._latch:
            return list(self._tables.values())

    def _require_table(self, name: str) -> TableSchema:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise BindError(f"unknown table {name!r}") from None

    # -- key metadata (the new system tables of Section 4.3) --------------------

    def create_cmk(self, cmk: ColumnMasterKey) -> None:
        with self._latch:
            if cmk.name in self._cmks:
                raise SqlError(f"column master key {cmk.name!r} already exists")
            self._cmks[cmk.name] = cmk

    def create_cek(self, cek: ColumnEncryptionKey) -> None:
        with self._latch:
            if cek.name in self._ceks:
                raise SqlError(f"column encryption key {cek.name!r} already exists")
            for cmk_name in cek.cmk_names():
                if cmk_name not in self._cmks:
                    raise BindError(f"CEK {cek.name!r} references unknown CMK {cmk_name!r}")
            self._ceks[cek.name] = cek

    def cmk(self, name: str) -> ColumnMasterKey:
        with self._latch:
            try:
                return self._cmks[name]
            except KeyError:
                raise BindError(f"unknown column master key {name!r}") from None

    def cek(self, name: str) -> ColumnEncryptionKey:
        with self._latch:
            try:
                return self._ceks[name]
            except KeyError:
                raise BindError(f"unknown column encryption key {name!r}") from None

    def cmks(self) -> list[ColumnMasterKey]:
        with self._latch:
            return list(self._cmks.values())

    def ceks(self) -> list[ColumnEncryptionKey]:
        with self._latch:
            return list(self._ceks.values())

    def alter_cek_add_value(self, cek_name: str, value) -> None:
        """ALTER COLUMN ENCRYPTION KEY ... ADD VALUE: start a CMK rotation."""
        with self._latch:
            cek = self.cek(cek_name)
            if value.column_master_key_name not in self._cmks:
                raise BindError(
                    f"CEK {cek_name!r} new value references unknown CMK "
                    f"{value.column_master_key_name!r}"
                )
            cek.add_encrypted_value(value)

    def alter_cek_drop_value(self, cek_name: str, cmk_name: str) -> None:
        """ALTER COLUMN ENCRYPTION KEY ... DROP VALUE: finish a CMK rotation."""
        with self._latch:
            self.cek(cek_name).drop_encrypted_value(cmk_name)

    # -- CEK versions and in-flight column rotations ------------------------

    def cek_version(self, cek_name: str) -> int:
        """The CEK's rotation version; 1 for keys never rotated."""
        with self._latch:
            self.cek(cek_name)  # existence check
            return self._cek_versions.get(cek_name, 1)

    def cek_versions(self) -> dict[str, int]:
        """All non-default CEK versions (for anchor registration)."""
        with self._latch:
            return dict(self._cek_versions)

    def bump_cek_version(self, cek_name: str) -> int:
        """Record a completed rotation onto ``cek_name``; returns the new version."""
        with self._latch:
            self.cek(cek_name)
            version = self._cek_versions.get(cek_name, 1) + 1
            self._cek_versions[cek_name] = version
            return version

    def set_column_encryption(
        self, table: str, column: str, encryption: EncryptionInfo | None
    ) -> None:
        """Repoint a column's encryption attribute (DDL / rotation flip).

        Idempotent; used by ALTER COLUMN and by lifecycle jobs flipping a
        column to its new CEK at ROTATE_BEGIN (and by recovery replaying
        that flip)."""
        with self._latch:
            schema = self.table(table)
            col = schema.column(column)
            col.column_type = ColumnType(col.column_type.sql_type, encryption)

    def ensure_cek_version(self, cek_name: str, version: int) -> int:
        """Raise the CEK's version to at least ``version`` (recovery replay).

        Never lowers it: the durable ROTATE_END carries the version that
        was bumped before the anchor witnessed it, so applying the maximum
        keeps the catalog at-or-ahead of the anchor."""
        with self._latch:
            current = self._cek_versions.get(cek_name, 1)
            if version > current:
                self._cek_versions[cek_name] = version
                current = version
            return current

    def begin_column_rotation(self, state: ColumnRotationState) -> None:
        with self._latch:
            if state.rotation_id in self._rotations:
                raise SqlError(f"rotation {state.rotation_id!r} already active")
            for other in self._rotations.values():
                if (
                    other.table.lower() == state.table.lower()
                    and other.column.lower() == state.column.lower()
                ):
                    raise SqlError(
                        f"column {state.table}.{state.column} already under rotation"
                    )
            if state.old_cek:
                self.cek(state.old_cek)
            self.cek(state.new_cek)
            self._rotations[state.rotation_id] = state

    def rotation(self, rotation_id: str) -> ColumnRotationState:
        with self._latch:
            try:
                return self._rotations[rotation_id]
            except KeyError:
                raise BindError(f"unknown rotation {rotation_id!r}") from None

    def active_rotations(self) -> list[ColumnRotationState]:
        with self._latch:
            return list(self._rotations.values())

    def column_rotation(self, table: str, column: str) -> ColumnRotationState | None:
        """The in-flight rotation covering a column, if any."""
        with self._latch:
            for state in self._rotations.values():
                if (
                    state.table.lower() == table.lower()
                    and state.column.lower() == column.lower()
                ):
                    return state
            return None

    def advance_rotation(self, rotation_id: str, watermark: int) -> None:
        with self._latch:
            self.rotation(rotation_id).watermark = watermark

    def finish_column_rotation(self, rotation_id: str) -> None:
        with self._latch:
            state = self._rotations.pop(rotation_id, None)
            if state is None:
                raise BindError(f"unknown rotation {rotation_id!r}")

    # -- adversary hooks (the system tables live on the host's disk) -------

    def snapshot_ceks(self) -> dict[str, ColumnEncryptionKey]:
        """Copy the CEK system table — the adversary taking a backup."""
        with self._latch:
            return dict(self._ceks)

    def restore_ceks(self, ceks: dict[str, ColumnEncryptionKey]) -> None:
        """Swap old CEK metadata back in — a pre-rotation backup restore.

        The encrypted key values are ciphertext under CMKs, so the stale
        versions still verify; only a freshness anchor over the durable
        state that *references* them can tell they are old."""
        with self._latch:
            self._ceks = dict(ceks)

    def snapshot_cek_versions(self) -> dict[str, int]:
        """Copy the CEK version table — part of the adversary's backup."""
        with self._latch:
            return dict(self._cek_versions)

    def restore_cek_versions(self, versions: dict[str, int]) -> None:
        """Swap pre-rotation CEK versions back in (rollback attack)."""
        with self._latch:
            self._cek_versions = dict(versions)

    def snapshot_column_encryption(
        self,
    ) -> dict[tuple[str, str], EncryptionInfo | None]:
        """Copy every column's encryption attribute — the schema part of
        the adversary's backup (a rotation's metadata flip lives here)."""
        with self._latch:
            return {
                (schema.name.lower(), col.name.lower()): col.column_type.encryption
                for schema in self._tables.values()
                for col in schema.columns
            }

    def restore_column_encryption(
        self, attributes: dict[tuple[str, str], EncryptionInfo | None]
    ) -> None:
        """Swap pre-rotation column attributes back in. Columns of tables
        created after the backup keep their current attribute (the data
        pages backing them are gone after the disk restore anyway)."""
        with self._latch:
            for schema in self._tables.values():
                for col in schema.columns:
                    key = (schema.name.lower(), col.name.lower())
                    if key in attributes:
                        col.column_type = ColumnType(
                            col.column_type.sql_type, attributes[key]
                        )

    def cek_enclave_enabled(self, cek_name: str) -> bool:
        """A CEK is enclave-enabled iff (some of) its CMK(s) allow it.

        During a CMK rotation a CEK may be under two CMKs; it is treated
        as enclave-enabled only if *all* its CMKs permit enclave use — the
        conservative reading of the client's authorization.
        """
        cek = self.cek(cek_name)
        return all(
            self.cmk(cmk_name).allow_enclave_computations for cmk_name in cek.cmk_names()
        )

    def encryption_info(
        self, cek_name: str, scheme: EncryptionScheme, algorithm: str = ALGORITHM_NAME
    ) -> EncryptionInfo:
        """Build a column's EncryptionInfo, deriving the enclave flag."""
        if algorithm != ALGORITHM_NAME:
            raise SqlError(f"unsupported cell encryption algorithm {algorithm!r}")
        self.cek(cek_name)  # existence check
        return EncryptionInfo(
            scheme=scheme,
            cek_name=cek_name,
            enclave_enabled=self.cek_enclave_enabled(cek_name),
        )


def plain_column(name: str, base: str, length: int | None = None, nullable: bool = True) -> ColumnSchema:
    """Convenience constructor for an unencrypted column."""
    return ColumnSchema(name=name, column_type=ColumnType(SqlType(base, length)), nullable=nullable)
