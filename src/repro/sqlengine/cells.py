"""Runtime representation of encrypted cells.

An encrypted cell travels through the engine as an opaque
:class:`Ciphertext` — storage, the buffer pool, the log, indexes, and the
wire all move it without interpreting it, which is precisely the
architectural observation the paper builds on (most of a database engine
moves values; only expression services computes on them).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Ciphertext:
    """An AEAD_AES_256_CBC_HMAC_SHA_256 cell envelope, opaque to the host."""

    envelope: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.envelope, bytes):
            object.__setattr__(self, "envelope", bytes(self.envelope))

    def __len__(self) -> int:
        return len(self.envelope)

    def __repr__(self) -> str:
        return f"Ciphertext(0x{self.envelope[:6].hex()}…, {len(self.envelope)}B)"


CellValue = object  # SqlScalar | Ciphertext | None — runtime cell contents.
