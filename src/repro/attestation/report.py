"""Enclave reports — the measurement the hypervisor signs (Section 4.2).

A report contains the attributes the paper lists: the *author ID* (the
signing key that signed the enclave binary), the hash of the enclave
binary, version numbers of the enclave and host hypervisor, and a hash of
the enclave's RSA public key generated at load.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, verify_signature


@dataclass(frozen=True)
class EnclaveReport:
    """The measurement of a loaded enclave."""

    author_id: bytes                 # fingerprint of the binary-signing key
    binary_hash: bytes               # SHA-256 of the enclave "binary"
    enclave_version: int
    hypervisor_version: int
    enclave_public_key_hash: bytes   # fingerprint of the enclave's RSA key

    def serialize(self) -> bytes:
        return (
            b"ENCLAVE-REPORT\x00"
            + struct.pack(">II", self.enclave_version, self.hypervisor_version)
            + self.author_id
            + self.binary_hash
            + self.enclave_public_key_hash
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "EnclaveReport":
        prefix = b"ENCLAVE-REPORT\x00"
        body = data[len(prefix) :]
        enclave_version, hypervisor_version = struct.unpack_from(">II", body, 0)
        offset = 8
        author_id = body[offset : offset + 32]
        binary_hash = body[offset + 32 : offset + 64]
        key_hash = body[offset + 64 : offset + 96]
        return cls(
            author_id=author_id,
            binary_hash=binary_hash,
            enclave_version=enclave_version,
            hypervisor_version=hypervisor_version,
            enclave_public_key_hash=key_hash,
        )


@dataclass(frozen=True)
class SignedReport:
    """An enclave report signed by the host (hypervisor) signing key."""

    report: EnclaveReport
    signature: bytes

    @classmethod
    def create(cls, report: EnclaveReport, host_signing_key: RsaKeyPair) -> "SignedReport":
        return cls(report=report, signature=host_signing_key.sign(report.serialize()))

    def verify(self, host_signing_public: RsaPublicKey) -> bool:
        return verify_signature(host_signing_public, self.report.serialize(), self.signature)
