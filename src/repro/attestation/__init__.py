"""Attestation: TPM measurements, HGS, enclave reports, chain of trust."""

from repro.attestation.hgs import AttestationPolicy, HealthCertificate, HostGuardianService
from repro.attestation.protocol import (
    AttestationInfo,
    server_attest,
    verify_attestation_and_derive_secret,
)
from repro.attestation.report import EnclaveReport, SignedReport
from repro.attestation.sgx import (
    SgxAttestationInfo,
    SgxAttestationService,
    SgxMachine,
    SgxPolicy,
    SgxQuote,
    server_attest_sgx,
    verify_sgx_attestation_and_derive_secret,
)
from repro.attestation.tpm import HostMachine, TcgLog, TcgLogEntry

__all__ = [
    "AttestationInfo",
    "AttestationPolicy",
    "EnclaveReport",
    "HealthCertificate",
    "HostGuardianService",
    "HostMachine",
    "SgxAttestationInfo",
    "SgxAttestationService",
    "SgxMachine",
    "SgxPolicy",
    "SgxQuote",
    "SignedReport",
    "TcgLog",
    "TcgLogEntry",
    "server_attest",
    "server_attest_sgx",
    "verify_attestation_and_derive_secret",
    "verify_sgx_attestation_and_derive_secret",
]
