"""A second enclave platform: Intel SGX-style attestation (simulated).

The paper: "We are also working on supporting Intel SGX enclaves" and "the
design of AE is not dependent on a specific TEE implementation allowing us
to transition to a more secure implementation if necessary" (Section 2.6).
This module demonstrates that claim concretely: the *enclave* is unchanged
(same CEK store, same Eval/compare surface, same sealed-package channel);
only the attestation root differs.

For SGX the root of trust is the CPU, not the hypervisor: the enclave's
measurement is signed by a CPU-held attestation key into a **quote**, and
a remote **attestation service** (modelled on Intel's IAS/DCAP) that knows
the genuine CPU keys verifies the quote and returns a signed verification
report. The client checks:

1. the verification report is signed by the attestation service;
2. the service verdict is OK (the quote came from a genuine CPU);
3. MRSIGNER (the enclave author) / MRENCLAVE and minimum ISV SVN satisfy
   the client's policy — the SGX analog of the VBS author-ID check;
4. the report data binds the enclave's RSA key and the DH exchange,
   exactly as the VBS path binds them through the enclave report.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.crypto.dh import DiffieHellman, public_key_bytes
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, verify_signature
from repro.errors import AttestationError

if TYPE_CHECKING:
    from repro.enclave.runtime import Enclave


@dataclass(frozen=True)
class SgxQuote:
    """An SGX quote: enclave measurement signed by the CPU's key.

    ``mr_enclave`` ↔ the enclave binary hash; ``mr_signer`` ↔ the author
    key fingerprint; ``isv_svn`` ↔ the enclave version; ``report_data`` is
    the 64-byte field enclaves use to bind protocol state into the quote.
    """

    mr_enclave: bytes
    mr_signer: bytes
    isv_svn: int
    report_data: bytes
    signature: bytes  # by the CPU attestation key

    def _message(self) -> bytes:
        return (
            b"SGX-QUOTE\x00"
            + self.mr_enclave
            + self.mr_signer
            + struct.pack(">I", self.isv_svn)
            + self.report_data
        )


@dataclass
class SgxMachine:
    """A machine with SGX: holds the CPU attestation key."""

    cpu_key: RsaKeyPair

    @classmethod
    def provision(cls) -> "SgxMachine":
        return cls(cpu_key=RsaKeyPair.generate(1024))

    def quote_enclave(self, enclave: "Enclave", report_data: bytes) -> SgxQuote:
        """The CPU measures and signs the loaded enclave."""
        report = enclave.measure()
        quote = SgxQuote(
            mr_enclave=report.binary_hash,
            mr_signer=report.author_id,
            isv_svn=report.enclave_version,
            report_data=report_data,
            signature=b"",
        )
        signature = self.cpu_key.sign(quote._message())
        return SgxQuote(
            mr_enclave=quote.mr_enclave,
            mr_signer=quote.mr_signer,
            isv_svn=quote.isv_svn,
            report_data=quote.report_data,
            signature=signature,
        )


@dataclass(frozen=True)
class VerificationReport:
    """The attestation service's signed verdict about a quote."""

    quote: SgxQuote
    ok: bool
    signature: bytes

    def _message(self) -> bytes:
        return b"SGX-AVR\x00" + self.quote._message() + (b"\x01" if self.ok else b"\x00")

    def verify(self, service_public: RsaPublicKey) -> bool:
        return verify_signature(service_public, self._message(), self.signature)


class SgxAttestationService:
    """The remote verification service (IAS/DCAP stand-in).

    Knows the attestation public keys of genuine CPUs; verifies quote
    signatures and issues signed verification reports.
    """

    def __init__(self) -> None:
        self._signing_key = RsaKeyPair.generate(1024)
        self._genuine_cpus: list[RsaPublicKey] = []
        self.verify_calls = 0

    @property
    def signing_public_key(self) -> RsaPublicKey:
        return self._signing_key.public

    def register_cpu(self, cpu_public: RsaPublicKey) -> None:
        """Provisioning step: mark a CPU's attestation key as genuine."""
        self._genuine_cpus.append(cpu_public)

    def verify_quote(self, quote: SgxQuote) -> VerificationReport:
        self.verify_calls += 1
        ok = any(
            verify_signature(cpu, quote._message(), quote.signature)
            for cpu in self._genuine_cpus
        )
        report = VerificationReport(quote=quote, ok=ok, signature=b"")
        signature = self._signing_key.sign(report._message())
        return VerificationReport(quote=quote, ok=ok, signature=signature)


@dataclass(frozen=True)
class SgxAttestationInfo:
    """What SQL Server returns to the driver on the SGX path."""

    verification_report: VerificationReport
    enclave_rsa_public: RsaPublicKey
    enclave_dh_public: int
    dh_signature: bytes
    session_id: int


@dataclass(frozen=True)
class SgxPolicy:
    """Client-side enclave health policy for SGX."""

    trusted_mr_signers: frozenset[bytes] = frozenset()
    trusted_mr_enclaves: frozenset[bytes] = frozenset()
    min_isv_svn: int = 0


def _report_data(enclave_rsa_public: RsaPublicKey, enclave_dh_public: int, client_dh_public: int) -> bytes:
    return hashlib.sha512(
        enclave_rsa_public.fingerprint()
        + public_key_bytes(enclave_dh_public)
        + public_key_bytes(client_dh_public)
    ).digest()


def server_attest_sgx(
    machine: SgxMachine,
    service: SgxAttestationService,
    enclave: "Enclave",
    client_dh_public: int,
) -> SgxAttestationInfo:
    """Server-side SGX attestation at query time.

    Note the symmetry with :func:`repro.attestation.protocol.server_attest`:
    the enclave session / DH exchange is identical; only the measurement's
    chain of trust (CPU quote + attestation service) differs.
    """
    session_id, enclave_dh_public, dh_signature = enclave.start_session(client_dh_public)
    report_data = _report_data(enclave.public_key, enclave_dh_public, client_dh_public)
    quote = machine.quote_enclave(enclave, report_data)
    verification = service.verify_quote(quote)
    return SgxAttestationInfo(
        verification_report=verification,
        enclave_rsa_public=enclave.public_key,
        enclave_dh_public=enclave_dh_public,
        dh_signature=dh_signature,
        session_id=session_id,
    )


def verify_sgx_attestation_and_derive_secret(
    info: SgxAttestationInfo,
    client_dh: DiffieHellman,
    service_public: RsaPublicKey,
    policy: SgxPolicy,
) -> bytes:
    """Client-side verification of the SGX chain; returns the shared secret."""
    report = info.verification_report
    if not report.verify(service_public):
        raise AttestationError("verification report is not signed by the attestation service")
    if not report.ok:
        raise AttestationError("attestation service rejected the quote (not a genuine CPU)")

    quote = report.quote
    signer_ok = quote.mr_signer in policy.trusted_mr_signers
    enclave_ok = quote.mr_enclave in policy.trusted_mr_enclaves
    if not (signer_ok or enclave_ok):
        raise AttestationError("enclave MRSIGNER/MRENCLAVE is not trusted by policy")
    if quote.isv_svn < policy.min_isv_svn:
        raise AttestationError(
            f"enclave ISV SVN {quote.isv_svn} is below the required minimum {policy.min_isv_svn}"
        )

    expected = _report_data(info.enclave_rsa_public, info.enclave_dh_public, client_dh.public_key)
    if quote.report_data != expected:
        raise AttestationError("quote report data does not bind this key exchange")

    message = (
        b"AE-DH-BINDING\x00"
        + public_key_bytes(info.enclave_dh_public)
        + public_key_bytes(client_dh.public_key)
    )
    if not verify_signature(info.enclave_rsa_public, message, info.dh_signature):
        raise AttestationError("enclave DH public key signature verification failed")

    return client_dh.shared_secret(info.enclave_dh_public)
