"""The end-to-end attestation + DH protocol (Section 4.2).

The flow, with SQL Server as the untrusted man-in-the-middle:

1. The client passes its DH public key with the
   ``sp_describe_parameter_encryption`` call.
2. SQL asks Windows to send the TCG log to HGS → *health certificate*
   (signed by the HGS key, embedding the host signing key).
3. SQL asks Windows to measure the enclave → *enclave report* (signed by
   the host signing key; contains author ID, binary hash, versions, and a
   hash of the enclave's RSA public key).
4. SQL ecalls the enclave with the client DH public key; the enclave
   returns its DH public key signed by its RSA key, and already holds the
   shared secret.
5. SQL returns (certificate, signed report, enclave RSA public key,
   signed enclave DH public key) to the client, which verifies the chain
   of trust and derives the shared secret.

The client-side checks 1–4 in the paper map to
:func:`verify_attestation_and_derive_secret` below, in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.attestation.hgs import AttestationPolicy, HealthCertificate, HostGuardianService
from repro.attestation.report import SignedReport
from repro.attestation.tpm import HostMachine
from repro.crypto.dh import DiffieHellman, public_key_bytes
from repro.crypto.rsa import RsaPublicKey, verify_signature
from repro.errors import AttestationError
from repro.faults.registry import fault_point, register_fault_site

register_fault_site(
    "attestation.verify",
    "client-side verification of the attestation chain of trust",
)

if TYPE_CHECKING:  # avoid a circular import: enclave.runtime uses our report
    from repro.enclave.runtime import Enclave


@dataclass(frozen=True)
class AttestationInfo:
    """What SQL Server returns to the driver (items 1–3 in Section 4.2)."""

    health_certificate: HealthCertificate
    signed_report: SignedReport
    enclave_rsa_public: RsaPublicKey
    enclave_dh_public: int
    dh_signature: bytes          # enclave RSA signature over both DH keys
    session_id: int              # the enclave session holding the secret


def server_attest(
    host: HostMachine,
    hgs: HostGuardianService,
    enclave: "Enclave",
    client_dh_public: int,
) -> AttestationInfo:
    """The server-side portion: gather certificate, report, and DH response.

    Run by (untrusted) SQL Server at query time on a signal from the
    client. Nothing here requires trusting SQL: every artifact is signed
    by a key SQL does not hold.
    """
    tcg_log = host.boot_and_measure()
    certificate = hgs.attest(tcg_log, host.host_signing_key.public)
    report = enclave.measure()
    signed_report = SignedReport.create(report, host.host_signing_key)
    session_id, enclave_dh_public, dh_signature = enclave.start_session(client_dh_public)
    return AttestationInfo(
        health_certificate=certificate,
        signed_report=signed_report,
        enclave_rsa_public=enclave.public_key,
        enclave_dh_public=enclave_dh_public,
        dh_signature=dh_signature,
        session_id=session_id,
    )


def verify_attestation_and_derive_secret(
    info: AttestationInfo,
    client_dh: DiffieHellman,
    hgs_public: RsaPublicKey,
    policy: AttestationPolicy,
) -> bytes:
    """Client-side chain-of-trust verification; returns the shared secret.

    Performs the paper's four checks in order and raises
    :class:`AttestationError` naming the failed link.
    """
    fault_point("attestation.verify")
    # (1) Health certificate is signed by the HGS signing key.
    if not info.health_certificate.verify(hgs_public):
        raise AttestationError("health certificate is not signed by the HGS signing key")

    # (2) Enclave report is signed by the host signing key from the cert.
    if not info.signed_report.verify(info.health_certificate.host_signing_public):
        raise AttestationError("enclave report is not signed by the attested host")

    # (3) The enclave is healthy: author ID (or explicitly trusted binary
    #     hash) and minimum version numbers.
    report = info.signed_report.report
    author_ok = report.author_id in policy.trusted_author_ids
    hash_ok = report.binary_hash in policy.extra_trusted_binary_hashes
    if not (author_ok or hash_ok):
        raise AttestationError("enclave binary was not signed by a trusted author")
    if report.enclave_version < policy.min_enclave_version:
        raise AttestationError(
            f"enclave version {report.enclave_version} is below the required "
            f"minimum {policy.min_enclave_version}"
        )
    if report.hypervisor_version < policy.min_hypervisor_version:
        raise AttestationError(
            f"hypervisor version {report.hypervisor_version} is below the "
            f"required minimum {policy.min_hypervisor_version}"
        )

    # (4) The enclave public key matches the hash in the report, and the
    #     enclave DH public key is signed by the enclave public key.
    if info.enclave_rsa_public.fingerprint() != report.enclave_public_key_hash:
        raise AttestationError("enclave RSA public key does not match the report")
    message = (
        b"AE-DH-BINDING\x00"
        + public_key_bytes(info.enclave_dh_public)
        + public_key_bytes(client_dh.public_key)
    )
    if not verify_signature(info.enclave_rsa_public, message, info.dh_signature):
        raise AttestationError("enclave DH public key signature verification failed")

    return client_dh.shared_secret(info.enclave_dh_public)
