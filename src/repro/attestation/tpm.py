"""TPM / boot-measurement simulation (Section 4.2).

HGS attests hosts by matching TPM measurements of the boot sequence (the
TCG log) against a whitelist. For VBS enclaves only the boot sequence up to
the hypervisor matters — the host kernel is untrusted. We simulate a host
machine whose boot produces a deterministic TCG log over its firmware,
bootloader, and hypervisor identities; tampering with any measured
component changes the log and breaks attestation, which is the behaviour
the tests pin down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.rsa import RsaKeyPair


@dataclass(frozen=True)
class TcgLogEntry:
    """One measured boot component."""

    component: str
    measurement: bytes  # SHA-256 of the component image

    @classmethod
    def measure(cls, component: str, image: bytes) -> "TcgLogEntry":
        return cls(component=component, measurement=hashlib.sha256(image).digest())


@dataclass(frozen=True)
class TcgLog:
    """The ordered boot measurement log a TPM accumulates.

    ``digest_until_hypervisor`` is what HGS whitelists for VBS: the chain
    of measurements ending at the hypervisor load, ignoring later (host
    kernel) entries — the paper is explicit that only the boot sequence
    until the hypervisor is of interest.
    """

    entries: tuple[TcgLogEntry, ...]

    def digest_until_hypervisor(self) -> bytes:
        h = hashlib.sha256()
        for entry in self.entries:
            h.update(entry.component.encode("utf-8"))
            h.update(entry.measurement)
            if entry.component == "hypervisor":
                break
        return h.digest()

    def full_digest(self) -> bytes:
        h = hashlib.sha256()
        for entry in self.entries:
            h.update(entry.component.encode("utf-8"))
            h.update(entry.measurement)
        return h.digest()


@dataclass
class HostMachine:
    """A simulated guarded host: boots, measures itself, holds a signing key.

    The ``host_signing_key`` is the hypervisor-held key that signs enclave
    reports; HGS embeds its public half in the health certificate, closing
    the chain HGS → host → enclave report.
    """

    firmware_image: bytes = b"uefi-firmware-v7"
    bootloader_image: bytes = b"winload-v11"
    hypervisor_image: bytes = b"hyper-v-v10"
    kernel_image: bytes = b"ntoskrnl-v10"
    host_signing_key: RsaKeyPair = field(default_factory=lambda: RsaKeyPair.generate(1024))

    def boot_and_measure(self) -> TcgLog:
        """Simulate a measured boot, producing the TCG log."""
        return TcgLog(
            entries=(
                TcgLogEntry.measure("firmware", self.firmware_image),
                TcgLogEntry.measure("bootloader", self.bootloader_image),
                TcgLogEntry.measure("hypervisor", self.hypervisor_image),
                TcgLogEntry.measure("kernel", self.kernel_image),
            )
        )
