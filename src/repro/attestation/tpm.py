"""TPM / boot-measurement simulation (Section 4.2).

HGS attests hosts by matching TPM measurements of the boot sequence (the
TCG log) against a whitelist. For VBS enclaves only the boot sequence up to
the hypervisor matters — the host kernel is untrusted. We simulate a host
machine whose boot produces a deterministic TCG log over its firmware,
bootloader, and hypervisor identities; tampering with any measured
component changes the log and breaks attestation, which is the behaviour
the tests pin down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.rsa import RsaKeyPair


@dataclass(frozen=True)
class TcgLogEntry:
    """One measured boot component."""

    component: str
    measurement: bytes  # SHA-256 of the component image

    @classmethod
    def measure(cls, component: str, image: bytes) -> "TcgLogEntry":
        return cls(component=component, measurement=hashlib.sha256(image).digest())


@dataclass(frozen=True)
class TcgLog:
    """The ordered boot measurement log a TPM accumulates.

    ``digest_until_hypervisor`` is what HGS whitelists for VBS: the chain
    of measurements ending at the hypervisor load, ignoring later (host
    kernel) entries — the paper is explicit that only the boot sequence
    until the hypervisor is of interest.
    """

    entries: tuple[TcgLogEntry, ...]

    def digest_until_hypervisor(self) -> bytes:
        h = hashlib.sha256()
        for entry in self.entries:
            h.update(entry.component.encode("utf-8"))
            h.update(entry.measurement)
            if entry.component == "hypervisor":
                break
        return h.digest()

    def full_digest(self) -> bytes:
        h = hashlib.sha256()
        for entry in self.entries:
            h.update(entry.component.encode("utf-8"))
            h.update(entry.measurement)
        return h.digest()


@dataclass
class HostMachine:
    """A simulated guarded host: boots, measures itself, holds a signing key.

    The ``host_signing_key`` is the hypervisor-held key that signs enclave
    reports; HGS embeds its public half in the health certificate, closing
    the chain HGS → host → enclave report.
    """

    firmware_image: bytes = b"uefi-firmware-v7"
    bootloader_image: bytes = b"winload-v11"
    hypervisor_image: bytes = b"hyper-v-v10"
    kernel_image: bytes = b"ntoskrnl-v10"
    host_signing_key: RsaKeyPair = field(default_factory=lambda: RsaKeyPair.generate(1024))

    def boot_and_measure(self) -> TcgLog:
        """Simulate a measured boot, producing the TCG log."""
        return TcgLog(
            entries=(
                TcgLogEntry.measure("firmware", self.firmware_image),
                TcgLogEntry.measure("bootloader", self.bootloader_image),
                TcgLogEntry.measure("hypervisor", self.hypervisor_image),
                TcgLogEntry.measure("kernel", self.kernel_image),
            )
        )


class TpmNvAnchor:
    """A freshness anchor rooted in a TPM NV monotonic slot.

    Enclave-less deployments (DET-only columns need no enclave) still
    face the rollback adversary: the disk and WAL can be restored from a
    stale backup without breaking a single AEAD tag. This backend holds
    the same :class:`~repro.enclave.anchor.AnchorState` a VBS enclave
    would, but models it as TPM non-volatile storage — writable only
    through the (monotonic) anchor protocol, surviving host restarts,
    and outside the adversary's disk-restore reach. It exposes the
    ``anchor_*`` protocol names that
    :class:`~repro.sqlengine.storage.freshness.FreshnessAnchor` expects,
    so the two trust roots are interchangeable.

    The attestation package sits *inside* the trust boundary (it is not
    a host package for the trust-boundary analyzer), so importing the
    enclave-side anchor machinery here is sanctioned.
    """

    def __init__(self) -> None:
        from repro.enclave.anchor import AnchorState

        self._nv = AnchorState()

    @property
    def epoch(self) -> int:
        return self._nv.epoch

    def anchor_attach(
        self, pages, chain_lsn, chain_digest, base_lsn, base_digest, cek_versions=None
    ):
        return self._nv.attach(
            pages, chain_lsn, chain_digest, base_lsn, base_digest, cek_versions
        )

    def anchor_advance(
        self,
        chain_lsn=None,
        chain_digest=None,
        page_id=None,
        page_digest=None,
    ):
        if page_id is not None:
            self._nv.advance_page(page_id, page_digest)
        if chain_lsn is not None:
            self._nv.advance_wal(chain_lsn, chain_digest)

    def anchor_confirm(self, page_id):
        self._nv.confirm_page(page_id)

    def anchor_cek_version(self, cek_name, version):
        return self._nv.advance_cek_version(cek_name, version)

    def anchor_verify(
        self,
        base_lsn,
        base_digest,
        record_blobs,
        page_digests,
        torn_page_ids,
        cek_versions=None,
    ):
        return self._nv.verify(
            base_lsn, base_digest, record_blobs, page_digests, torn_page_ids, cek_versions
        )

    def anchor_truncate(self, base_lsn, base_digest):
        return self._nv.seal_base(base_lsn, base_digest)

    def anchor_status(self):
        return self._nv.status()
