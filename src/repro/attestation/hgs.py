"""The Host Guardian Service (HGS) simulation (Section 4.2).

HGS holds a whitelist of registered TCG-log measurements. A host submits
its current TCG log; on a whitelist match HGS returns a *health
certificate* — signed with the HGS signing key — embedding the host's
(hypervisor-held) signing key. Clients fetch the HGS signing public key
out of band ("all HGS APIs are exposed using http(s)").
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass

from repro.attestation.tpm import TcgLog
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, verify_signature
from repro.errors import AttestationError


@dataclass(frozen=True)
class HealthCertificate:
    """An HGS-issued certificate vouching for a guarded host."""

    host_signing_public: RsaPublicKey
    issued_at: float
    signature: bytes

    def _message(self) -> bytes:
        return (
            b"HGS-HEALTH-CERT\x00"
            + self.host_signing_public.to_bytes()
            + struct.pack(">d", self.issued_at)
        )

    def verify(self, hgs_public: RsaPublicKey) -> bool:
        return verify_signature(hgs_public, self._message(), self.signature)


class HostGuardianService:
    """The attestation service: whitelist registration and attestation."""

    def __init__(self) -> None:
        self._signing_key = RsaKeyPair.generate(1024)
        self._whitelist: set[bytes] = set()
        self.attest_calls = 0

    # -- the "http(s)" API surface --------------------------------------------

    @property
    def signing_public_key(self) -> RsaPublicKey:
        """What a client obtains by querying HGS over http(s)."""
        return self._signing_key.public

    def register_host(self, tcg_log: TcgLog) -> None:
        """Offline step: whitelist a host's boot measurement."""
        self._whitelist.add(tcg_log.digest_until_hypervisor())

    def unregister_host(self, tcg_log: TcgLog) -> None:
        self._whitelist.discard(tcg_log.digest_until_hypervisor())

    def attest(self, tcg_log: TcgLog, host_signing_public: RsaPublicKey) -> HealthCertificate:
        """Attest a host: whitelist lookup → signed health certificate.

        Raises :class:`AttestationError` if the measurement (up to the
        hypervisor — VBS trusts nothing later in the boot) is unknown.
        """
        self.attest_calls += 1
        digest = tcg_log.digest_until_hypervisor()
        if digest not in self._whitelist:
            raise AttestationError(
                "host TCG log does not match any whitelisted measurement"
            )
        issued_at = time.time()
        cert = HealthCertificate(
            host_signing_public=host_signing_public,
            issued_at=issued_at,
            signature=b"",
        )
        signature = self._signing_key.sign(cert._message())
        return HealthCertificate(
            host_signing_public=host_signing_public,
            issued_at=issued_at,
            signature=signature,
        )


@dataclass
class AttestationPolicy:
    """Client-side enclave health policy (Section 4.2, check 3).

    The client checks the *author ID* (the specially provisioned enclave
    signing key) rather than the binary hash — so benign code changes do
    not break clients — plus minimum version numbers, which is how a
    security update to the enclave is enforced from the client side.
    """

    trusted_author_ids: frozenset[bytes] = frozenset()
    min_enclave_version: int = 0
    min_hypervisor_version: int = 0
    extra_trusted_binary_hashes: frozenset[bytes] = frozenset()
