"""Findings: what a rule reports, and how reports are keyed for baselining.

A finding's *fingerprint* deliberately excludes the line number: baselined
findings must survive unrelated edits shifting code up or down, and must
*expire* (become stale baseline entries) when the underlying code goes
away — both behaviours hang off the (rule, path, symbol, key) quadruple.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str      # rule family id, e.g. "trust-boundary"
    path: str      # posix path relative to the analysis root
    line: int
    symbol: str    # enclosing qualname ("Class.method") or "<module>"
    key: str       # stable slug identifying the violation kind + subject
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline mechanism."""
        return f"{self.rule}|{self.path}|{self.symbol}|{self.key}"

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
