"""Trust-boundary static analysis (lint-time enforcement of the paper's
isolation argument).

The reproduction's security story rests on invariants that, until this
package existed, were held only by convention: the host never touches
enclave internals, plaintext never escapes host-side, locks nest in one
declared order, and every fault site / metric name is a registered,
tested, well-formed contract. ``python -m repro.analysis --strict`` checks
all of it on every commit.

Layout:

* :mod:`~repro.analysis.model` — one AST pass per module, shared records;
* :mod:`~repro.analysis.rules` — the four rule families;
* :mod:`~repro.analysis.engine` — run rules, dedup, apply baseline;
* :mod:`~repro.analysis.baseline` — grandfathered findings, a ratchet;
* :mod:`~repro.analysis.cli` — the ``python -m repro.analysis`` command;
* :mod:`~repro.analysis.dynamic_metrics` — the runtime half of the old
  ``scripts/check_metrics.py`` (boots the stack, validates the registry).

See ``docs/ANALYSIS.md`` for the trust-boundary model and how to add a
rule.
"""

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.config import AnalysisConfig, LockOrderConfig, TaintConfig, default_config
from repro.analysis.engine import AnalysisEngine, Report
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel

__all__ = [
    "AnalysisConfig",
    "AnalysisEngine",
    "Finding",
    "LockOrderConfig",
    "ProjectModel",
    "Report",
    "TaintConfig",
    "apply_baseline",
    "default_config",
    "load_baseline",
]
