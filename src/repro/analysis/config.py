"""Analysis configuration: which packages play which trust role, the
declared lock order, taint sources/sinks, and where the baseline lives.

``default_config()`` returns the configuration for *this* repository —
host packages, the sanctioned ecall surface imported from
:data:`repro.enclave.ECALL_SURFACE` (one declaration, consumed by runtime
and analyzer alike), and the declared lock order. Tests build bespoke
configs pointing at fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path


@dataclass(frozen=True)
class LockOrderConfig:
    """The declared nested-acquisition order, outermost first.

    Each entry is an ``fnmatch`` pattern over fully-qualified lock ids
    (``module.Class.attr``). Acquiring a lock that matches an *earlier*
    pattern while holding one that matches a *later* pattern is an
    inversion. Locks matching the same pattern may nest freely (cycle
    detection still applies).
    """

    order: tuple[str, ...] = ()
    #: receiver-name → "module.Class" hints used to attribute a foreign
    #: lock (``with self.sqlos.state_lock``) or a held call
    #: (``self._wal.flush()``) to its owning class.
    receiver_aliases: dict = field(default_factory=dict)
    #: method names excluded from *name-based* callee resolution because
    #: they collide with builtin container methods (``dict.get`` is not
    #: ``TransactionManager.get``); alias-resolved calls are unaffected.
    fallback_ignore: tuple[str, ...] = (
        "acquire", "add", "append", "clear", "copy", "count", "discard",
        "extend", "get", "index", "insert", "items", "join", "keys",
        "notify", "notify_all", "pop", "popitem", "put", "release",
        "remove", "set", "setdefault", "sort", "update", "values", "wait",
        "write",
    )


@dataclass(frozen=True)
class TaintConfig:
    """Conservative plaintext-taint dataflow parameters."""

    #: callee final-name producing plaintext from ciphertext
    sources: tuple[str, ...] = (
        "decrypt", "decrypt_cell", "decrypt_for_ddl", "open_package",
    )
    #: calls that pass taint from arguments to their result
    propagators: tuple[str, ...] = (
        "deserialize_value", "str", "repr", "format", "bytes",
    )
    #: callee final-names that leak whatever reaches their arguments
    log_sinks: tuple[str, ...] = (
        "print", "log", "debug", "info", "warning", "error", "exception",
    )
    metric_sinks: tuple[str, ...] = ("inc", "set", "observe")
    trace_sinks: tuple[str, ...] = ("span", "ecall_span")
    #: False pins the PR 4 per-function behaviour: calls are never
    #: resolved, so taint dies at every function boundary.
    interprocedural: bool = True
    #: wire egress sinks (everything feeding the frame codec/socket)
    wire_sinks: tuple[str, ...] = (
        "send_frame", "send_message", "encode_message", "encode_frame",
        "encode_value",
    )
    #: error-marshalling sinks (ErrorReply payloads cross in clear)
    error_reply_names: tuple[str, ...] = ("ErrorReply", "error_reply_for")
    #: final-names that cleanse even when the callee is resolved —
    #: re-encryption is the sanctioned way plaintext leaves a computation
    sanitizers: tuple[str, ...] = (
        "encrypt", "encrypt_cell", "encrypt_value", "seal", "seal_package",
    )
    #: container-packing methods: ``x.append(tainted)`` taints ``x``
    packing_methods: tuple[str, ...] = ("append", "add", "extend", "insert")
    #: packages whose functions get no taint signature (summary-opaque):
    #: the crypto layer is the sanctioned boundary — its internals must
    #: not propagate plaintext signatures outward
    opaque_packages: tuple[str, ...] = ()
    #: fids ("module:Qual.name") whose *return* signature is suppressed:
    #: sanctioned plaintext producers gated by a runtime context the
    #: analyzer cannot see (their own baselined findings still report)
    boundary_functions: tuple[str, ...] = ()


@dataclass(frozen=True)
class ProtocolConfig:
    """Protocol-typestate parameters (all empty → the rule is inert).

    ``handler_modules`` are the server-side dispatchers; every opcode's
    message class must be isinstance-checked or constructed in one of
    them. ``engine_modules`` are where 2PC state transitions live;
    functions named in ``recovery_functions`` replay WAL records instead
    of writing them and are exempt from the write-ahead ordering check.
    """

    handler_modules: tuple[str, ...] = ()
    messages_module: str = ""
    errors_module: str = ""
    error_base: str = "ReproError"
    engine_modules: tuple[str, ...] = ()
    recovery_functions: tuple[str, ...] = ("recover",)


@dataclass(frozen=True)
class AnalysisConfig:
    root: Path                       # directory containing the package(s)
    packages: tuple[str, ...] = ("repro",)
    #: untrusted host packages: may not reach enclave internals
    host_packages: tuple[str, ...] = ()
    #: packages subject to the plaintext-taint rule (host minus the
    #: trusted client, which legitimately decrypts result sets)
    taint_packages: tuple[str, ...] = ()
    #: the enclave package (its submodules are enclave-internal)
    enclave_package: str = "repro.enclave"
    #: packages exempt from *all* rules (the enclave itself is exempt from
    #: host-side rules by construction; no need to list it here)
    exempt_packages: tuple[str, ...] = ()
    #: receiver final-names treated as "this is the enclave object"
    enclave_receivers: tuple[str, ...] = ("enclave", "_enclave")
    #: receiver final-names treated as "this is the call gateway"
    gateway_receivers: tuple[str, ...] = ("gateway", "_gateway", "enclave_gateway")
    #: receiver final-names treated as "this is a StackMachine"
    vm_receivers: tuple[str, ...] = ("vm", "_vm", "stack_machine", "machine")
    #: the sanctioned surface (EcallSurface); None → import the real one
    surface: object = None
    lock_order: LockOrderConfig = field(default_factory=LockOrderConfig)
    taint: TaintConfig = field(default_factory=TaintConfig)
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    #: modules exempt from the latch exception-safety rule (the lock
    #: implementations themselves: their acquire/release *are* the lock)
    latch_exempt: tuple[str, ...] = ()
    #: where fault_point()/register_fault_site() literals are collected;
    #: packages exempt from the literal-site requirement (the registry
    #: implementation itself passes names through variables)
    consistency_exempt: tuple[str, ...] = ()
    #: registered flight-recorder event kinds; ``record_event("…")``
    #: literals must name one of these (empty tuple disables the check)
    event_kinds: tuple[str, ...] = ()
    #: packages whose wire-opcode literals (``OP = "…"`` class attributes
    #: and ``opcode_byte("…")`` calls) must appear in the opcode registry
    opcode_packages: tuple[str, ...] = ()
    #: the registered opcode names (empty tuple disables the check)
    opcode_names: tuple[str, ...] = ()
    #: directory scanned for fault-site test coverage (None disables)
    tests_root: Path | None = None
    baseline_path: Path | None = None


#: Declared lock order for this repository, outermost → innermost. The
#: client connection's state lock is outermost (the driver holds it
#: across whole server round-trips); the server session/plan locks and
#: the statement scheduler come next; the txn lock manager sits above
#: storage (it blocks); the catalog and index latches sit above the
#: enclave because comparators call into the gateway while held; the
#: enclave's own locks sit above storage because ecalls never call back
#: into the host; heap latches nest into the buffer-pool latch, which
#: nests into WAL/disk (the write-back path); the fault-registry and
#: observability locks (latch profiler, flight recorder, tracer, metrics)
#: are innermost leaves every layer may take while instrumented.
#: ``docs/CONCURRENCY.md`` documents this hierarchy — keep them in sync.
DEFAULT_LOCK_ORDER = (
    "repro.client.driver.Connection.*",
    "repro.client.caches.*",
    # The wire stub's control-channel lock is held across a whole remote
    # round trip (like the driver's state lock above it); the router and
    # wire-server locks guard connection bookkeeping and the 2PC decision
    # log and never nest into engine latches — the serving thread releases
    # them before dispatching into the shard's SqlServer.
    "repro.net.remote.RemoteServer.*",
    "repro.net.router.*",
    "repro.net.wireserver.WireServer.*",
    "repro.sqlengine.server.SqlServer.*",
    "repro.sqlengine.scheduler.StatementScheduler.*",
    "repro.sqlengine.txn.locks.LockManager.*",
    "repro.sqlengine.txn.transaction.*",
    "repro.sqlengine.catalog.Catalog.*",
    "repro.sqlengine.index.btree.BPlusTree.*",
    "repro.enclave.runtime.Enclave.*",
    "repro.enclave.sqlos.SqlOs.*",
    "repro.sqlengine.storage.heap.HeapFile.*",
    "repro.sqlengine.storage.bufferpool.*",
    "repro.sqlengine.storage.wal.*",
    "repro.sqlengine.storage.disk.*",
    # The freshness anchor's latch is deliberately *below* all storage
    # latches: advances run under the pool latch (write-back) and inside
    # the WAL flush path, and the anchor never calls back into storage.
    "repro.enclave.anchor.*",
    "repro.keys.providers.*",
    "repro.faults.registry.*",
    "repro.obs.latchprof.*",
    "repro.obs.leakage.*",
    "repro.obs.transition_cost.*",
    "repro.obs.flightrec.*",
    "repro.obs.tracing.*",
    "repro.obs.metrics.*",
)

DEFAULT_RECEIVER_ALIASES = {
    "sqlos": "repro.enclave.sqlos.SqlOs",
    "wal": "repro.sqlengine.storage.wal.WriteAheadLog",
    "_wal": "repro.sqlengine.storage.wal.WriteAheadLog",
    "disk": "repro.sqlengine.storage.disk.Disk",
    "_disk": "repro.sqlengine.storage.disk.Disk",
    "locks": "repro.sqlengine.txn.locks.LockManager",
    "enclave": "repro.enclave.runtime.Enclave",
    "_enclave": "repro.enclave.runtime.Enclave",
    "registry": "repro.obs.metrics.MetricsRegistry",
    "pool": "repro.sqlengine.storage.bufferpool.BufferPool",
    "_pool": "repro.sqlengine.storage.bufferpool.BufferPool",
    "scheduler": "repro.sqlengine.scheduler.StatementScheduler",
    "cek_cache": "repro.client.caches.CekCache",
}


def repo_root() -> Path:
    """The repository root, resolved from the installed package location."""
    import repro

    return Path(repro.__file__).resolve().parent.parent.parent


def default_config(
    root: Path | None = None,
    baseline_path: Path | None = None,
    tests_root: Path | None = None,
) -> AnalysisConfig:
    """The configuration for this repository's source tree."""
    from repro.enclave import ECALL_SURFACE
    from repro.net.opcodes import OPCODES
    from repro.obs.flightrec import EVENT_KINDS

    top = repo_root()
    if root is None:
        root = top / "src"
    root = Path(root)
    if baseline_path is None:
        candidate = top / "analysis-baseline.txt"
        baseline_path = candidate
    if tests_root is None:
        candidate = top / "tests"
        tests_root = candidate if candidate.is_dir() else None
    return AnalysisConfig(
        root=root,
        packages=("repro",),
        host_packages=(
            "repro.sqlengine",
            "repro.client",
            "repro.workloads",
            "repro.harness",
            "repro.tools",
            "repro.security",
            # The wire layer runs host-side (router, wire server, client
            # stub): it marshals ciphertext and sealed packages but must
            # never reach enclave internals.
            "repro.net",
        ),
        taint_packages=(
            "repro.sqlengine",
            "repro.workloads",
            "repro.harness",
            "repro.tools",
            "repro.net",
        ),
        enclave_package="repro.enclave",
        surface=ECALL_SURFACE,
        taint=TaintConfig(
            opaque_packages=("repro.crypto",),
        ),
        protocol=ProtocolConfig(
            handler_modules=("repro.net.wireserver", "repro.net.router"),
            messages_module="repro.net.messages",
            errors_module="repro.errors",
            engine_modules=("repro.sqlengine.engine",),
            recovery_functions=("recover",),
        ),
        latch_exempt=("repro.obs.latchprof",),
        lock_order=LockOrderConfig(
            order=DEFAULT_LOCK_ORDER,
            receiver_aliases=dict(DEFAULT_RECEIVER_ALIASES),
        ),
        consistency_exempt=("repro.faults", "repro.obs"),
        event_kinds=tuple(EVENT_KINDS),
        opcode_packages=("repro.net",),
        opcode_names=tuple(OPCODES),
        tests_root=tests_root,
        baseline_path=baseline_path,
    )


def with_root(config: AnalysisConfig, root: Path) -> AnalysisConfig:
    return replace(config, root=Path(root))
