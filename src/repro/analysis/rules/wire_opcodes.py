"""Rule family 5: wire-opcode registry consistency.

Opcodes are the wire protocol's stringly-typed contract: a message class
declares ``OP = "execute"`` and the codec resolves it through the opcode
registry (:data:`repro.net.opcodes.OPCODES`). A typo'd or unregistered
opcode literal fails only at runtime — on the first encode of that
message type — and a *dynamic* opcode name cannot be audited against the
append-only registry at all. Checks, over the configured wire packages:

* every ``OP = "…"`` class attribute names a registered opcode;
* every ``opcode_byte("…")`` literal names a registered opcode;
* ``OP`` assignments and ``opcode_byte`` calls with non-literal names
  are findings (the registry is append-only and auditable; the names
  referencing it must be too).

The registry module itself is exempt — it *defines* the names.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.model import CALL_MARK

_OPCODE_FNS = ("opcode_byte",)


class WireOpcodeRule:
    name = "wire-opcode"

    def run(self, model, config) -> list:
        findings: list[Finding] = []
        if not config.opcode_names or not config.opcode_packages:
            return findings
        registry = set(config.opcode_names)
        for modname, info in model.modules.items():
            if not model.in_packages(modname, config.opcode_packages):
                continue
            if modname.rsplit(".", 1)[-1] == "opcodes":
                continue  # the registry itself
            path = model.relpath(info)

            for call in info.calls:
                parts = tuple(p for p in call.parts if p != CALL_MARK)
                if not parts or parts[-1] not in _OPCODE_FNS:
                    continue
                literal = call.str_args[0] if call.str_args else None
                if literal is None:
                    # Dynamic names are fine when forwarding a class's own
                    # OP attribute (``opcode_byte(cls.OP)``): the OP
                    # literals themselves are checked below.
                    continue
                if literal not in registry:
                    findings.append(Finding(
                        rule=self.name, path=path, line=call.lineno,
                        symbol=call.scope,
                        key=f"unregistered-opcode:{literal}",
                        message=(
                            f"opcode_byte({literal!r}) names an opcode "
                            "missing from the registry in repro.net.opcodes"
                        ),
                    ))

            for node in ast.walk(info.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for stmt in node.body:
                    if not (
                        isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)
                        and stmt.targets[0].id == "OP"
                    ):
                        continue
                    value = stmt.value
                    if not (
                        isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                    ):
                        findings.append(Finding(
                            rule=self.name, path=path, line=stmt.lineno,
                            symbol=node.name,
                            key=f"dynamic-opcode:{node.name}",
                            message=(
                                f"{node.name}.OP is not a string literal; "
                                "wire opcodes must be auditable against "
                                "the registry"
                            ),
                        ))
                        continue
                    if value.value not in registry:
                        findings.append(Finding(
                            rule=self.name, path=path, line=stmt.lineno,
                            symbol=node.name,
                            key=f"unregistered-opcode:{value.value}",
                            message=(
                                f"{node.name}.OP = {value.value!r} names an "
                                "opcode missing from the registry in "
                                "repro.net.opcodes"
                            ),
                        ))
        return findings
