"""Rule family 3: lock-order invariants.

Extracts the nested-acquisition graph — which locks are taken while which
other locks are held — and fails on (a) acquisition edges inconsistent
with the declared order and (b) cycles in the graph.

Two edge extractors, both syntactic and deliberately conservative:

* **direct nesting** — ``with a: with b:`` inside one function adds the
  edge ``a → b``;
* **one-level call propagation** — a call made while holding a lock adds
  edges from the held lock to every lock *directly* acquired by the
  callee. The callee is resolved first through the configured
  receiver-alias table (``self._wal.flush()`` → ``WriteAheadLog.flush``);
  failing that, by method name against every project method that itself
  acquires a lock. Name-based fallback can collide with builtin method
  names (``list.append`` vs ``WriteAheadLog.append``), so self-edges from
  the fallback are suppressed; alias-resolved and directly nested
  self-edges still report (a non-reentrant lock re-entered is a real
  deadlock).

Lock identity is ``module.Class.attr`` (e.g.
``repro.sqlengine.storage.wal.WriteAheadLog._lock``); ranks come from the
declared-order fnmatch patterns in the config.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

from repro.analysis.findings import Finding
from repro.analysis.model import CALL_MARK


def _owning_class(scope: str, info) -> str | None:
    """The class a scope like ``Enclave.install_package`` belongs to."""
    for part in scope.split("."):
        if part in info.classes:
            return part
    return None


class LockOrderRule:
    name = "lock-order"

    def run(self, model, config) -> list:
        cfg = config.lock_order
        findings: list[Finding] = []

        # -- pass 1: identify every acquisition and its lock id ------------
        # lock id of an acquisition record, or None if unattributable
        def lock_id(parts, modname: str, scope: str, info) -> str | None:
            attr = parts[-1]
            receiver = parts[:-1]
            if receiver and receiver[-1] in cfg.receiver_aliases:
                return f"{cfg.receiver_aliases[receiver[-1]]}.{attr}"
            if receiver == ("self",) or not receiver:
                cls = _owning_class(scope, info)
                if cls is not None:
                    return f"{modname}.{cls}.{attr}"
                return f"{modname}.{attr}"
            return f"{modname}.{'.'.join(receiver)}.{attr}"

        # function qualname -> set of lock ids directly acquired in it
        direct_locks: dict[tuple[str, str], set] = {}
        # method name -> set of lock ids (for name-based call resolution)
        by_method_name: dict[str, set] = {}
        # alias class -> method name -> lock ids
        by_class_method: dict[str, dict] = {}
        # occurrences for reporting: lock id -> (path, line, scope)
        where: dict[str, tuple] = {}

        for modname, info in model.modules.items():
            if not model.in_packages(modname, config.packages):
                continue
            path = model.relpath(info)
            for acq in info.lock_acquisitions:
                lid = lock_id(acq.parts, modname, acq.scope, info)
                if lid is None:
                    continue
                where.setdefault(lid, (path, acq.lineno, acq.scope))
                direct_locks.setdefault((modname, acq.scope), set()).add(lid)
                method = acq.scope.split(".")[-1]
                if method != "<module>":
                    by_method_name.setdefault(method, set()).add(lid)
                    cls = _owning_class(acq.scope, info)
                    if cls is not None:
                        by_class_method.setdefault(f"{modname}.{cls}", {}) \
                            .setdefault(method, set()).add(lid)

        # -- pass 2: build the nested-acquisition edge set ------------------
        # edge (outer, inner) -> (path, line, scope, how)
        edges: dict[tuple, tuple] = {}

        def add_edge(outer: str, inner: str, site, how: str) -> None:
            if (outer, inner) not in edges:
                edges[(outer, inner)] = (*site, how)

        for modname, info in model.modules.items():
            if not model.in_packages(modname, config.packages):
                continue
            path = model.relpath(info)
            for acq in info.lock_acquisitions:
                if not acq.held:
                    continue
                inner = lock_id(acq.parts, modname, acq.scope, info)
                if inner is None:
                    continue
                for held_parts in acq.held:
                    outer = lock_id(held_parts, modname, acq.scope, info)
                    if outer is not None:
                        add_edge(outer, inner, (path, acq.lineno, acq.scope), "nested with")
            for call in info.held_calls:
                parts = tuple(p for p in call.parts if p != CALL_MARK)
                if not parts:
                    continue
                method = parts[-1]
                receiver = parts[:-1]
                callee_locks: set = set()
                alias_resolved = False
                if receiver and receiver[-1] in cfg.receiver_aliases:
                    cls = cfg.receiver_aliases[receiver[-1]]
                    callee_locks = by_class_method.get(cls, {}).get(method, set())
                    alias_resolved = True
                elif method in by_method_name and method not in cfg.fallback_ignore:
                    callee_locks = by_method_name[method]
                if not callee_locks:
                    continue
                for held_parts in call.held:
                    outer = lock_id(held_parts, modname, call.scope, info)
                    if outer is None:
                        continue
                    for inner in callee_locks:
                        if not alias_resolved and inner == outer:
                            continue  # name collision guard (list.append etc.)
                        add_edge(
                            outer, inner,
                            (path, call.lineno, call.scope),
                            f"call to {method}()",
                        )

        # -- pass 3: check edges against the declared order ----------------
        def rank(lid: str) -> int | None:
            for index, pattern in enumerate(cfg.order):
                if fnmatchcase(lid, pattern):
                    return index
            return None

        for (outer, inner), (path, line, scope, how) in sorted(edges.items()):
            outer_rank, inner_rank = rank(outer), rank(inner)
            if outer_rank is None or inner_rank is None:
                unranked = outer if outer_rank is None else inner
                findings.append(Finding(
                    rule=self.name, path=path, line=line, symbol=scope,
                    key=f"undeclared:{unranked}",
                    message=(
                        f"lock {unranked} participates in nesting "
                        f"({outer} -> {inner}, via {how}) but matches no "
                        "pattern in the declared lock order"
                    ),
                ))
                continue
            if outer_rank > inner_rank:
                findings.append(Finding(
                    rule=self.name, path=path, line=line, symbol=scope,
                    key=f"inversion:{outer}->{inner}",
                    message=(
                        f"lock-order inversion: {inner} (rank {inner_rank}) "
                        f"acquired while holding {outer} (rank {outer_rank}), "
                        f"via {how}; declared order says the opposite"
                    ),
                ))

        # -- pass 4: cycle detection over the whole graph -------------------
        graph: dict[str, set] = {}
        for outer, inner in edges:
            graph.setdefault(outer, set()).add(inner)
        for cycle in self._find_cycles(graph):
            head = cycle[0]
            path, line, scope, _how = edges[(cycle[0], cycle[1 % len(cycle)])] \
                if (cycle[0], cycle[1 % len(cycle)]) in edges else \
                (where.get(head, ("<unknown>", 0, "<module>")) + ("",))
            findings.append(Finding(
                rule=self.name, path=path, line=line, symbol=scope,
                key=f"cycle:{'->'.join(cycle)}",
                message=(
                    "cyclic lock acquisition: "
                    + " -> ".join(cycle + [cycle[0]])
                ),
            ))
        return findings

    @staticmethod
    def _find_cycles(graph: dict) -> list:
        """Elementary cycles via DFS; each reported once, rotated to start
        at the lexicographically smallest lock id."""
        seen_cycles: set = set()
        cycles: list = []
        visiting: list = []
        on_stack: set = set()
        done: set = set()

        def dfs(node: str) -> None:
            visiting.append(node)
            on_stack.add(node)
            for nxt in sorted(graph.get(node, ())):
                if nxt in on_stack:
                    start = visiting.index(nxt)
                    cycle = visiting[start:]
                    smallest = min(range(len(cycle)), key=lambda i: cycle[i])
                    rotated = tuple(cycle[smallest:] + cycle[:smallest])
                    if rotated not in seen_cycles:
                        seen_cycles.add(rotated)
                        cycles.append(list(rotated))
                elif nxt not in done:
                    dfs(nxt)
            on_stack.discard(node)
            visiting.pop()
            done.add(node)

        for node in sorted(graph):
            if node not in done:
                dfs(node)
        return cycles
