"""Rule family 6: wire egress — plaintext never reaches the byte surface.

PR 8's sharded wire layer created a second, byte-level egress surface:
frames over TCP, the router's raw forwarding path, and error
marshalling. The serialized-frame adversary tap observes every one of
those bytes, so the static guarantee must match the dynamic one: no
plaintext-tainted value may flow into

* a frame/channel send (``send_frame``, ``send_message``),
* message/frame/value encoding (``encode_message``, ``encode_frame``,
  ``encode_value`` — everything that feeds the codec feeds the wire),
* :class:`~repro.net.messages.ErrorReply` construction or
  ``error_reply_for`` (error payloads travel as cleartext strings and
  are the classic oracle channel),

except via sanctioned ciphertext/verdict types — i.e. after laundering
through re-encryption, exactly like the ``plaintext-taint`` family.
The rule rides the shared interprocedural flow engine
(:mod:`repro.analysis.taintflow`), so a decrypt result that passes
through helpers before reaching ``FrameChannel.send_frame`` is caught,
and a helper whose *parameter* reaches a wire sink flags every caller
that hands it plaintext (``wire-sink-via:<helper>``).

Unlike ``plaintext-taint``'s log/metric sinks, wire sinks are checked
across *all* taint packages — a tainted value reaching ``send_frame``
is a violation wherever the call happens to live.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.taintflow import get_taintflow

_KINDS = ("wire", "error-reply")

_MESSAGES = {
    "wire": "decrypted plaintext flows into wire egress call {name!r} "
            "(serialized frames are adversary-visible bytes)",
    "error-reply": "decrypted plaintext flows into error marshalling "
                   "{name!r} (ErrorReply payloads cross the wire in clear)",
}


class WireEgressRule:
    name = "wire-egress"

    def run(self, model, config) -> list:
        findings: list[Finding] = []
        if not config.taint_packages:
            return findings
        flow = get_taintflow(model, config)
        for modname, info in model.modules.items():
            if not model.in_packages(modname, config.taint_packages):
                continue
            if model.in_packages(modname, config.exempt_packages):
                continue
            for event in flow.module_events(modname):
                if event.kind not in _KINDS:
                    continue
                if event.etype == "sink":
                    findings.append(Finding(
                        rule=self.name, path=event.path, line=event.lineno,
                        symbol=event.scope,
                        key=f"{event.kind}-sink:{event.name}",
                        message=_MESSAGES[event.kind].format(name=event.name),
                    ))
                elif event.etype == "sink-via":
                    findings.append(Finding(
                        rule=self.name, path=event.path, line=event.lineno,
                        symbol=event.scope,
                        key=f"{event.kind}-sink-via:{event.name}",
                        message=(
                            f"decrypted plaintext passed to {event.name!r}, "
                            f"whose parameter reaches a wire egress sink"
                        ),
                    ))
        return findings
