"""Rule family 8: protocol typestate — the wire protocol is total.

Three session/transaction-protocol contracts that hold statically, so a
refactor cannot silently leave the wire protocol partial:

**Opcode coverage.** Every opcode in the registry
(:data:`repro.net.opcodes.OPCODES`) maps to exactly one message
dataclass (``OP`` class attribute in the messages module), and every
message class is *reachable* server-side: either a handler module
``isinstance``-checks it (requests — including classes listed in
forwarding tuples like ``Router._FORWARDED``) or a handler module
constructs it (replies; ``error_reply_for`` counts as constructing
``ErrorReply``). Dispatch-style functions (≥ ``_DISPATCH_MIN``
``if isinstance(msg, Cls):`` arms) must be *total*: end in ``raise``
(the unknown-message catch-all) and check each message class at most
once — a duplicate arm is dead code shadowing a handler. Each handler
module must contain an error-marshalling path (``error_reply_for`` /
``ErrorReply``): a server that cannot say "error" hangs its client.

**2PC log/state ordering.** In the engine modules, a transaction-state
*transition* (``txn.state = TxnState.PREPARED`` or
``…finish(txn, TxnState.PREPARED)``) must be preceded, in the same
function, by the matching WAL append (``LogOp.PREPARE``) — the
write-ahead contract phase one of 2PC rests on; same for ``COMMITTED``
/ ``LogOp.COMMIT``. ``ABORTED`` only requires a ``LogOp.ABORT`` append
*somewhere* in the function (either order): presumed abort makes a lost
abort record harmless, but an abort with no record at all would resurrect
the transaction's effects at recovery. Functions named in
``recovery_functions`` are exempt — recovery *replays* records, it does
not write them before flipping state. Coordinator shape: any function
calling both ``prepare_transaction`` and ``commit_prepared`` must make
the decision durable (``decisions.record``) before the first
``commit_prepared`` fan-out, and must have an abort path
(``abort_prepared`` or a ``ROLLBACK``).

**Error marshalling is total.** ``reconstruct_error`` rebuilds a typed
exception with ``cls(message)``; a :class:`~repro.errors.ReproError`
subclass whose constructor requires ≥ 2 arguments silently degrades to
``RemoteError`` on the client. Such classes must be listed in the
append-only ``NONRECONSTRUCTIBLE_ERRORS`` tuple in the messages module
(``unmarshallable-error`` otherwise), and entries there must still be
real non-reconstructible subclasses (``stale-unmarshallable``) so the
acknowledged-degradation list cannot rot.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

#: minimum exact ``if isinstance(x, Cls):`` arms for a function to be
#: treated as a dispatch function (totality + duplicate-arm checks).
_DISPATCH_MIN = 5


def _class_names(node: ast.expr, tuple_attrs: dict) -> list:
    """Message-class candidate names referenced by an isinstance 2nd arg."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        # ``msg.Execute`` → Execute; ``self._FORWARDED`` → the tuple's classes
        if node.attr in tuple_attrs:
            return list(tuple_attrs[node.attr])
        return [node.attr]
    if isinstance(node, ast.Tuple):
        names: list = []
        for elt in node.elts:
            names.extend(_class_names(elt, tuple_attrs))
        return names
    return []


def _isinstance_calls(tree: ast.AST):
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            yield node


class ProtocolTypestateRule:
    name = "protocol-typestate"

    def run(self, model, config) -> list:
        findings: list[Finding] = []
        proto = getattr(config, "protocol", None)
        if proto is None:
            return findings
        if proto.messages_module:
            self._check_opcode_coverage(findings, model, config, proto)
        if proto.errors_module:
            self._check_error_marshalling(findings, model, proto)
        if proto.engine_modules:
            self._check_2pc_ordering(findings, model, proto)
        self._check_coordinators(findings, model, config)
        return findings

    # ----------------------------------------------------- opcode coverage

    def _message_classes(self, info) -> dict:
        """class name → (opcode, lineno) for ``OP = "…"`` class attributes."""
        out: dict = {}
        for node in info.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "OP"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    out[node.name] = (stmt.value.value, node.lineno)
        return out

    def _class_tuple_attrs(self, tree: ast.AST, class_names: set) -> dict:
        """name → class-name tuple for ``_FORWARDED = (msg.A, B, …)`` attrs."""
        out: dict = {}
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Tuple)):
                continue
            names = []
            for elt in node.value.elts:
                if isinstance(elt, ast.Attribute):
                    names.append(elt.attr)
                elif isinstance(elt, ast.Name):
                    names.append(elt.id)
            if names and all(n in class_names for n in names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out[target.id] = tuple(names)
        return out

    def _check_opcode_coverage(self, findings, model, config, proto) -> None:
        messages = model.modules.get(proto.messages_module)
        if messages is None:
            return
        msg_path = model.relpath(messages)
        by_class = self._message_classes(messages)     # class → (op, lineno)
        by_op: dict = {}
        for cls_name, (op, lineno) in by_class.items():
            if op in by_op:
                findings.append(Finding(
                    rule=self.name, path=msg_path, line=lineno, symbol=cls_name,
                    key=f"duplicate-message:{op}",
                    message=(
                        f"opcode {op!r} is claimed by both "
                        f"{by_op[op]!r} and {cls_name!r}"
                    ),
                ))
            else:
                by_op[op] = cls_name

        for op in config.opcode_names:
            if op not in by_op:
                findings.append(Finding(
                    rule=self.name, path=msg_path, line=1, symbol="OPCODES",
                    key=f"opcode-without-message:{op}",
                    message=(
                        f"registry opcode {op!r} has no message dataclass "
                        "(OP attribute) in the messages module"
                    ),
                ))

        class_names = set(by_class)
        handled: set = set()      # isinstance-checked (request handlers)
        constructed: set = set()  # built server-side (replies)
        for handler_mod in proto.handler_modules:
            info = model.modules.get(handler_mod)
            if info is None:
                continue
            tuple_attrs = self._class_tuple_attrs(info.tree, class_names)
            for call in _isinstance_calls(info.tree):
                for cls_name in _class_names(call.args[1], tuple_attrs):
                    if cls_name in class_names:
                        handled.add(cls_name)
            has_error_path = False
            for record in info.calls:
                final = record.parts[-1]
                if final in class_names:
                    constructed.add(final)
                if final in ("error_reply_for", "ErrorReply"):
                    has_error_path = True
                    constructed.add("ErrorReply")
            if not has_error_path:
                findings.append(Finding(
                    rule=self.name, path=model.relpath(info), line=1,
                    symbol="<module>", key="missing-error-path",
                    message=(
                        "handler module never marshals an error "
                        "(no error_reply_for / ErrorReply construction)"
                    ),
                ))
            self._check_dispatch_shape(findings, model, info, class_names,
                                       tuple_attrs)

        for cls_name, (op, lineno) in sorted(by_class.items()):
            if cls_name not in handled and cls_name not in constructed:
                findings.append(Finding(
                    rule=self.name, path=msg_path, line=lineno,
                    symbol=cls_name, key=f"unrouted-opcode:{op}",
                    message=(
                        f"message {cls_name!r} (opcode {op!r}) is neither "
                        "dispatched nor constructed by any handler module — "
                        "a client sending it gets a hung connection"
                    ),
                ))

    def _check_dispatch_shape(self, findings, model, info, class_names,
                              tuple_attrs) -> None:
        path = model.relpath(info)
        for qualname, func in info.functions.items():
            arms: list = []   # (class name, lineno) per exact isinstance arm
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.If)
                    and isinstance(node.test, ast.Call)
                    and isinstance(node.test.func, ast.Name)
                    and node.test.func.id == "isinstance"
                    and len(node.test.args) == 2
                ):
                    continue
                for cls_name in _class_names(node.test.args[1], tuple_attrs):
                    if cls_name in class_names:
                        arms.append((cls_name, node.lineno))
            if len(arms) < _DISPATCH_MIN:
                continue
            seen: dict = {}
            for cls_name, lineno in arms:
                if cls_name in seen:
                    findings.append(Finding(
                        rule=self.name, path=path, line=lineno,
                        symbol=qualname, key=f"duplicate-handler:{cls_name}",
                        message=(
                            f"{cls_name!r} is dispatched twice in "
                            f"{qualname} — the second arm is dead code"
                        ),
                    ))
                else:
                    seen[cls_name] = lineno
            if not isinstance(func.body[-1], ast.Raise):
                findings.append(Finding(
                    rule=self.name, path=path, line=func.body[-1].lineno,
                    symbol=qualname, key="handler-falls-through",
                    message=(
                        f"dispatch function {qualname} does not end in a "
                        "raise — an unhandled message falls through and the "
                        "client never gets a reply"
                    ),
                ))

    # ----------------------------------------------------- 2PC ordering

    #: transition → WAL op whose append must precede it (None = same
    #: function, either order).
    _ORDERED = {"PREPARED": "PREPARE", "COMMITTED": "COMMIT"}
    _UNORDERED = {"ABORTED": "ABORT"}

    @staticmethod
    def _logop_appends(func: ast.AST) -> dict:
        """WAL-op name → earliest lineno of a call carrying ``LogOp.<op>``."""
        out: dict = {}
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if (
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "LogOp"
                ):
                    lineno = out.get(arg.attr)
                    if lineno is None or node.lineno < lineno:
                        out[arg.attr] = node.lineno
        return out

    @staticmethod
    def _state_transitions(func: ast.AST):
        """Yield (state name, lineno) for genuine transitions: assignments
        to a ``.state`` attribute and ``finish(…, TxnState.X)`` calls —
        comparisons (state *tests*) are not transitions."""
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                if (
                    len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and node.targets[0].attr == "state"
                    and isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "TxnState"
                ):
                    yield node.value.attr, node.lineno
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if isinstance(func_expr, ast.Attribute) and func_expr.attr == "finish":
                    for arg in node.args:
                        if (
                            isinstance(arg, ast.Attribute)
                            and isinstance(arg.value, ast.Name)
                            and arg.value.id == "TxnState"
                        ):
                            yield arg.attr, node.lineno

    def _check_2pc_ordering(self, findings, model, proto) -> None:
        for modname in proto.engine_modules:
            info = model.modules.get(modname)
            if info is None:
                continue
            path = model.relpath(info)
            for qualname, func in info.functions.items():
                if qualname.split(".")[-1] in proto.recovery_functions:
                    continue
                appends = self._logop_appends(func)
                for state, lineno in self._state_transitions(func):
                    if state in self._ORDERED:
                        logop = self._ORDERED[state]
                        at = appends.get(logop)
                        if at is None or at > lineno:
                            findings.append(Finding(
                                rule=self.name, path=path, line=lineno,
                                symbol=qualname,
                                key=f"state-before-log:{state}",
                                message=(
                                    f"TxnState.{state} is set before (or "
                                    f"without) the LogOp.{logop} WAL append "
                                    "in the same function — the write-ahead "
                                    "contract of 2PC is broken"
                                ),
                            ))
                    elif state in self._UNORDERED:
                        if self._UNORDERED[state] not in appends:
                            findings.append(Finding(
                                rule=self.name, path=path, line=lineno,
                                symbol=qualname,
                                key=f"state-without-log:{state}",
                                message=(
                                    f"TxnState.{state} is set with no "
                                    f"LogOp.{self._UNORDERED[state]} append "
                                    "anywhere in the function — recovery "
                                    "would resurrect the transaction"
                                ),
                            ))

    def _check_coordinators(self, findings, model, config) -> None:
        for modname, info in model.modules.items():
            if not model.in_packages(modname, config.packages):
                continue
            if model.in_packages(modname, config.exempt_packages):
                continue
            path = model.relpath(info)
            # A dispatch function routes *independent* messages (the shard
            # side handles TxnPrepare and TxnCommitPrepared as separate
            # frames); only a single-flow function mixing prepare and
            # commit is a coordinator.
            dispatchers = {
                qualname
                for qualname, func in info.functions.items()
                if sum(
                    1 for node in ast.walk(func)
                    if isinstance(node, ast.If)
                    and isinstance(node.test, ast.Call)
                    and isinstance(node.test.func, ast.Name)
                    and node.test.func.id == "isinstance"
                ) >= _DISPATCH_MIN
            }
            by_scope: dict = {}
            for record in info.calls:
                by_scope.setdefault(record.scope, []).append(record)
            for scope, records in by_scope.items():
                if scope in dispatchers:
                    continue
                prepares = [r for r in records if r.parts[-1] == "prepare_transaction"]
                commits = [r for r in records if r.parts[-1] == "commit_prepared"]
                if not prepares or not commits:
                    continue
                decisions = [
                    r for r in records
                    if r.parts[-1] == "record" and "decisions" in r.parts
                ]
                first_commit = min(r.lineno for r in commits)
                if not decisions or min(r.lineno for r in decisions) > first_commit:
                    findings.append(Finding(
                        rule=self.name, path=path, line=first_commit,
                        symbol=scope, key="commit-before-decision",
                        message=(
                            "coordinator fans out commit_prepared before the "
                            "decision is durable (decisions.record) — a crash "
                            "here half-commits under presumed abort"
                        ),
                    ))
                aborts = [r for r in records if r.parts[-1] == "abort_prepared"]
                rollbacks = [
                    r for r in records
                    if any(s and s.upper().startswith("ROLLBACK")
                           for s in r.str_args)
                ]
                if not aborts and not rollbacks:
                    findings.append(Finding(
                        rule=self.name, path=path,
                        line=min(r.lineno for r in prepares),
                        symbol=scope, key="prepare-without-abort-path",
                        message=(
                            "coordinator prepares branches but has no abort "
                            "path (abort_prepared / ROLLBACK) — a failed "
                            "prepare leaves participants in-doubt forever"
                        ),
                    ))

    # ----------------------------------------------- error marshalling

    def _check_error_marshalling(self, findings, model, proto) -> None:
        errors = model.modules.get(proto.errors_module)
        if errors is None:
            return
        err_path = model.relpath(errors)
        classes: dict = {}   # name → ast.ClassDef (module top level)
        for node in errors.tree.body:
            if isinstance(node, ast.ClassDef):
                classes[node.name] = node

        # subclass closure of the error base
        subclasses: dict = {}   # name → ClassDef, excludes the base itself
        frontier = {proto.error_base}
        changed = True
        while changed:
            changed = False
            for name, node in classes.items():
                if name in subclasses or name in frontier:
                    continue
                for base in node.bases:
                    base_name = base.id if isinstance(base, ast.Name) else None
                    if base_name in frontier or base_name in subclasses:
                        subclasses[name] = node
                        changed = True
                        break

        def reconstructible(name: str) -> bool:
            """Whether ``reconstruct_error`` rebuilds this class *faithfully*:
            a ``from_wire`` classmethod anywhere on the (same-module) chain,
            or an ``__init__`` whose single required parameter is the
            message — a single required param with any other name (e.g. a
            fault site) would silently absorb the message string. No
            ``__init__`` anywhere → Exception's ``*args`` → fine."""
            seen: set = set()
            while name in classes and name not in seen:
                seen.add(name)
                node = classes[name]
                init = None
                for stmt in node.body:
                    if isinstance(stmt, ast.FunctionDef):
                        if stmt.name == "from_wire":
                            return True
                        if stmt.name == "__init__":
                            init = stmt
                if init is not None:
                    a = init.args
                    required = max(len(a.args) - len(a.defaults) - 1, 0)
                    required += sum(1 for d in a.kw_defaults if d is None)
                    if required == 0:
                        return True
                    if required > 1:
                        return False
                    return len(a.args) > 1 and a.args[1].arg == "message"
                bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
                name = bases[0] if bases else ""
            return True

        registry = self._nonreconstructible_registry(model, proto)
        for name in sorted(subclasses):
            if not reconstructible(name) and name not in registry:
                findings.append(Finding(
                    rule=self.name, path=err_path,
                    line=subclasses[name].lineno, symbol=name,
                    key=f"unmarshallable-error:{name}",
                    message=(
                        f"{name} cannot be rebuilt faithfully from a bare "
                        "message string, so reconstruct_error degrades or "
                        "distorts it — give it a message-only constructor "
                        "or a from_wire classmethod, or acknowledge the "
                        "degradation in NONRECONSTRUCTIBLE_ERRORS"
                    ),
                ))
        for name in sorted(registry):
            if name not in subclasses or reconstructible(name):
                findings.append(Finding(
                    rule=self.name, path=err_path, line=1, symbol=name,
                    key=f"stale-unmarshallable:{name}",
                    message=(
                        f"NONRECONSTRUCTIBLE_ERRORS lists {name!r}, which is "
                        "no longer an unreconstructible error subclass — "
                        "remove the stale entry"
                    ),
                ))

    @staticmethod
    def _nonreconstructible_registry(model, proto) -> tuple:
        info = model.modules.get(proto.messages_module)
        if info is None:
            return ()
        for node in info.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            else:
                continue
            if (
                isinstance(target, ast.Name)
                and target.id == "NONRECONSTRUCTIBLE_ERRORS"
                and isinstance(node.value, ast.Tuple)
            ):
                return tuple(
                    elt.value for elt in node.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                )
        return ()
