"""Rule family 7: latch exception-safety — acquisitions release on all paths.

The lock-order family (PR 4) checks *in which order* latches nest; this
family checks that an acquired latch is **released on every path**,
including the exception paths the wire layer multiplied (a handler
thread that dies holding a latch wedges every peer forever — and unlike
a deadlock, nothing times out against a latch that is simply never
released).

``with lock:`` is safe by construction, so the rule only inspects
explicit ``.acquire()`` calls on lock-shaped receivers (the same
``looks_like_lock`` name heuristics the model uses for acquisition
records, e.g. ``_lock``/``state_lock``/``cond``/``mutex`` suffixes,
plus ``_latch``/``latch``). The sanctioned explicit idiom is acquire
immediately protected by ``try``/``finally``::

    lock.acquire()
    try:
        ...
    finally:
        lock.release()

Everything else is flagged:

* ``bare-acquire`` — an acquire that is not a ``with`` statement, is
  not the statement immediately preceding a ``try`` whose ``finally``
  releases the same receiver, and is not itself inside such a ``try``'s
  body. Any statement between acquire and ``try`` can raise and leak
  the latch.
* ``release-outside-finally`` — an explicit ``.release()`` on a
  lock-shaped receiver outside any ``finally`` block (and outside the
  sanctioned wrapper methods): if the code above it raises, the release
  never runs.

Wrapper methods named ``acquire``/``release``/``locked``/``__enter__``/
``__exit__`` are exempt (they *are* the lock implementation), as are
modules listed in ``AnalysisConfig.latch_exempt`` (the ``TimedLatch``
implementation itself).
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.model import flatten_parts

#: lock-shaped final attribute names, extending the model's with-statement
#: heuristics to the explicit acquire/release surface.
LOCKISH_SUFFIXES = (
    "_lock", "_cond", "state_lock", "lock", "cond", "mutex", "_latch", "latch",
)

#: functions that *implement* lock objects; their internal acquire/release
#: calls are the mechanism, not a use site.
_WRAPPER_FUNCTIONS = frozenset(
    {"acquire", "release", "locked", "__enter__", "__exit__"}
)


def _lockish(parts: tuple) -> bool:
    return bool(parts) and parts[-1].endswith(LOCKISH_SUFFIXES)


def _receiver_of(call: ast.Call, method: str) -> tuple | None:
    """The flattened receiver parts of ``<receiver>.<method>(...)``."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == method):
        return None
    return flatten_parts(func.value)


def _acquire_receiver(stmt: ast.stmt) -> tuple | None:
    """Lockish receiver parts if ``stmt`` is a bare acquire statement."""
    value = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    if not isinstance(value, ast.Call):
        return None
    receiver = _receiver_of(value, "acquire")
    if receiver is not None and _lockish(receiver):
        return receiver
    return None


def _finally_releases(finalbody: list, receiver: tuple) -> bool:
    for node in ast.walk(ast.Module(body=list(finalbody), type_ignores=[])):
        if isinstance(node, ast.Call):
            released = _receiver_of(node, "release")
            if released == receiver:
                return True
    return False


class LatchSafetyRule:
    name = "latch-safety"

    def run(self, model, config) -> list:
        findings: list[Finding] = []
        exempt = tuple(getattr(config, "latch_exempt", ()))
        for modname, info in model.modules.items():
            if not model.in_packages(modname, config.packages):
                continue
            if model.in_packages(modname, config.exempt_packages):
                continue
            if model.in_packages(modname, exempt):
                continue
            path = model.relpath(info)
            for qualname, func in info.functions.items():
                if qualname.split(".")[-1] in _WRAPPER_FUNCTIONS:
                    continue
                self._check_function(findings, path, qualname, func)
        return findings

    # ------------------------------------------------------------- one body

    def _check_function(self, findings, path, scope, func) -> None:
        self._walk_block(findings, path, scope, func.body, protected=frozenset(),
                         in_finally=False)

    def _walk_block(self, findings, path, scope, body, protected, in_finally) -> None:
        """Walk one statement list.

        ``protected`` holds receivers whose enclosing ``try`` releases
        them in its ``finally`` (an acquire as the first statement of
        such a ``try`` body is safe); ``in_finally`` marks that we are
        inside a ``finally`` block (where releases belong).
        """
        for index, stmt in enumerate(body):
            receiver = _acquire_receiver(stmt)
            if receiver is not None:
                if receiver in protected:
                    pass  # released by the enclosing try's finally
                else:
                    nxt = body[index + 1] if index + 1 < len(body) else None
                    if not (
                        isinstance(nxt, ast.Try)
                        and _finally_releases(nxt.finalbody, receiver)
                    ):
                        findings.append(Finding(
                            rule=self.name, path=path, line=stmt.lineno,
                            symbol=scope,
                            key=f"bare-acquire:{'.'.join(receiver)}",
                            message=(
                                f"latch {'.'.join(receiver)} acquired without "
                                "with-statement or immediate try/finally "
                                "release — an exception here leaks the latch"
                            ),
                        ))
            else:
                self._check_release(findings, path, scope, stmt, in_finally)

            # recurse into compound statements
            if isinstance(stmt, ast.Try):
                inner = set(protected)
                for parts in self._released_in(stmt.finalbody):
                    inner.add(parts)
                self._walk_block(findings, path, scope, stmt.body,
                                 frozenset(inner), in_finally)
                for handler in stmt.handlers:
                    self._walk_block(findings, path, scope, handler.body,
                                     protected, in_finally)
                self._walk_block(findings, path, scope, stmt.orelse,
                                 protected, in_finally)
                self._walk_block(findings, path, scope, stmt.finalbody,
                                 protected, True)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._walk_block(findings, path, scope, stmt.body, protected, in_finally)
                self._walk_block(findings, path, scope, stmt.orelse, protected, in_finally)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._walk_block(findings, path, scope, stmt.body, protected, in_finally)
                self._walk_block(findings, path, scope, stmt.orelse, protected, in_finally)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._walk_block(findings, path, scope, stmt.body, protected, in_finally)

    @staticmethod
    def _released_in(finalbody: list):
        for node in ast.walk(ast.Module(body=list(finalbody), type_ignores=[])):
            if isinstance(node, ast.Call):
                receiver = _receiver_of(node, "release")
                if receiver is not None and _lockish(receiver):
                    yield receiver

    def _check_release(self, findings, path, scope, stmt, in_finally) -> None:
        if in_finally or not isinstance(stmt, ast.Expr):
            return
        if not isinstance(stmt.value, ast.Call):
            return
        receiver = _receiver_of(stmt.value, "release")
        if receiver is None or not _lockish(receiver):
            return
        findings.append(Finding(
            rule=self.name, path=path, line=stmt.lineno, symbol=scope,
            key=f"release-outside-finally:{'.'.join(receiver)}",
            message=(
                f"latch {'.'.join(receiver)} released outside a finally "
                "block — an exception above this line skips the release"
            ),
        ))
