"""The rule families. Each rule is a callable object with a ``name`` and
``run(model, config) -> list[Finding]``; :data:`ALL_RULES` is the default
battery the engine and CLI load."""

from repro.analysis.rules.consistency import SiteMetricConsistencyRule
from repro.analysis.rules.latch_safety import LatchSafetyRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.plaintext_taint import PlaintextTaintRule
from repro.analysis.rules.protocol_typestate import ProtocolTypestateRule
from repro.analysis.rules.trust_boundary import TrustBoundaryRule
from repro.analysis.rules.wire_egress import WireEgressRule
from repro.analysis.rules.wire_opcodes import WireOpcodeRule

ALL_RULES = (
    TrustBoundaryRule(),
    PlaintextTaintRule(),
    WireEgressRule(),
    LockOrderRule(),
    LatchSafetyRule(),
    SiteMetricConsistencyRule(),
    WireOpcodeRule(),
    ProtocolTypestateRule(),
)

__all__ = [
    "ALL_RULES",
    "LatchSafetyRule",
    "LockOrderRule",
    "PlaintextTaintRule",
    "ProtocolTypestateRule",
    "SiteMetricConsistencyRule",
    "TrustBoundaryRule",
    "WireEgressRule",
    "WireOpcodeRule",
]
