"""Rule family 4: fault-site and metric-name consistency.

Fault sites and metric names are stringly-typed contracts between
production code, tests, and dashboards; typos fail silently (a fault that
never fires, a counter nobody aggregates). Checks:

* every ``fault_point("…")`` literal names a site that some
  ``register_fault_site("…")`` declares;
* every registered fault site is exercised — its name appears as a
  string literal somewhere under the tests root (arming a site you never
  test is an untested failure path);
* site names passed to ``fault_point``/``register_fault_site`` must be
  literals outside the registry implementation itself — a dynamic name
  can't be audited;
* every metric name — ``registry.counter/gauge/histogram("…")`` literals
  and ``FIELDS``-style StatsView maps — follows the ``component.noun_verb``
  convention (the static half of ``scripts/check_metrics.py``, absorbed
  here);
* no metric name is registered under two different kinds;
* every ``record_event("…")`` literal names a flight-recorder event kind
  registered in :data:`repro.obs.flightrec.EVENT_KINDS` and follows the
  same naming convention — an unregistered kind would raise at runtime,
  but only on the instrumented path actually executing.
"""

from __future__ import annotations

import re

from repro.analysis.findings import Finding
from repro.analysis.model import CALL_MARK

#: Mirrors repro.obs.metrics.METRIC_NAME_RE; asserted identical by the
#: analyzer's test suite so the two cannot drift.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

_SITE_REGISTER_FNS = ("register_fault_site", "register_site")
_SITE_USE_FNS = ("fault_point",)
_METRIC_FNS = ("counter", "gauge", "histogram")
_EVENT_FNS = ("record_event",)


class SiteMetricConsistencyRule:
    name = "site-metric"

    def run(self, model, config) -> list:
        findings: list[Finding] = []
        registered: dict[str, tuple] = {}   # site -> (path, line)
        used: list[tuple] = []              # (site, path, line, scope)
        metric_kinds: dict[str, tuple] = {} # name -> (kind, path, line)

        for modname, info in model.modules.items():
            if not model.in_packages(modname, config.packages):
                continue
            path = model.relpath(info)
            exempt = model.in_packages(modname, config.consistency_exempt)
            for call in info.calls:
                parts = tuple(p for p in call.parts if p != CALL_MARK)
                if not parts:
                    continue
                fn = parts[-1]
                if fn in _SITE_REGISTER_FNS or fn in _SITE_USE_FNS:
                    literal = call.str_args[0] if call.str_args else None
                    if literal is None:
                        if not exempt:
                            findings.append(Finding(
                                rule=self.name, path=path, line=call.lineno,
                                symbol=call.scope,
                                key=f"dynamic-site:{fn}",
                                message=(
                                    f"{fn}() called with a non-literal site "
                                    "name; fault sites must be auditable "
                                    "string literals"
                                ),
                            ))
                        continue
                    if fn in _SITE_REGISTER_FNS:
                        registered.setdefault(literal, (path, call.lineno))
                    else:
                        used.append((literal, path, call.lineno, call.scope))
                elif fn in _EVENT_FNS:
                    literal = call.str_args[0] if call.str_args else None
                    if literal is None:
                        if not exempt:
                            findings.append(Finding(
                                rule=self.name, path=path, line=call.lineno,
                                symbol=call.scope,
                                key=f"dynamic-event:{fn}",
                                message=(
                                    f"{fn}() called with a non-literal event "
                                    "kind; flight-recorder events must be "
                                    "auditable string literals"
                                ),
                            ))
                        continue
                    if not METRIC_NAME_RE.match(literal):
                        findings.append(Finding(
                            rule=self.name, path=path, line=call.lineno,
                            symbol=call.scope,
                            key=f"event-name:{literal}",
                            message=(
                                f"event kind {literal!r} violates the "
                                "component.noun_verb convention (lowercase "
                                "dot-separated segments, >= 2)"
                            ),
                        ))
                    elif config.event_kinds and literal not in config.event_kinds:
                        findings.append(Finding(
                            rule=self.name, path=path, line=call.lineno,
                            symbol=call.scope,
                            key=f"unregistered-event:{literal}",
                            message=(
                                f"record_event({literal!r}) names an event "
                                "kind not registered in "
                                "repro.obs.flightrec.EVENT_KINDS"
                            ),
                        ))
                elif fn in _METRIC_FNS and len(parts) >= 2:
                    literal = call.str_args[0] if call.str_args else None
                    if literal is None:
                        continue  # registry APIs validate dynamic names at runtime
                    self._check_metric_name(
                        findings, literal, path, call.lineno, call.scope
                    )
                    previous = metric_kinds.get(literal)
                    if previous is not None and previous[0] != fn:
                        findings.append(Finding(
                            rule=self.name, path=path, line=call.lineno,
                            symbol=call.scope,
                            key=f"metric-kind-conflict:{literal}",
                            message=(
                                f"metric {literal!r} registered as {fn} here "
                                f"but as {previous[0]} at "
                                f"{previous[1]}:{previous[2]}"
                            ),
                        ))
                    else:
                        metric_kinds.setdefault(literal, (fn, path, call.lineno))
            for cls in info.classes.values():
                for map_name, mapping in cls.fields_literal.items():
                    if map_name != "FIELDS":
                        continue
                    for metric_name, (value, lineno) in mapping.items():
                        self._check_metric_name(
                            findings, value, path, lineno, cls.name
                        )

        # -- cross-checks ---------------------------------------------------
        for site, path, line, scope in used:
            if site not in registered:
                findings.append(Finding(
                    rule=self.name, path=path, line=line, symbol=scope,
                    key=f"unregistered-site:{site}",
                    message=(
                        f"fault_point({site!r}) names a fault site that is "
                        "never registered with register_fault_site()"
                    ),
                ))

        if config.tests_root is not None and config.tests_root.is_dir():
            corpus = "\n".join(
                p.read_text(encoding="utf-8", errors="replace")
                for p in sorted(config.tests_root.rglob("*.py"))
            )
            for site, (path, line) in sorted(registered.items()):
                if f'"{site}"' not in corpus and f"'{site}'" not in corpus:
                    findings.append(Finding(
                        rule=self.name, path=path, line=line, symbol="<module>",
                        key=f"untested-site:{site}",
                        message=(
                            f"fault site {site!r} is registered but appears "
                            f"in no test under {config.tests_root.name}/ — "
                            "its failure path is untested"
                        ),
                    ))
        return findings

    def _check_metric_name(self, findings, name, path, lineno, scope) -> None:
        if not METRIC_NAME_RE.match(name):
            findings.append(Finding(
                rule=self.name, path=path, line=lineno, symbol=scope,
                key=f"metric-name:{name}",
                message=(
                    f"metric name {name!r} violates the component.noun_verb "
                    "convention (lowercase dot-separated segments, >= 2)"
                ),
            ))
