"""Rule family 1: the host↔enclave trust boundary.

The paper's isolation claim holds only if the untrusted host interacts
with the enclave exclusively through the sanctioned ecall surface. Three
checks, all driven by :data:`repro.enclave.ECALL_SURFACE` (the same
registry the runtime enforces, so the allowlist cannot fork):

* **enclave-internal imports** — host packages may import only the
  ``repro.enclave`` facade, and only names the surface declares
  importable; reaching into ``repro.enclave.<submodule>`` is a finding;
* **private-attribute reaches** — ``enclave._sessions``, ``vm._stack``
  and friends from host code are findings regardless of spelling;
* **off-surface attribute access** — any attribute on an enclave-typed
  receiver that is neither a declared ecall nor declared observable
  (e.g. ``enclave.sqlos``) is a finding, as is any off-surface use of
  the call gateway.

Receivers are recognized conservatively by name (``enclave``,
``_enclave``, ``gateway``, ``vm`` …): syntactic, no type inference, which
is exactly what a lint-time boundary check should be — cheap, total, and
hard to fool by accident.
"""

from __future__ import annotations

from repro.analysis.findings import Finding


class TrustBoundaryRule:
    name = "trust-boundary"

    def run(self, model, config) -> list:
        surface = config.surface
        findings: list[Finding] = []
        internal_prefix = config.enclave_package + "."
        for modname, info in model.modules.items():
            if not model.in_packages(modname, config.host_packages):
                continue
            if model.in_packages(modname, config.exempt_packages):
                continue
            path = model.relpath(info)

            for imp in info.imports:
                # import repro.enclave.<submodule> — internal reach
                if imp.module.startswith(internal_prefix) or (
                    imp.name is not None
                    and imp.module == config.enclave_package
                    and surface is not None
                    and imp.name not in surface.importable
                    and imp.name != "*"
                ):
                    what = imp.module if imp.name is None else f"{imp.module}.{imp.name}"
                    findings.append(Finding(
                        rule=self.name, path=path, line=imp.lineno,
                        symbol="<module>",
                        key=f"import:{what}",
                        message=(
                            f"host module imports enclave-internal {what!r}; "
                            f"use the sanctioned names exported by "
                            f"{config.enclave_package!r} (see ECALL_SURFACE.importable)"
                        ),
                    ))

            for access in info.attr_accesses:
                receiver_tail = access.receiver[-1] if access.receiver else ""
                is_enclave = receiver_tail in config.enclave_receivers
                is_gateway = receiver_tail in config.gateway_receivers
                is_vm = receiver_tail in config.vm_receivers
                if not (is_enclave or is_gateway or is_vm):
                    continue
                attr = access.attr
                if attr.startswith("__") and attr.endswith("__"):
                    continue  # dunder protocol (context managers etc.)
                if attr.startswith("_"):
                    findings.append(Finding(
                        rule=self.name, path=path, line=access.lineno,
                        symbol=access.scope,
                        key=f"private:{receiver_tail}.{attr}",
                        message=(
                            f"host code reaches private enclave state "
                            f"{'.'.join(access.receiver)}.{attr}"
                        ),
                    ))
                    continue
                if access.is_store:
                    # Binding `self.enclave = ...` etc. is construction
                    # plumbing, not a boundary crossing.
                    continue
                if surface is None:
                    continue
                if is_enclave:
                    allowed = surface.ecalls | surface.observable
                    kind = "ecall surface"
                elif is_gateway:
                    allowed = surface.gateway
                    kind = "gateway surface"
                else:
                    continue  # vm receivers: only the private-attr check
                if attr not in allowed:
                    findings.append(Finding(
                        rule=self.name, path=path, line=access.lineno,
                        symbol=access.scope,
                        key=f"off-surface:{receiver_tail}.{attr}",
                        message=(
                            f"{'.'.join(access.receiver)}.{attr} is outside the "
                            f"sanctioned {kind} declared in ECALL_SURFACE"
                        ),
                    ))
        return findings
