"""Rule family 2: plaintext taint in host code.

Only the enclave (and the key-holding client) may see plaintext of
encrypted columns. This pass conservatively tracks values produced by
decrypting primitives (``*.decrypt``, ``decrypt_cell``,
``decrypt_for_ddl``, ``open_package``) through intra-procedural
assignments and flags them when they reach a host-side egress:

* a ``return`` (the value escapes to arbitrary host callers),
* a logging call (``print``, ``logger.info`` …),
* a metric mutation (``inc``/``set``/``observe`` arguments),
* a trace span payload (``span``/``ecall_span`` arguments).

Taint propagates through names, attributes, f-strings, arithmetic, and a
small list of value-preserving calls (``deserialize_value``, ``str`` …);
other calls launder — in particular re-encrypting (``encrypt_cell``)
cleanses, which is the sanctioned way plaintext leaves a computation.
Comparison results are deliberately *not* tainted: predicate verdicts are
exactly the information the paper's adversary model already concedes.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.model import flatten_parts


def _final_name(func: ast.expr) -> str:
    parts = flatten_parts(func)
    return parts[-1] if parts else ""


class _FunctionTaint:
    def __init__(self, rule, path: str, scope: str, taint_cfg, findings: list):
        self.rule = rule
        self.path = path
        self.scope = scope
        self.cfg = taint_cfg
        self.findings = findings
        self.tainted: set[str] = set()

    # -- expression taint ---------------------------------------------------

    def expr_tainted(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            dotted = ".".join(flatten_parts(node))
            return dotted in self.tainted or self.expr_tainted(node.value)
        if isinstance(node, ast.Call):
            self.check_sink(node)
            name = _final_name(node.func)
            if name in self.cfg.sources:
                return True
            if name in self.cfg.propagators:
                return any([self.expr_tainted(a) for a in node.args])
            # other calls launder (re-encryption is the sanctioned egress)
            for arg in node.args:
                self.expr_tainted(arg)  # still walk for nested sinks
            return False
        if isinstance(node, ast.BinOp):
            return self.expr_tainted(node.left) or self.expr_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.expr_tainted(node.operand)
        if isinstance(node, ast.BoolOp):
            return any([self.expr_tainted(v) for v in node.values])
        if isinstance(node, ast.IfExp):
            self.expr_tainted(node.test)
            return self.expr_tainted(node.body) or self.expr_tainted(node.orelse)
        if isinstance(node, ast.JoinedStr):
            return any([
                self.expr_tainted(v.value)
                for v in node.values
                if isinstance(v, ast.FormattedValue)
            ])
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any([self.expr_tainted(e) for e in node.elts])
        if isinstance(node, ast.Dict):
            return any(self.expr_tainted(v) for v in node.values if v is not None)
        if isinstance(node, ast.Subscript):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Starred):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Compare):
            # verdicts (orderings, equality) are sanctioned leakage
            self.expr_tainted(node.left)
            for comp in node.comparators:
                self.expr_tainted(comp)
            return False
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.expr_tainted(node.elt)
        if isinstance(node, ast.DictComp):
            return self.expr_tainted(node.value)
        if isinstance(node, ast.Await):
            return self.expr_tainted(node.value)
        return False

    def check_sink(self, call: ast.Call) -> None:
        name = _final_name(call.func)
        cfg = self.cfg
        if name in cfg.log_sinks:
            kind = "log"
        elif name in cfg.metric_sinks:
            kind = "metric"
        elif name in cfg.trace_sinks:
            kind = "trace"
        else:
            return
        args = list(call.args) + [kw.value for kw in call.keywords]
        if any([self.expr_tainted(a) for a in args]):
            self.findings.append(Finding(
                rule=self.rule, path=self.path, line=call.lineno,
                symbol=self.scope,
                key=f"{kind}-sink:{name}",
                message=(
                    f"decrypted plaintext flows into host-side {kind} "
                    f"call {name!r}"
                ),
            ))

    # -- statement walk ------------------------------------------------------

    def taint_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.tainted.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.tainted.add(".".join(flatten_parts(target)))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.taint_target(element)
        elif isinstance(target, ast.Starred):
            self.taint_target(target.value)

    def run(self, body: list) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested functions analyzed separately
        if isinstance(stmt, ast.Assign):
            if self.expr_tainted(stmt.value):
                for target in stmt.targets:
                    self.taint_target(target)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if stmt.value is not None and self.expr_tainted(stmt.value):
                self.taint_target(stmt.target)
        elif isinstance(stmt, ast.Return):
            if self.expr_tainted(stmt.value):
                self.findings.append(Finding(
                    rule=self.rule, path=self.path, line=stmt.lineno,
                    symbol=self.scope,
                    key="return-plaintext",
                    message=(
                        "decrypted plaintext is returned from host code "
                        "without re-encryption"
                    ),
                ))
        elif isinstance(stmt, ast.Expr):
            self.expr_tainted(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if self.expr_tainted(stmt.iter):
                self.taint_target(stmt.target)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.expr_tainted(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.expr_tainted(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if self.expr_tainted(item.context_expr) and item.optional_vars:
                    self.taint_target(item.optional_vars)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.expr_tainted(stmt.exc)


class PlaintextTaintRule:
    name = "plaintext-taint"

    def run(self, model, config) -> list:
        findings: list[Finding] = []
        for modname, info in model.modules.items():
            if not model.in_packages(modname, config.taint_packages):
                continue
            if model.in_packages(modname, config.exempt_packages):
                continue
            path = model.relpath(info)
            for func, scope in self._functions(info.tree):
                tracker = _FunctionTaint(self.name, path, scope, config.taint, findings)
                tracker.run(func.body)
        return findings

    @staticmethod
    def _functions(tree: ast.Module):
        """Yield (function node, qualname) pairs, including nested ones."""
        stack: list[tuple[ast.AST, tuple[str, ...]]] = [(tree, ())]
        while stack:
            node, prefix = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = prefix + (child.name,)
                    yield child, ".".join(qual)
                    stack.append((child, qual))
                elif isinstance(child, ast.ClassDef):
                    stack.append((child, prefix + (child.name,)))
                elif isinstance(child, (ast.If, ast.Try, ast.With)):
                    stack.append((child, prefix))
        return
