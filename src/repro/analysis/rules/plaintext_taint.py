"""Rule family 2: plaintext taint in host code (interprocedural).

Only the enclave (and the key-holding client) may see plaintext of
encrypted columns. Values produced by decrypting primitives
(``*.decrypt``, ``decrypt_cell``, ``decrypt_for_ddl``, ``open_package``)
are tracked by the shared flow engine (:mod:`repro.analysis.taintflow`)
through assignments, helper calls (call-graph-resolved function
signatures computed to a fixpoint), dataclass/constructor packing, and
containers, and flagged when they reach a host-side egress:

* a ``return`` (the value escapes to arbitrary host callers),
* a logging call (``print``, ``logger.info`` …),
* a metric mutation (``inc``/``set``/``observe`` arguments),
* a trace span payload (``span``/``ecall_span`` arguments),
* a *call into a helper whose parameter reaches any of the above*
  (``…-sink-via:<helper>`` keys — the leak is charged to the caller
  that supplied the plaintext).

Laundering is unchanged from the intra-procedural engine: unresolved
calls cleanse, re-encrypting (``encrypt_cell``) cleanses even when
resolved, and comparison *results* are deliberately untainted —
predicate verdicts are exactly the information the paper's adversary
model already concedes. Setting ``TaintConfig.interprocedural=False``
pins the old per-function behaviour (used by tests to demonstrate what
the upgrade catches).

Wire-specific egress (frame sends, ``ErrorReply`` payloads) is the
``wire-egress`` family in :mod:`repro.analysis.rules.wire_egress`,
riding the same flow analysis.
"""

from __future__ import annotations

from repro.analysis.findings import Finding
from repro.analysis.taintflow import get_taintflow

#: event kinds this family reports (wire kinds belong to wire-egress)
_KINDS = ("log", "metric", "trace")


class PlaintextTaintRule:
    name = "plaintext-taint"

    def run(self, model, config) -> list:
        findings: list[Finding] = []
        if not config.taint_packages:
            return findings
        flow = get_taintflow(model, config)
        for modname, info in model.modules.items():
            if not model.in_packages(modname, config.taint_packages):
                continue
            if model.in_packages(modname, config.exempt_packages):
                continue
            for event in flow.module_events(modname):
                if event.etype == "return":
                    findings.append(Finding(
                        rule=self.name, path=event.path, line=event.lineno,
                        symbol=event.scope,
                        key="return-plaintext",
                        message=(
                            "decrypted plaintext is returned from host code "
                            "without re-encryption"
                        ),
                    ))
                elif event.etype == "sink" and event.kind in _KINDS:
                    findings.append(Finding(
                        rule=self.name, path=event.path, line=event.lineno,
                        symbol=event.scope,
                        key=f"{event.kind}-sink:{event.name}",
                        message=(
                            f"decrypted plaintext flows into host-side "
                            f"{event.kind} call {event.name!r}"
                        ),
                    ))
                elif event.etype == "sink-via" and event.kind in _KINDS:
                    findings.append(Finding(
                        rule=self.name, path=event.path, line=event.lineno,
                        symbol=event.scope,
                        key=f"{event.kind}-sink-via:{event.name}",
                        message=(
                            f"decrypted plaintext passed to {event.name!r}, "
                            f"whose parameter reaches a host-side "
                            f"{event.kind} sink"
                        ),
                    ))
        return findings
