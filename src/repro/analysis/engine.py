"""The rule engine: build the model once, run each rule, apply baseline.

The model (one AST pass over the tree) and the interprocedural flow
structures (call graph + taint summaries, memoized on ``model.caches``)
are shared by every rule family, so the per-rule cost is the rule's own
logic — ``Report.timings`` breaks the wall time down by phase so the
``--profile`` flag and the CI budget check can hold that property.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.baseline import BaselineResult, apply_baseline, load_baseline
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel


@dataclass
class Report:
    findings: list = field(default_factory=list)     # all, deduped + sorted
    baseline: BaselineResult | None = None
    #: wall-clock seconds by phase: "model", "taint-flow", then one entry
    #: per rule name, in execution order (dicts preserve it).
    timings: dict = field(default_factory=dict)

    @property
    def new(self) -> list:
        return self.baseline.new if self.baseline else list(self.findings)

    @property
    def suppressed(self) -> list:
        return self.baseline.suppressed if self.baseline else []

    @property
    def stale_baseline(self) -> list:
        return self.baseline.stale if self.baseline else []

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())

    def per_rule_counts(self) -> dict:
        counts: dict[str, int] = {}
        for finding in self.new:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


class AnalysisEngine:
    def __init__(self, config, rules=None):
        if rules is None:
            from repro.analysis.rules import ALL_RULES

            rules = ALL_RULES
        self.config = config
        self.rules = tuple(rules)

    def run(self, model: ProjectModel | None = None) -> Report:
        timings: dict[str, float] = {}
        if model is None:
            start = time.perf_counter()
            model = ProjectModel.build(self.config.root, self.config.packages)
            timings["model"] = time.perf_counter() - start
        if self.config.taint_packages:
            # Warm the shared flow structures here so per-rule numbers
            # measure the rules, not whichever taint rule runs first.
            from repro.analysis.taintflow import get_taintflow

            start = time.perf_counter()
            get_taintflow(model, self.config)
            timings["taint-flow"] = time.perf_counter() - start
        findings: list[Finding] = []
        seen: set = set()
        for rule in self.rules:
            start = time.perf_counter()
            for finding in rule.run(model, self.config):
                marker = (finding.rule, finding.path, finding.line, finding.key)
                if marker not in seen:
                    seen.add(marker)
                    findings.append(finding)
            timings[rule.name] = time.perf_counter() - start
        findings.sort(key=lambda f: (f.path, f.line, f.rule, f.key))
        entries = load_baseline(self.config.baseline_path)
        return Report(
            findings=findings,
            baseline=apply_baseline(findings, entries),
            timings=timings,
        )
