"""The rule engine: build the model once, run each rule, apply baseline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.baseline import BaselineResult, apply_baseline, load_baseline
from repro.analysis.findings import Finding
from repro.analysis.model import ProjectModel


@dataclass
class Report:
    findings: list = field(default_factory=list)     # all, deduped + sorted
    baseline: BaselineResult | None = None

    @property
    def new(self) -> list:
        return self.baseline.new if self.baseline else list(self.findings)

    @property
    def suppressed(self) -> list:
        return self.baseline.suppressed if self.baseline else []

    @property
    def stale_baseline(self) -> list:
        return self.baseline.stale if self.baseline else []

    def per_rule_counts(self) -> dict:
        counts: dict[str, int] = {}
        for finding in self.new:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


class AnalysisEngine:
    def __init__(self, config, rules=None):
        if rules is None:
            from repro.analysis.rules import ALL_RULES

            rules = ALL_RULES
        self.config = config
        self.rules = tuple(rules)

    def run(self, model: ProjectModel | None = None) -> Report:
        if model is None:
            model = ProjectModel.build(self.config.root, self.config.packages)
        findings: list[Finding] = []
        seen: set = set()
        for rule in self.rules:
            for finding in rule.run(model, self.config):
                marker = (finding.rule, finding.path, finding.line, finding.key)
                if marker not in seen:
                    seen.add(marker)
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.rule, f.key))
        entries = load_baseline(self.config.baseline_path)
        return Report(findings=findings, baseline=apply_baseline(findings, entries))
