"""The project model: one AST pass per module, shared by every rule.

Rules should not re-walk raw trees for the common questions — who imports
what, which attributes are touched on which receivers, which calls carry
which string literals, where locks are taken and what runs while they are
held. The model answers those once per module; rules consume the indexed
records (the raw ``ast`` tree stays available for anything exotic).

Everything here is purely syntactic. Receivers are recorded as dotted
part-tuples (``obj.enclave.sqlos`` → ``("obj", "enclave", "sqlos")``, with
``"()"`` marking an intervening call), which is what the conservative
receiver-name heuristics in the rules key off.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Marker inserted into a part-tuple where a call intervenes:
#: ``registry.counter("x").inc()`` → ``("registry", "counter", "()", "inc")``.
CALL_MARK = "()"


def flatten_parts(node: ast.AST) -> tuple[str, ...]:
    """Dotted parts of an attribute/call chain; ``("?",)`` base if opaque."""
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        return flatten_parts(node.value) + (node.attr,)
    if isinstance(node, ast.Call):
        return flatten_parts(node.func) + (CALL_MARK,)
    return ("?",)


@dataclass(frozen=True)
class ImportRecord:
    module: str           # absolute module imported from / imported
    name: str | None      # None for ``import x``; bound name for ``from x import name``
    asname: str | None
    lineno: int
    type_checking: bool   # inside an ``if TYPE_CHECKING:`` block


@dataclass(frozen=True)
class AttrAccess:
    receiver: tuple[str, ...]   # parts of the expression the attr hangs off
    attr: str
    lineno: int
    scope: str                  # enclosing qualname or "<module>"
    is_store: bool


@dataclass(frozen=True)
class CallRecord:
    parts: tuple[str, ...]            # callee chain, e.g. ("self", "wal", "append")
    str_args: tuple[str | None, ...]  # literal positional string args (None if not a literal)
    lineno: int
    scope: str


@dataclass(frozen=True)
class LockAcquisition:
    """One ``with <lock>:`` region."""

    parts: tuple[str, ...]            # full with-expression parts
    lineno: int
    scope: str
    held: tuple[tuple[str, ...], ...]  # lock part-tuples already held (outer withs)


@dataclass(frozen=True)
class HeldCall:
    """A call made while at least one lock is held."""

    parts: tuple[str, ...]
    lineno: int
    scope: str
    held: tuple[tuple[str, ...], ...]


@dataclass
class ClassInfo:
    name: str
    lineno: int
    methods: dict = field(default_factory=dict)      # name -> qualname
    fields_literal: dict = field(default_factory=dict)  # FIELDS-style str->str dicts


@dataclass
class ModuleInfo:
    name: str                      # dotted module name relative to the root
    path: Path
    tree: ast.Module
    imports: list = field(default_factory=list)
    attr_accesses: list = field(default_factory=list)
    calls: list = field(default_factory=list)
    lock_acquisitions: list = field(default_factory=list)
    held_calls: list = field(default_factory=list)
    classes: dict = field(default_factory=dict)     # name -> ClassInfo
    #: qualname ("f", "Cls.meth", "Cls.meth.inner") -> ast.FunctionDef;
    #: the call graph and taint summaries hang off these nodes.
    functions: dict = field(default_factory=dict)


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


#: ``with`` expressions whose final attribute looks like a lock object.
LOCK_ATTR_HINTS = ("_lock", "_cond", "state_lock", "lock", "cond", "mutex")


def looks_like_lock(parts: tuple[str, ...]) -> bool:
    return bool(parts) and parts[-1].endswith(LOCK_ATTR_HINTS)


class _ModuleVisitor(ast.NodeVisitor):
    def __init__(self, info: ModuleInfo):
        self.info = info
        self._scope: list[str] = []
        self._class_stack: list[ClassInfo] = []
        self._type_checking_depth = 0
        self._lock_stack: list[tuple[str, ...]] = []

    # -- scope bookkeeping -------------------------------------------------

    @property
    def scope(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    def _visit_scoped(self, node, name: str) -> None:
        self._scope.append(name)
        outer_locks = self._lock_stack
        self._lock_stack = []  # lock nesting does not cross function bounds
        self.generic_visit(node)
        self._lock_stack = outer_locks
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._class_stack:
            self._class_stack[-1].methods[node.name] = f"{self.scope}.{node.name}"
        qualname = node.name if not self._scope else f"{self.scope}.{node.name}"
        self.info.functions.setdefault(qualname, node)
        self._visit_scoped(node, node.name)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, lineno=node.lineno)
        self.info.classes[node.name] = info
        self._class_stack.append(info)
        self._visit_scoped(node, node.name)
        self._class_stack.pop()

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking_depth += 1
            for child in node.body:
                self.visit(child)
            self._type_checking_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.imports.append(ImportRecord(
                module=alias.name, name=None, asname=alias.asname,
                lineno=node.lineno,
                type_checking=self._type_checking_depth > 0,
            ))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:  # resolve relative imports against this module
            base = self.info.name.split(".")
            base = base[: len(base) - node.level]
            module = ".".join(base + ([module] if module else []))
        for alias in node.names:
            self.info.imports.append(ImportRecord(
                module=module, name=alias.name, asname=alias.asname,
                lineno=node.lineno,
                type_checking=self._type_checking_depth > 0,
            ))

    # -- attributes and calls -----------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.info.attr_accesses.append(AttrAccess(
            receiver=flatten_parts(node.value),
            attr=node.attr,
            lineno=node.lineno,
            scope=self.scope,
            is_store=isinstance(node.ctx, (ast.Store, ast.Del)),
        ))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        str_args = tuple(
            arg.value if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            else None
            for arg in node.args
        )
        record = CallRecord(
            parts=flatten_parts(node.func),
            str_args=str_args,
            lineno=node.lineno,
            scope=self.scope,
        )
        self.info.calls.append(record)
        if self._lock_stack:
            self.info.held_calls.append(HeldCall(
                parts=record.parts,
                lineno=node.lineno,
                scope=self.scope,
                held=tuple(self._lock_stack),
            ))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Class-body ``NAME = {"k": "v", ...}`` literal dicts (StatsView
        # FIELDS maps) feed the metric-name consistency rule.
        if (
            self._class_stack
            and self.scope == ".".join(self._scope)
            and self._scope
            and self._scope[-1] == self._class_stack[-1].name
            and isinstance(node.value, ast.Dict)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            literal: dict[str, tuple[str, int]] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if (
                    isinstance(key, ast.Constant) and isinstance(key.value, str)
                    and isinstance(value, ast.Constant) and isinstance(value.value, str)
                ):
                    literal[key.value] = (value.value, value.lineno)
            if literal:
                self._class_stack[-1].fields_literal[node.targets[0].id] = literal
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        acquired: list[tuple[str, ...]] = []
        for item in node.items:
            expr = item.context_expr
            # ``with lock:`` or ``with obj.lock_attr:`` (not a call result)
            if isinstance(expr, (ast.Name, ast.Attribute)):
                parts = flatten_parts(expr)
                if looks_like_lock(parts):
                    self.info.lock_acquisitions.append(LockAcquisition(
                        parts=parts,
                        lineno=expr.lineno,
                        scope=self.scope,
                        held=tuple(self._lock_stack),
                    ))
                    acquired.append(parts)
            self.visit(expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self._lock_stack.extend(acquired)
        for child in node.body:
            self.visit(child)
        del self._lock_stack[len(self._lock_stack) - len(acquired):]

    visit_AsyncWith = visit_With


class ProjectModel:
    """Parsed view of every module under one or more package roots."""

    def __init__(self, root: Path):
        self.root = Path(root)
        self.modules: dict[str, ModuleInfo] = {}
        #: derived-structure memos (call graph, taint flow) keyed by name;
        #: a model instance is built per engine run, so entries never go
        #: stale across configs.
        self.caches: dict = {}

    @classmethod
    def build(cls, root: Path, packages: tuple[str, ...] | None = None) -> "ProjectModel":
        """Parse ``root/<pkg>/**/*.py`` for each package (all dirs if None)."""
        model = cls(root)
        root = model.root
        if packages is None:
            paths = sorted(root.rglob("*.py"))
        else:
            paths = []
            for pkg in packages:
                base = root / Path(*pkg.split("."))
                if base.is_dir():
                    paths.extend(sorted(base.rglob("*.py")))
                elif base.with_suffix(".py").is_file():
                    paths.append(base.with_suffix(".py"))
        for path in paths:
            rel = path.relative_to(root)
            parts = list(rel.parts)
            parts[-1] = parts[-1][:-3]  # strip .py
            if parts[-1] == "__init__":
                parts.pop()
            modname = ".".join(parts) if parts else rel.stem
            info = ModuleInfo(name=modname, path=path, tree=ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            ))
            _ModuleVisitor(info).visit(info.tree)
            model.modules[modname] = info
        return model

    def relpath(self, info: ModuleInfo) -> str:
        return info.path.relative_to(self.root).as_posix()

    def in_packages(self, modname: str, prefixes: tuple[str, ...]) -> bool:
        return any(modname == p or modname.startswith(p + ".") for p in prefixes)
