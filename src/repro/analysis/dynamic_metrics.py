"""The runtime half of the metrics lint (absorbed from
``scripts/check_metrics.py``; that script is now a thin shim over this
module).

The static half lives in the :mod:`site-metric
<repro.analysis.rules.consistency>` rule family — it validates every
metric-name *literal* without importing anything. This module keeps the
original dynamic check: boot a full encrypted-query stack (driver →
server → executor → storage → enclave), run DDL, DML, point lookups, an
enclave range predicate, and a crash/recovery cycle so every instrumented
code path registers its metrics, then validate the registry's contents.
Kind conflicts raise inside the registry at registration time, so merely
surviving the workload proves there are none; the name sweep then catches
convention violations that only exist at runtime (dynamically composed
names the static rule cannot see).

Exit status: 0 clean, 1 violations found, 2 the workload itself broke.
"""

from __future__ import annotations

import sys
import traceback


def run_workload() -> None:
    """Touch every instrumented layer so all metrics register."""
    from repro.attestation.hgs import AttestationPolicy, HostGuardianService
    from repro.attestation.tpm import HostMachine
    from repro.client.driver import connect
    from repro.crypto.aead import generate_cek_material
    from repro.crypto.rsa import RsaKeyPair
    from repro.enclave import Enclave, EnclaveBinary
    from repro.keys.cek import ColumnEncryptionKey
    from repro.keys.cmk import ColumnMasterKey
    from repro.keys.providers import default_registry
    from repro.sqlengine.server import SqlServer

    author = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))

    key_registry = default_registry()
    vault = key_registry.get("AZURE_KEY_VAULT_PROVIDER")
    key_path = "https://vault.azure.net/keys/lint-cmk"
    vault.create_key(key_path, bits=1024)
    cmk = ColumnMasterKey.create(
        "LintCMK", vault, key_path, allow_enclave_computations=True
    )
    cek, __ = ColumnEncryptionKey.create(
        "LintCEK", cmk, vault, key_material=generate_cek_material()
    )

    server = SqlServer(enclave=Enclave(binary), host_machine=host, hgs=hgs)
    server.catalog.create_cmk(cmk)
    server.catalog.create_cek(cek)
    conn = connect(server, key_registry, attestation_policy=policy)

    conn.execute_ddl(
        "CREATE TABLE L(id int PRIMARY KEY, value int ENCRYPTED WITH ("
        "COLUMN_ENCRYPTION_KEY = LintCEK, ENCRYPTION_TYPE = Randomized, "
        "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))"
    )
    for i in range(8):
        conn.execute(
            "INSERT INTO L (id, value) VALUES (@id, @v)", {"id": i, "v": i * 10}
        )
    # Enclave predicate (TM_EVAL), point lookup, range, update, delete.
    conn.execute("SELECT id FROM L WHERE value = @v", {"v": 30})
    conn.execute("SELECT id FROM L WHERE value > @lo AND value < @hi", {"lo": 10, "hi": 60})
    conn.execute("UPDATE L SET value = @v WHERE id = @id", {"v": 999, "id": 0})
    conn.execute("DELETE FROM L WHERE id = @id", {"id": 7})
    # Explicit transaction exercises the lock manager + WAL commit path.
    conn.begin()
    conn.execute("INSERT INTO L (id, value) VALUES (@id, @v)", {"id": 100, "v": 1})
    conn.commit()
    # Crash/recovery touches recovery-side counters.
    server.crash()
    server.recover()


def check_names(verbose: bool = False) -> list[str]:
    from repro.obs.metrics import METRIC_NAME_RE, get_registry

    registry = get_registry()
    problems: list[str] = []
    for name in registry.names():
        kind = registry.kind_of(name).value
        if verbose:
            print(f"  {name:40s} {kind}")
        if not METRIC_NAME_RE.match(name):
            problems.append(
                f"{name!r} ({kind}) violates the component.noun_verb convention"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    verbose = "-v" in argv or "--verbose" in argv
    try:
        run_workload()
    except Exception:
        print("check_metrics: workload failed (kind conflict or regression?):")
        traceback.print_exc()
        return 2

    from repro.obs.metrics import get_registry

    if verbose:
        print("registered metrics:")
    problems = check_names(verbose=verbose)
    count = len(get_registry().names())
    if problems:
        print(f"check_metrics: {len(problems)} naming violation(s) in {count} metrics:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"check_metrics: OK ({count} metrics, all names conform)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
