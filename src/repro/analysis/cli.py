"""Command line: ``python -m repro.analysis [--strict] ...``.

Exit status: 0 clean (or non-strict), 1 non-baselined findings or stale
baseline entries under ``--strict``, 2 the analyzer itself failed.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Trust-boundary / taint / lock-order / site-metric static "
            "analysis for the Always Encrypted reproduction."
        ),
    )
    parser.add_argument("--root", type=Path, default=None,
                        help="package root to scan (default: the installed src/)")
    parser.add_argument("--tests", type=Path, default=None,
                        help="tests root for fault-site coverage checks")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: <repo>/analysis-baseline.txt)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule names to run (default: all)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any non-baselined finding or stale "
                             "baseline entry")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the available rule families and exit")
    parser.add_argument("--profile", action="store_true",
                        help="print per-phase wall time (model build, shared "
                             "taint flow, each rule family)")
    parser.add_argument("--budget-seconds", type=float, default=None,
                        help="exit 1 if the total analysis wall time exceeds "
                             "this budget (the perf ratchet for CI)")
    parser.add_argument("--sarif", type=Path, default=None, metavar="OUT",
                        help="also write the findings as a SARIF 2.1.0 log")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="also print suppressed (baselined) findings")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        from repro.analysis.config import default_config
        from repro.analysis.engine import AnalysisEngine
        from repro.analysis.rules import ALL_RULES

        if args.list_rules:
            for rule in ALL_RULES:
                doc = (sys.modules[type(rule).__module__].__doc__ or "").strip()
                first = doc.splitlines()[0] if doc else ""
                print(f"{rule.name:16s} {first}")
            return 0

        config = default_config(
            root=args.root, baseline_path=args.baseline, tests_root=args.tests
        )
        rules = ALL_RULES
        if args.rules:
            wanted = {name.strip() for name in args.rules.split(",") if name.strip()}
            rules = tuple(r for r in ALL_RULES if r.name in wanted)
            unknown = wanted - {r.name for r in rules}
            if unknown:
                print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
                return 2
        report = AnalysisEngine(config, rules).run()
        if args.sarif is not None:
            from repro.analysis.sarif import write_sarif

            write_sarif(args.sarif, report, rules)
    except Exception:
        print("repro.analysis: internal error:", file=sys.stderr)
        traceback.print_exc()
        return 2

    for finding in report.new:
        print(finding.format())
    if args.verbose:
        for finding in report.suppressed:
            print(f"{finding.format()}  [baselined]")
    for entry in report.stale_baseline:
        print(
            f"{config.baseline_path}:{entry.lineno}: stale baseline entry "
            f"{entry.fingerprint!r} matches no current finding — delete it"
        )

    if args.profile:
        for phase, seconds in report.timings.items():
            print(f"repro.analysis: profile {phase:16s} {seconds * 1000:8.1f} ms")
        print(f"repro.analysis: profile {'total':16s} "
              f"{report.total_seconds * 1000:8.1f} ms")

    counts = report.per_rule_counts()
    summary = ", ".join(
        f"{rule.name}={counts.get(rule.name, 0)}" for rule in rules
    )
    print(
        f"repro.analysis: {len(report.new)} finding(s) "
        f"({summary}); {len(report.suppressed)} baselined, "
        f"{len(report.stale_baseline)} stale baseline entr"
        f"{'y' if len(report.stale_baseline) == 1 else 'ies'}"
    )
    if args.budget_seconds is not None and report.total_seconds > args.budget_seconds:
        print(
            f"repro.analysis: wall time {report.total_seconds:.2f}s exceeds "
            f"the {args.budget_seconds:.2f}s budget",
            file=sys.stderr,
        )
        return 1
    if args.strict and (report.new or report.stale_baseline):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
