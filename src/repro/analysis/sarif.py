"""SARIF 2.1.0 export of an analysis :class:`~repro.analysis.engine.Report`.

One run, one tool (``repro.analysis``), one rule descriptor per rule
family. New findings are ``error``-level results; baselined findings are
emitted too, carried with a ``suppressions`` entry (SARIF's native way to
say "known and accepted") so the artifact is the *whole* truth of a run,
not just the failing part. ``partialFingerprints`` carries the same
line-free ``rule|path|symbol|key`` quadruple the baseline file uses, so
a SARIF consumer dedupes across edits exactly like the ratchet does.

The output is deliberately minimal — only properties the viewers
(GitHub code scanning, VS Code SARIF viewer) actually consume — and is
kept byte-stable for a given report: dict order follows finding order,
which the engine sorts.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule) -> dict:
    doc = (sys.modules[type(rule).__module__].__doc__ or "").strip()
    first = doc.splitlines()[0] if doc else rule.name
    return {
        "id": rule.name,
        "shortDescription": {"text": first},
    }


def _result(finding, suppressed: bool) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": "note" if suppressed else "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(finding.line, 1)},
                },
                "logicalLocations": [{"fullyQualifiedName": finding.symbol}],
            }
        ],
        "partialFingerprints": {"reproAnalysis/v1": finding.fingerprint},
    }
    if suppressed:
        result["suppressions"] = [
            {"kind": "external", "justification": "baselined in analysis-baseline.txt"}
        ]
    return result


def to_sarif(report, rules) -> dict:
    """The SARIF log dict for one engine run."""
    results = [_result(f, suppressed=False) for f in report.new]
    results += [_result(f, suppressed=True) for f in report.suppressed]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "https://example.invalid/repro-analysis",
                        "rules": [_rule_descriptor(r) for r in rules],
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(path: Path, report, rules) -> None:
    path = Path(path)
    path.write_text(
        json.dumps(to_sarif(report, rules), indent=2) + "\n", encoding="utf-8"
    )
