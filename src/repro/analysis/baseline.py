"""The committed baseline: grandfathered findings with justifications.

Format — one entry per line::

    <fingerprint>    # one-line justification

Fingerprints are ``rule|path|symbol|key`` (no line numbers, so entries
survive unrelated edits). Blank lines and lines starting with ``#`` are
comments. The mechanism is a ratchet:

* a finding whose fingerprint is baselined is *suppressed* (reported as
  such, never fails the build);
* a baseline entry matching **no** current finding is *stale* — the code
  it excused is gone, so ``--strict`` fails until the entry is deleted.
  Baselines only shrink; they never silently accumulate dead weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    justification: str
    lineno: int


@dataclass
class BaselineResult:
    new: list
    suppressed: list
    stale: list  # BaselineEntry with no matching finding


def load_baseline(path: Path | None) -> list:
    """Parse entries; a missing file is an empty baseline."""
    if path is None or not Path(path).is_file():
        return []
    entries = []
    for lineno, raw in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fingerprint, _, justification = line.partition("#")
        entries.append(BaselineEntry(
            fingerprint=fingerprint.strip(),
            justification=justification.strip(),
            lineno=lineno,
        ))
    return entries


def apply_baseline(findings: list, entries: list) -> BaselineResult:
    """Split findings into new vs suppressed; surface stale entries."""
    by_fingerprint: dict[str, BaselineEntry] = {e.fingerprint: e for e in entries}
    matched: set[str] = set()
    new: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        entry = by_fingerprint.get(finding.fingerprint)
        if entry is not None:
            matched.add(entry.fingerprint)
            suppressed.append(finding)
        else:
            new.append(finding)
    stale = [e for e in entries if e.fingerprint not in matched]
    return BaselineResult(new=new, suppressed=suppressed, stale=stale)
