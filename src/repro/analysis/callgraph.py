"""The project call graph: who calls whom, resolved through imports.

Built once per :class:`~repro.analysis.model.ProjectModel` (memoized in
``model.caches``) and shared by every rule family that reasons across
function boundaries — the interprocedural taint engine, and anything
else that needs "which function does this call land in".

Resolution is deliberately conservative and purely syntactic. A call is
resolved to at most **one** project function or class; anything
ambiguous resolves to ``None`` and the caller treats it as opaque
(taint rules launder through opaque calls, exactly like the old
intra-procedural engine did for every call). The resolution ladder for
a call with parts ``(p0, …, pn)``:

* ``f()`` — a module-level function ``f`` in the same module; else an
  import binding (``from x import f``) pointing at a project function
  or class; else the *unique-name fallback* (exactly one definition of
  ``f`` anywhere in the model, name not on the builtin-collision
  denylist).
* ``self.m()`` / ``cls.m()`` — method ``m`` of the enclosing class.
* ``alias.m()`` — ``alias`` resolved through the configured
  receiver-alias table (``self._wal.flush()`` →
  ``WriteAheadLog.flush``); the same table the lock-order rule uses.
* ``mod.f()`` / ``pkg.mod.f()`` — ``mod`` resolved through import
  bindings to a project module, then ``f`` looked up there.
* anything else (chained calls, opaque receivers) — unresolved.

Classes resolve too: a call landing on a project class is a
*construction* (taint treats it as container packing — any tainted
argument taints the instance).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.model import CALL_MARK, ProjectModel

__all__ = ["CallGraph", "FunctionEntry", "ClassEntry", "get_callgraph"]

#: method names excluded from unique-name fallback resolution: they
#: collide with builtin container/threading methods, so a lone project
#: definition of e.g. ``append`` must not capture every ``list.append``.
FALLBACK_DENYLIST = frozenset({
    "acquire", "add", "append", "clear", "close", "copy", "count",
    "discard", "extend", "format", "get", "index", "insert", "items",
    "join", "keys", "notify", "notify_all", "pop", "popitem", "put",
    "release", "remove", "run", "send", "set", "setdefault", "sort",
    "split", "start", "stop", "update", "values", "wait", "write",
})


@dataclass
class FunctionEntry:
    """One project function/method the graph can resolve calls to."""

    fid: str                      # "module:qualname"
    module: str
    qualname: str                 # "f" or "Cls.meth" (or nested)
    node: object                  # ast.FunctionDef / AsyncFunctionDef
    class_name: str | None
    path: str
    #: parameter names in call-site order (``self``/``cls`` dropped),
    #: keyword-only names included at the tail.
    params: tuple = ()
    callers: set = field(default_factory=set)   # fids calling this one
    callees: set = field(default_factory=set)   # fids this one calls


@dataclass(frozen=True)
class ClassEntry:
    cid: str                      # "module:ClassName"
    module: str
    name: str


def _param_names(node) -> tuple:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    names.extend(a.arg for a in args.kwonlyargs)
    return tuple(names)


def _owning_class(scope: str, info) -> str | None:
    for part in scope.split("."):
        if part in info.classes:
            return part
    return None


class CallGraph:
    """Call resolution over one :class:`ProjectModel`."""

    def __init__(self, model: ProjectModel, config):
        self.model = model
        self.config = config
        self.functions: dict[str, FunctionEntry] = {}
        self.classes: dict[str, ClassEntry] = {}
        # module -> local binding name -> ("func", fid) | ("class", cid)
        #                                | ("module", modname)
        self._bindings: dict[str, dict] = {}
        # method/function final name -> fid, only when the definition is
        # unique project-wide (None marks "seen more than once")
        self._unique: dict[str, str | None] = {}
        self._receiver_aliases = dict(config.lock_order.receiver_aliases)
        self._build()

    # ------------------------------------------------------------------ build

    def _build(self) -> None:
        model = self.model
        for modname, info in model.modules.items():
            path = model.relpath(info)
            for class_name in info.classes:
                cid = f"{modname}:{class_name}"
                self.classes[cid] = ClassEntry(cid=cid, module=modname, name=class_name)
            for qualname, node in info.functions.items():
                fid = f"{modname}:{qualname}"
                parts = qualname.split(".")
                class_name = parts[0] if parts[0] in info.classes and len(parts) > 1 else None
                entry = FunctionEntry(
                    fid=fid, module=modname, qualname=qualname, node=node,
                    class_name=class_name, path=path, params=_param_names(node),
                )
                self.functions[fid] = entry
                final = parts[-1]
                if final in self._unique:
                    self._unique[final] = None  # ambiguous
                else:
                    self._unique[final] = fid

        for modname, info in model.modules.items():
            self._bindings[modname] = self._module_bindings(modname, info)

        # call edges (callers/callees), one linear walk per function body
        for fid, entry in self.functions.items():
            info = model.modules[entry.module]
            scope = entry.qualname
            for node in ast.walk(entry.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self.resolve_call(entry.module, scope, node.func)
                if isinstance(resolved, FunctionEntry):
                    entry.callees.add(resolved.fid)
                    resolved.callers.add(fid)

    def _module_bindings(self, modname: str, info) -> dict:
        bindings: dict[str, tuple] = {}
        for imp in info.imports:
            if imp.type_checking:
                continue
            bound = imp.asname or (imp.name if imp.name else imp.module.split(".")[0])
            if imp.name is None:
                # ``import x.y`` binds "x" (or asname binds the full path)
                target = imp.module if imp.asname else imp.module.split(".")[0]
                if self._is_module(target):
                    bindings[bound] = ("module", target)
                continue
            # ``from m import name``: a submodule, function, or class of m
            sub = f"{imp.module}.{imp.name}"
            if self._is_module(sub):
                bindings[bound] = ("module", sub)
            elif imp.module in self.model.modules:
                target_info = self.model.modules[imp.module]
                if imp.name in target_info.functions:
                    bindings[bound] = ("func", f"{imp.module}:{imp.name}")
                elif imp.name in target_info.classes:
                    bindings[bound] = ("class", f"{imp.module}:{imp.name}")
        return bindings

    def _is_module(self, name: str) -> bool:
        return name in self.model.modules

    # ---------------------------------------------------------------- resolve

    def lookup(self, modname: str, name: str):
        """Resolve a bare name in a module to a function/class entry."""
        info = self.model.modules.get(modname)
        if info is None:
            return None
        if name in info.functions and "." not in name:
            return self.functions.get(f"{modname}:{name}")
        if name in info.classes:
            return self.classes.get(f"{modname}:{name}")
        binding = self._bindings.get(modname, {}).get(name)
        if binding is not None:
            kind, target = binding
            if kind == "func":
                return self.functions.get(target)
            if kind == "class":
                return self.classes.get(target)
        return None

    def method(self, modname: str, class_name: str, method_name: str):
        """Resolve ``Class.method`` in a module (no inheritance walk)."""
        return self.functions.get(f"{modname}:{class_name}.{method_name}")

    def resolve_call(self, modname: str, scope: str, func_expr):
        """Resolve a call expression to a FunctionEntry, ClassEntry or None.

        ``func_expr`` may be an ``ast.expr`` (the ``Call.func``) or an
        already-flattened part tuple.
        """
        if isinstance(func_expr, tuple):
            parts = func_expr
        else:
            from repro.analysis.model import flatten_parts

            parts = flatten_parts(func_expr)
        if not parts or CALL_MARK in parts or "?" in parts:
            return None
        info = self.model.modules.get(modname)
        if info is None:
            return None

        if len(parts) == 1:
            resolved = self.lookup(modname, parts[0])
            if resolved is not None:
                return resolved
            return self._unique_fallback(parts[0])

        receiver, final = parts[:-1], parts[-1]

        # self.m() / cls.m() → the enclosing class's method
        if receiver in (("self",), ("cls",)):
            class_name = _owning_class(scope, info)
            if class_name is not None:
                entry = self.method(modname, class_name, final)
                if entry is not None:
                    return entry
            return self._unique_fallback(final)

        # receiver-alias table: self._wal.flush() → WriteAheadLog.flush
        alias = self._receiver_aliases.get(receiver[-1])
        if alias is not None:
            alias_mod, _, alias_cls = alias.rpartition(".")
            entry = self.method(alias_mod, alias_cls, final)
            if entry is not None:
                return entry
            return None  # aliased but method unknown: opaque, not fallback

        # module-qualified calls: mod.f(), pkg.mod.f(), Alias.Class(...)
        binding = self._bindings.get(modname, {}).get(receiver[0])
        if binding is not None and binding[0] == "module":
            target_mod = binding[1]
            rest = receiver[1:]
            while rest and self._is_module(f"{target_mod}.{rest[0]}"):
                target_mod = f"{target_mod}.{rest[0]}"
                rest = rest[1:]
            if not rest:
                target_info = self.model.modules.get(target_mod)
                if target_info is not None:
                    if final in target_info.functions:
                        return self.functions.get(f"{target_mod}:{final}")
                    if final in target_info.classes:
                        return self.classes.get(f"{target_mod}:{final}")
            elif len(rest) == 1:
                # mod.Class.method or mod.Class(...) nested one level
                entry = self.method(target_mod, rest[0], final)
                if entry is not None:
                    return entry
            return None

        # ClassName.method() on a locally known class
        if len(receiver) == 1:
            local = self.lookup(modname, receiver[0])
            if isinstance(local, ClassEntry):
                return self.method(local.module, local.name, final)

        return self._unique_fallback(final)

    def _unique_fallback(self, name: str):
        if name in FALLBACK_DENYLIST:
            return None
        fid = self._unique.get(name)
        return self.functions.get(fid) if fid else None


def get_callgraph(model: ProjectModel, config) -> CallGraph:
    """The memoized call graph for this model (built on first use)."""
    graph = model.caches.get("callgraph")
    if graph is None:
        graph = CallGraph(model, config)
        model.caches["callgraph"] = graph
    return graph
