"""Interprocedural plaintext-taint dataflow, shared by the taint rules.

The old engine (PR 4) tracked decrypt results inside one function at a
time: a helper that merely *returns* ``crypto.decrypt(cell)`` hid the
flow from every caller. This module upgrades the analysis to
whole-program information flow à la "Information Flows in Encrypted
Databases":

* every project function gets a **taint signature** — does it return a
  source-tainted value, which parameters propagate to its return value,
  which parameters reach a sink inside it;
* signatures are computed to a **fixpoint** over the call graph
  (:mod:`repro.analysis.callgraph`): when a function's signature grows,
  its callers are re-analyzed, bounded per function so recursion and
  adversarial chains terminate;
* the per-function pass simultaneously records **events** — concrete
  source-tainted values reaching a sink or a ``return`` — which the
  rule families (``plaintext-taint``, ``wire-egress``) turn into
  findings. One flow pass feeds every taint rule; nothing re-walks.

Origins are sets: ``"S"`` marks "derived from a decrypt source", an
integer marks "derived from parameter *i*". A value reaching a sink
with ``"S"`` is a finding *here*; with ``{i}`` it becomes part of the
signature and surfaces at call sites that pass tainted arguments
(``…-sink-via:<callee>`` keys).

Laundering is unchanged from PR 4: passing a value through an
*unresolved* call cleanses it, declared sanitizers (``encrypt_cell`` …)
cleanse even when resolved, comparison verdicts are conceded leakage,
and whole packages (``repro.crypto``) are summary-opaque — the crypto
layer is the sanctioned boundary, its internals must not propagate
plaintext signatures outward. Project *classes* are the opposite:
construction packs arguments into the instance (dataclass field
assignment), so a tainted constructor argument taints the object.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import ClassEntry, FunctionEntry, get_callgraph
from repro.analysis.model import ProjectModel, flatten_parts

__all__ = ["Event", "TaintFlow", "TaintSummary", "get_taintflow"]

SOURCE = "S"

_EMPTY: frozenset = frozenset()
_SRC: frozenset = frozenset((SOURCE,))


@dataclass(frozen=True)
class TaintSummary:
    """One function's taint signature."""

    returns_source: bool = False
    #: parameter indices whose taint reaches the return value
    param_returns: frozenset = _EMPTY
    #: (param index, sink kind, sink name) triples reached inside
    param_sinks: frozenset = _EMPTY


_CLEAN = TaintSummary()


@dataclass(frozen=True)
class Event:
    """A source-tainted value reaching an egress, reported by rules."""

    etype: str      # "sink" | "sink-via" | "return"
    kind: str       # "log" | "metric" | "trace" | "wire" | "error-reply" | ""
    name: str       # sink callee name, or via-callee name
    lineno: int
    module: str
    scope: str
    path: str


class _FunctionPass:
    """One origins-tracking walk over a single function body."""

    def __init__(self, flow: "TaintFlow", entry: FunctionEntry):
        self.flow = flow
        self.entry = entry
        self.cfg = flow.taint_cfg
        self.origins: dict[str, frozenset] = {
            name: frozenset((index,)) for index, name in enumerate(entry.params)
        }
        self.events: list[Event] = []
        self.returns_source = False
        self.param_returns: set = set()
        self.param_sinks: set = set()

    # ----------------------------------------------------------- expressions

    def expr_origins(self, node) -> frozenset:
        if node is None or isinstance(node, ast.Constant):
            return _EMPTY
        if isinstance(node, ast.Name):
            return self.origins.get(node.id, _EMPTY)
        if isinstance(node, ast.Attribute):
            dotted = ".".join(flatten_parts(node))
            return self.origins.get(dotted, _EMPTY) | self.expr_origins(node.value)
        if isinstance(node, ast.Call):
            return self.call_origins(node)
        if isinstance(node, ast.BinOp):
            return self.expr_origins(node.left) | self.expr_origins(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.expr_origins(node.operand)
        if isinstance(node, ast.BoolOp):
            out = _EMPTY
            for value in node.values:
                out |= self.expr_origins(value)
            return out
        if isinstance(node, ast.IfExp):
            self.expr_origins(node.test)
            return self.expr_origins(node.body) | self.expr_origins(node.orelse)
        if isinstance(node, ast.JoinedStr):
            out = _EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.expr_origins(value.value)
            return out
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = _EMPTY
            for element in node.elts:
                out |= self.expr_origins(element)
            return out
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for value in node.values:
                if value is not None:
                    out |= self.expr_origins(value)
            return out
        if isinstance(node, ast.Subscript):
            return self.expr_origins(node.value)
        if isinstance(node, ast.Starred):
            return self.expr_origins(node.value)
        if isinstance(node, ast.Compare):
            # verdicts (orderings, equality) are sanctioned leakage
            self.expr_origins(node.left)
            for comparator in node.comparators:
                self.expr_origins(comparator)
            return _EMPTY
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.expr_origins(node.elt)
        if isinstance(node, ast.DictComp):
            return self.expr_origins(node.value)
        if isinstance(node, ast.Await):
            return self.expr_origins(node.value)
        return _EMPTY

    def call_origins(self, call: ast.Call) -> frozenset:
        parts = flatten_parts(call.func)
        final = parts[-1] if parts else ""
        arg_origins = [self.expr_origins(a) for a in call.args]
        kw_origins = [(kw.arg, self.expr_origins(kw.value)) for kw in call.keywords]
        all_origins = _EMPTY
        for origin in arg_origins:
            all_origins |= origin
        for _name, origin in kw_origins:
            all_origins |= origin

        # -- direct sinks -------------------------------------------------
        kind = self.flow.sink_kinds.get(final)
        if kind is not None and all_origins:
            self.record_leak("sink", kind, final, call.lineno, all_origins)

        # -- container packing: x.append(tainted) taints x ----------------
        if final in self.cfg_packing and len(parts) > 1 and all_origins:
            receiver = ".".join(parts[:-1])
            self.origins[receiver] = self.origins.get(receiver, _EMPTY) | all_origins

        # -- result origins -----------------------------------------------
        if final in self.cfg.sources:
            return _SRC
        if final in self.flow.sanitizers:
            return _EMPTY
        if final in self.cfg.propagators:
            return all_origins

        resolved = self.flow.resolve(self.entry, call.func, parts)
        if isinstance(resolved, ClassEntry):
            # construction packs arguments into the instance
            return all_origins
        if isinstance(resolved, FunctionEntry):
            summary = self.flow.summaries.get(resolved.fid, _CLEAN)
            # map call-site arguments onto callee parameter indices
            per_param: dict[int, frozenset] = {}
            for index, origin in enumerate(arg_origins):
                per_param[index] = origin
            for name, origin in kw_origins:
                if name in resolved.params:
                    per_param[resolved.params.index(name)] = origin
            for index, sink_kind, sink_name in summary.param_sinks:
                origin = per_param.get(index, _EMPTY)
                if origin:
                    self.record_leak(
                        "sink-via", sink_kind, parts[-1], call.lineno, origin
                    )
            out = _SRC if summary.returns_source else _EMPTY
            for index in summary.param_returns:
                out |= per_param.get(index, _EMPTY)
            return out

        return _EMPTY  # unresolved calls launder

    @property
    def cfg_packing(self):
        return self.flow.packing_methods

    def record_leak(self, etype: str, kind: str, name: str, lineno: int,
                    origins: frozenset) -> None:
        if SOURCE in origins:
            self.events.append(Event(
                etype=etype, kind=kind, name=name, lineno=lineno,
                module=self.entry.module, scope=self.entry.qualname,
                path=self.entry.path,
            ))
        for origin in origins:
            if origin != SOURCE:
                self.param_sinks.add((origin, kind, name))

    # ------------------------------------------------------------ statements

    def taint_target(self, target, origins: frozenset) -> None:
        if isinstance(target, ast.Name):
            self.origins[target.id] = self.origins.get(target.id, _EMPTY) | origins
        elif isinstance(target, ast.Attribute):
            dotted = ".".join(flatten_parts(target))
            self.origins[dotted] = self.origins.get(dotted, _EMPTY) | origins
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.taint_target(element, origins)
        elif isinstance(target, ast.Starred):
            self.taint_target(target.value, origins)

    def run(self, body: list) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions are analyzed as their own entries
        if isinstance(stmt, ast.Assign):
            origins = self.expr_origins(stmt.value)
            if origins:
                for target in stmt.targets:
                    self.taint_target(target, origins)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if stmt.value is not None:
                origins = self.expr_origins(stmt.value)
                if origins:
                    self.taint_target(stmt.target, origins)
        elif isinstance(stmt, ast.Return):
            origins = self.expr_origins(stmt.value)
            if SOURCE in origins:
                self.returns_source = True
                self.events.append(Event(
                    etype="return", kind="", name="", lineno=stmt.lineno,
                    module=self.entry.module, scope=self.entry.qualname,
                    path=self.entry.path,
                ))
            for origin in origins:
                if origin != SOURCE:
                    self.param_returns.add(origin)
        elif isinstance(stmt, ast.Expr):
            self.expr_origins(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            origins = self.expr_origins(stmt.iter)
            if origins:
                self.taint_target(stmt.target, origins)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.expr_origins(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.expr_origins(stmt.test)
            self.run(stmt.body)
            self.run(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origins = self.expr_origins(item.context_expr)
                if origins and item.optional_vars is not None:
                    self.taint_target(item.optional_vars, origins)
            self.run(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run(stmt.body)
            for handler in stmt.handlers:
                self.run(handler.body)
            self.run(stmt.orelse)
            self.run(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.expr_origins(stmt.exc)

    def summary(self) -> TaintSummary:
        return TaintSummary(
            returns_source=self.returns_source,
            param_returns=frozenset(self.param_returns),
            param_sinks=frozenset(self.param_sinks),
        )


class TaintFlow:
    """Fixpoint taint signatures + leak events over one project model."""

    #: per-function re-analysis bound: depth of summary propagation chains
    #: the fixpoint will follow (recursion and pathological graphs stop here)
    MAX_VISITS = 8

    def __init__(self, model: ProjectModel, config):
        self.model = model
        self.config = config
        self.taint_cfg = config.taint
        self.interprocedural = getattr(config.taint, "interprocedural", True)
        self.graph = get_callgraph(model, config) if self.interprocedural else None
        self.sink_kinds: dict[str, str] = {}
        for name in config.taint.log_sinks:
            self.sink_kinds[name] = "log"
        for name in config.taint.metric_sinks:
            self.sink_kinds[name] = "metric"
        for name in config.taint.trace_sinks:
            self.sink_kinds[name] = "trace"
        for name in getattr(config.taint, "wire_sinks", ()):
            self.sink_kinds[name] = "wire"
        for name in getattr(config.taint, "error_reply_names", ()):
            self.sink_kinds[name] = "error-reply"
        self.sanitizers = frozenset(getattr(config.taint, "sanitizers", ()))
        self.packing_methods = frozenset(getattr(config.taint, "packing_methods", ()))
        self._opaque = tuple(getattr(config.taint, "opaque_packages", ()))
        self._boundary = frozenset(getattr(config.taint, "boundary_functions", ()))
        self.summaries: dict[str, TaintSummary] = {}
        self.events: dict[str, list] = {}
        self._analyze()

    # ---------------------------------------------------------------- engine

    def _entries(self) -> list:
        if self.graph is not None:
            entries = list(self.graph.functions.values())
        else:
            entries = []
            from repro.analysis.callgraph import FunctionEntry, _param_names

            for modname, info in self.model.modules.items():
                path = self.model.relpath(info)
                for qualname, node in info.functions.items():
                    parts = qualname.split(".")
                    class_name = (
                        parts[0] if parts[0] in info.classes and len(parts) > 1 else None
                    )
                    entries.append(FunctionEntry(
                        fid=f"{modname}:{qualname}", module=modname,
                        qualname=qualname, node=node, class_name=class_name,
                        path=path, params=_param_names(node),
                    ))
        keep = []
        for entry in entries:
            if self.model.in_packages(entry.module, self.config.packages) and \
                    not self.model.in_packages(entry.module, self._opaque):
                keep.append(entry)
        return keep

    def resolve(self, entry: FunctionEntry, func_expr, parts):
        if self.graph is None:
            return None
        return self.graph.resolve_call(entry.module, entry.qualname, parts)

    def _analyze(self) -> None:
        entries = self._entries()
        by_fid = {entry.fid: entry for entry in entries}
        visits: dict[str, int] = {}
        pending = list(entries)
        queued = set(by_fid)
        while pending:
            entry = pending.pop(0)
            queued.discard(entry.fid)
            if visits.get(entry.fid, 0) >= self.MAX_VISITS:
                continue
            visits[entry.fid] = visits.get(entry.fid, 0) + 1
            function_pass = _FunctionPass(self, entry)
            function_pass.run(entry.node.body)
            self.events[entry.fid] = function_pass.events
            new = function_pass.summary()
            if entry.fid in self._boundary:
                # sanctioned plaintext boundary: the runtime gate (not the
                # type system) keeps this flow inside the trusted context,
                # so its signature must not propagate to callers. The
                # function's own findings still report (and get baselined).
                new = TaintSummary(
                    returns_source=False,
                    param_returns=new.param_returns,
                    param_sinks=new.param_sinks,
                )
            if new != self.summaries.get(entry.fid, _CLEAN):
                self.summaries[entry.fid] = new
                if self.graph is not None:
                    for caller in self.graph.functions[entry.fid].callers:
                        if caller in by_fid and caller not in queued:
                            pending.append(by_fid[caller])
                            queued.add(caller)

    # ----------------------------------------------------------------- reads

    def module_events(self, modname: str) -> list:
        """All events from functions defined in ``modname``."""
        out = []
        for fid, events in self.events.items():
            if fid.split(":", 1)[0] == modname:
                out.extend(events)
        return out


def get_taintflow(model: ProjectModel, config) -> TaintFlow:
    """The memoized flow analysis for this model (built on first use)."""
    flow = model.caches.get("taintflow")
    if flow is None:
        flow = TaintFlow(model, config)
        model.caches["taintflow"] = flow
    return flow
