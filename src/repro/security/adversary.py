"""The strong adversary of Section 2.6, as an executable observer.

The adversary "has unbounded power over the SQL Server process": it reads
the server's memory and disk at every instant, sees all internal and
external communication, and can tamper with it. It cannot observe state or
computation inside the enclave.

We realize this as a set of taps over exactly the surfaces the paper
grants: the disk, the WAL, the buffer pool, the wire (queries with their
already-encrypted parameters, results), and the enclave *boundary* (every
ecall's visible inputs and outputs — including the cleartext comparison
results the paper identifies as the leakage of enclave processing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.server import SqlServer


@dataclass
class BoundaryEvent:
    """One observed enclave boundary crossing."""

    ecall: str
    visible_inputs: tuple
    visible_output: object


@dataclass
class WireEvent:
    """One observed client↔server exchange."""

    query_text: str
    params: dict[str, object]
    result_rows: int


@dataclass
class FrameEvent:
    """One serialized frame on the real byte-level wire.

    What a network observer captures per message: direction, the opcode
    byte, and the raw frame (header + encoded payload, ciphertext and
    all). Recorded by the tap a :class:`~repro.net.transport.FrameChannel`
    accepts — the sharded deployment's equivalent of the session tap.
    """

    direction: str      # "send" | "recv", from the tapped endpoint's view
    opcode: int
    frame: bytes


@dataclass
class StrongAdversary:
    """Observes an attached server; accumulates everything it may see."""

    boundary_events: list[BoundaryEvent] = field(default_factory=list)
    wire_events: list[WireEvent] = field(default_factory=list)
    frame_events: list[FrameEvent] = field(default_factory=list)
    _server: SqlServer | None = None

    # -- attachment ----------------------------------------------------------

    def attach(self, server: SqlServer) -> None:
        """Tap the server: the enclave boundary and the session wire."""
        self._server = server
        if server.enclave is not None:
            server.enclave.add_boundary_observer(self._on_boundary)
        original_connect = server.connect

        def tapped_connect():
            session = original_connect()
            original_execute = session.execute

            def tapped_execute(query_text, params=None):
                result = original_execute(query_text, params)
                self.wire_events.append(
                    WireEvent(
                        query_text=query_text,
                        params=dict(params or {}),
                        result_rows=len(getattr(result, "rows", []) or []),
                    )
                )
                return result

            session.execute = tapped_execute  # type: ignore[method-assign]
            return session

        server.connect = tapped_connect  # type: ignore[method-assign]

    def wire_tap(self):
        """A :data:`~repro.net.transport.FrameTap` recording every frame.

        Pass to :class:`~repro.net.wireserver.WireServer` (or a
        :class:`~repro.net.transport.FrameChannel` directly) to watch the
        serialized bytes of the socket deployment. The tap is additive:
        the session-level :meth:`attach` observations are unchanged, so
        serialization must not alter the accounted leakage.
        """

        def tap(direction: str, opcode: int, frame: bytes) -> None:
            self.frame_events.append(
                FrameEvent(direction=direction, opcode=opcode, frame=frame)
            )

        return tap

    def _on_boundary(self, name: str, visible_inputs: tuple, visible_output: object) -> None:
        self.boundary_events.append(
            BoundaryEvent(ecall=name, visible_inputs=visible_inputs, visible_output=visible_output)
        )

    # -- rollback attacks (the adversary owns disk, log, and backups) ---------

    def take_snapshot(self, action: "object | None" = None):
        """Back up the attached server through a rollback action.

        ``action`` is any :class:`~repro.faults.rollback.RollbackAction`
        (default :class:`~repro.faults.rollback.RestoreSnapshot` — the
        whole-database backup); it is captured against the server's
        engine and returned, ready to :meth:`mount_attack` or
        :meth:`restore_snapshot` directly.
        """
        from repro.faults.rollback import RestoreSnapshot

        assert self._server is not None
        if action is None:
            action = RestoreSnapshot()
        action.capture(self._server.engine)
        return action

    def mount_attack(self, action, site: str, schedule) -> "object":
        """Arm a captured rollback action at a fault site.

        When ``schedule`` fires at ``site``, the action swaps its stale
        snapshot back in and force-crashes the server — the in-framework
        form of "power off, restore backup, power on". Returns the
        :class:`~repro.faults.registry.ArmedFault` for disarming.
        """
        from repro.faults.registry import get_fault_registry

        return get_fault_registry().arm(site, schedule, action)

    def restore_snapshot(self, action) -> None:
        """Swap a captured snapshot back in immediately (no crash); the
        caller chooses when to crash and reboot the server."""
        action.restore()

    # -- what the adversary can read directly ---------------------------------

    def disk_bytes(self) -> bytes:
        assert self._server is not None
        self._server.engine.pool.flush_all()
        return self._server.engine.disk.raw_bytes()

    def log_records(self):
        assert self._server is not None
        return self._server.engine.wal.adversary_view()

    def memory_cells(self) -> list[object]:
        """Every cell currently reachable in server memory (buffer pool)."""
        assert self._server is not None
        cells: list[object] = []
        for table in self._server.engine.tables.values():
            for __, row in table.heap.scan():
                cells.extend(row)
        return cells

    # -- analysis helpers -------------------------------------------------------

    def observed_comparison_results(self) -> list[tuple]:
        """(cek, left ct, right ct, result) from 'compare' and
        'compare_batch' ecalls — the ordering information leaked by range
        processing. A batch event carries (cek, probe, candidates) with a
        tuple of per-pair results and expands to one entry per pair: the
        batch shape amortizes cost, the per-pair verdicts are identical to
        what single compares would have shown."""
        out = []
        for event in self.boundary_events:
            if event.ecall == "compare":
                cek, left, right = event.visible_inputs
                out.append((cek, left, right, event.visible_output))
            elif event.ecall == "compare_batch":
                cek, probe, candidates = event.visible_inputs
                for candidate, result in zip(candidates, event.visible_output):
                    out.append((cek, probe, candidate, result))
        return out

    def observed_eval_results(self) -> list[tuple]:
        """(handle, inputs, outputs) from 'eval' and 'eval_batch' ecalls —
        predicate bits. Batch events expand to one entry per row."""
        out = []
        for event in self.boundary_events:
            if event.ecall == "eval":
                out.append(
                    (event.visible_inputs[0], event.visible_inputs[1], event.visible_output)
                )
            elif event.ecall == "eval_batch":
                handle, rows = event.visible_inputs
                for row_inputs, row_outputs in zip(rows, event.visible_output):
                    out.append((handle, row_inputs, row_outputs))
        return out

    def leakage_summary(self) -> dict[str, dict[str, int]]:
        """The leakage ledger's per-column view of what this adversary can
        observe: DET equality verdicts, RND comparison verdicts, and index
        access patterns, keyed ``{column: {kind: count}}``.

        The ledger is fed by the instrumented comparators and B+-trees —
        the same call sites whose boundary events land in
        :attr:`boundary_events` — so this is the *accounted* leakage to
        cross-check against the raw observation streams above.
        """
        from repro.obs.leakage import get_leakage_accountant

        return get_leakage_accountant().snapshot()

    def plaintext_exposures(self, secrets: list[bytes]) -> list[str]:
        """Check every adversary-visible surface for the given plaintext
        byte strings; returns the names of surfaces where any appears.

        This is the test that the operational guarantee holds: the
        plaintext of encrypted cells must never show up on any surface.
        """
        surfaces: list[str] = []
        disk = self.disk_bytes()
        if any(secret in disk for secret in secrets):
            surfaces.append("disk")
        log_blob = b"".join(
            (record.before or b"") + (record.after or b"")
            for record in self.log_records()
        )
        if any(secret in log_blob for secret in secrets):
            surfaces.append("log")
        for cell in self.memory_cells():
            if isinstance(cell, Ciphertext):
                continue
            blob = repr(cell).encode()
            if any(secret in blob for secret in secrets):
                surfaces.append("memory")
                break
        for event in self.wire_events:
            blob = repr(event.params).encode()
            if any(secret in blob for secret in secrets):
                surfaces.append("wire-params")
                break
        for event in self.frame_events:
            if any(secret in event.frame for secret in secrets):
                surfaces.append("wire-frames")
                break
        return surfaces
