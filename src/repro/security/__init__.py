"""Security analysis: the strong adversary and the Figure 5 leakage table."""

from repro.security.adversary import BoundaryEvent, StrongAdversary, WireEvent
from repro.security.leakage import (
    FIGURE5_ROWS,
    OrderReconstruction,
    ProximityLeak,
    det_frequency_distribution,
    encryption_oracle_access,
    like_scan_predicate_bits,
    prefix_match_proximity,
    reconstruct_order,
)

__all__ = [
    "BoundaryEvent",
    "FIGURE5_ROWS",
    "OrderReconstruction",
    "ProximityLeak",
    "StrongAdversary",
    "WireEvent",
    "det_frequency_distribution",
    "encryption_oracle_access",
    "like_scan_predicate_bits",
    "prefix_match_proximity",
    "reconstruct_order",
]
