"""Leakage analysis — Figure 5 of the paper, made executable.

Each operation class leaks a characteristic function of the data to the
strong adversary; this module implements the *attacks* that realize those
leakages from adversary observations, so the Figure 5 table can be
regenerated as measured facts rather than assertions:

* DET comparisons → the frequency distribution over values (group
  ciphertexts by byte equality);
* RND comparisons via the enclave → the ordering over values (accumulate
  comparison outcomes and sort);
* LIKE via scan → one unknown-predicate bit per row;
* LIKE via a range index (prefix match) → ordering plus proximity (the
  fact that a contiguous run of keys shares a prefix);
* encryption DDL → an encryption oracle, available only with client
  authorization.
"""

from __future__ import annotations

import functools
from collections import Counter
from dataclasses import dataclass

from repro.security.adversary import StrongAdversary
from repro.sqlengine.cells import Ciphertext

FIGURE5_ROWS: list[tuple[str, str]] = [
    ("Comparison (DET)", "Frequency distribution over values"),
    ("Comparison (RND)", "Ordering over values"),
    ("LIKE predicate using scans", "Unknown predicate over values"),
    (
        "LIKE predicate using an index (i.e. prefix matches)",
        "Ordering over values plus some information about proximity",
    ),
    (
        "DDL to encrypt data",
        "Limited access to encryption oracle only with client authorization",
    ),
]


def det_frequency_distribution(ciphertexts: list[Ciphertext]) -> list[int]:
    """The DET attack: the multiset of value frequencies, no keys needed.

    Returns the sorted frequency histogram, which equals the plaintext
    column's histogram — exactly the leakage the paper attributes to DET.
    """
    counts = Counter(ct.envelope for ct in ciphertexts)
    return sorted(counts.values(), reverse=True)


@dataclass
class OrderReconstruction:
    """Result of the ordering attack against enclave comparisons."""

    ordered_envelopes: list[bytes]   # distinct ciphertexts, ascending
    comparisons_used: int


def reconstruct_order(adversary: StrongAdversary, cek_name: str) -> OrderReconstruction:
    """The RND-range attack: rebuild the plaintext ordering of ciphertexts
    from the cleartext comparison results crossing the enclave boundary.

    An index build sorts the data, so after observing one build the
    adversary knows the total order of all indexed ciphertexts — the
    paper's "index build requires sorting of data that reveals the data
    ordering".
    """
    observed = adversary.observed_comparison_results()
    less_than: dict[bytes, set[bytes]] = {}
    envelopes: set[bytes] = set()
    used = 0
    for cek, left, right, result in observed:
        if cek != cek_name:
            continue
        used += 1
        a, b = left.envelope, right.envelope
        envelopes.add(a)
        envelopes.add(b)
        if result < 0:
            less_than.setdefault(a, set()).add(b)
        elif result > 0:
            less_than.setdefault(b, set()).add(a)

    # The observed relation is partial (a sort performs O(n log n) of the
    # O(n^2) comparisons); take its transitive closure so every derivable
    # pair is ordered, then topologically sort.
    reach: dict[bytes, set[bytes]] = {}

    def reachable(node: bytes) -> set[bytes]:
        cached = reach.get(node)
        if cached is not None:
            return cached
        reach[node] = set()  # cycle guard (no cycles in a valid ordering)
        out: set[bytes] = set()
        for nxt in less_than.get(node, ()):
            out.add(nxt)
            out |= reachable(nxt)
        reach[node] = out
        return out

    for env in envelopes:
        reachable(env)

    def compare(a: bytes, b: bytes) -> int:
        if a == b:
            return 0
        if b in reach.get(a, ()):
            return -1
        if a in reach.get(b, ()):
            return 1
        return 0  # genuinely unobserved pair

    ordered = sorted(envelopes, key=functools.cmp_to_key(compare))
    return OrderReconstruction(ordered_envelopes=ordered, comparisons_used=used)


def like_scan_predicate_bits(adversary: StrongAdversary) -> list[list[bool]]:
    """The LIKE-by-scan leakage: for each scan evaluation batch, which rows
    satisfied the (unknown) predicate — one boolean per enclave eval."""
    batches: dict[int, list[bool]] = {}
    for handle, __, outputs in adversary.observed_eval_results():
        verdict = outputs[0]
        if isinstance(verdict, bool):
            batches.setdefault(handle, []).append(verdict)
    return list(batches.values())


@dataclass
class ProximityLeak:
    """What a prefix-match via the index reveals beyond ordering."""

    matched_run_length: int      # contiguous keys sharing the prefix
    run_position: int            # where the run sits in the total order


def prefix_match_proximity(
    ordered_envelopes: list[bytes], matched: set[bytes]
) -> ProximityLeak:
    """Given a known ordering and the set of ciphertexts a prefix query
    touched, the adversary learns that a *contiguous run* of values shares
    a prefix — ordering plus proximity (Figure 5, row 4)."""
    positions = sorted(
        i for i, envelope in enumerate(ordered_envelopes) if envelope in matched
    )
    if not positions:
        return ProximityLeak(matched_run_length=0, run_position=-1)
    return ProximityLeak(
        matched_run_length=len(positions),
        run_position=positions[0],
    )


def encryption_oracle_access(adversary: StrongAdversary) -> dict[str, int]:
    """How often the encryption oracle was exercised, and whether any use
    happened without client authorization (it cannot: unauthorized calls
    raise before the boundary observer fires on the success path)."""
    authorized = sum(
        1
        for e in adversary.boundary_events
        if e.ecall in ("encrypt_for_ddl", "recrypt_for_ddl", "decrypt_for_ddl")
    )
    return {"authorized_uses": authorized}
