"""Column encryption keys (CEKs) — the first level of AE's key hierarchy.

A CEK is a 32-byte AES root key that encrypts column data via
``AEAD_AES_256_CBC_HMAC_SHA_256``. It is stored in the database *encrypted
under a CMK* (RSA-OAEP) together with a signature protecting the encrypted
value. During a CMK rotation a CEK may temporarily carry two encrypted
values — one under the old CMK and one under the new — so clients holding
either CMK keep working with no downtime (Section 2.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.aead import KEY_SIZE, generate_cek_material
from repro.errors import KeyError_, SecurityViolation
from repro.keys.cmk import ColumnMasterKey
from repro.keys.providers import KeyProvider, KeyProviderRegistry

RSA_OAEP = "RSA_OAEP"


def _encrypted_value_message(cmk_key_path: str, algorithm: str, encrypted_value: bytes) -> bytes:
    return (
        b"CEK-ENCRYPTED-VALUE\x00"
        + cmk_key_path.upper().encode()
        + b"\x00"
        + algorithm.upper().encode()
        + b"\x00"
        + encrypted_value
    )


@dataclass(frozen=True)
class CekEncryptedValue:
    """One encryption of a CEK under one CMK, plus its protecting signature."""

    column_master_key_name: str
    algorithm: str
    encrypted_value: bytes
    signature: bytes

    @classmethod
    def create(
        cls,
        cmk: ColumnMasterKey,
        provider: KeyProvider,
        key_material: bytes,
        algorithm: str = RSA_OAEP,
    ) -> "CekEncryptedValue":
        if algorithm != RSA_OAEP:
            # The DDL requires an explicit algorithm for extensibility, but
            # like the shipped feature we support only RSA_OAEP today.
            raise KeyError_(f"unsupported CEK encryption algorithm {algorithm!r}")
        encrypted = provider.wrap_key(cmk.key_path, key_material)
        signature = provider.sign(
            cmk.key_path, _encrypted_value_message(cmk.key_path, algorithm, encrypted)
        )
        return cls(
            column_master_key_name=cmk.name,
            algorithm=algorithm,
            encrypted_value=encrypted,
            signature=signature,
        )

    def verify_signature(self, cmk: ColumnMasterKey, registry: KeyProviderRegistry) -> bool:
        provider = registry.get(cmk.key_store_provider_name)
        message = _encrypted_value_message(cmk.key_path, self.algorithm, self.encrypted_value)
        return provider.verify(cmk.key_path, message, self.signature)

    def decrypt(self, cmk: ColumnMasterKey, registry: KeyProviderRegistry) -> bytes:
        """Unwrap the CEK material; verifies the protecting signature first."""
        if not self.verify_signature(cmk, registry):
            raise SecurityViolation(
                f"CEK encrypted value under CMK {cmk.name!r} failed signature verification"
            )
        provider = registry.get(cmk.key_store_provider_name)
        material = provider.unwrap_key(cmk.key_path, self.encrypted_value)
        if len(material) != KEY_SIZE:
            raise KeyError_(
                f"decrypted CEK material has wrong size {len(material)} (expected {KEY_SIZE})"
            )
        return material


@dataclass
class ColumnEncryptionKey:
    """CEK metadata as stored in SQL Server: name + encrypted value(s)."""

    name: str
    encrypted_values: list[CekEncryptedValue] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        name: str,
        cmk: ColumnMasterKey,
        provider: KeyProvider,
        key_material: bytes | None = None,
    ) -> tuple["ColumnEncryptionKey", bytes]:
        """Provision a new CEK under ``cmk``; returns (metadata, raw material).

        The raw material is returned to the *client* caller only — it is
        what the client driver caches and what it installs in the enclave.
        SQL Server receives only the metadata.
        """
        material = key_material if key_material is not None else generate_cek_material()
        value = CekEncryptedValue.create(cmk, provider, material)
        return cls(name=name, encrypted_values=[value]), material

    def value_for_cmk(self, cmk_name: str) -> CekEncryptedValue:
        for value in self.encrypted_values:
            if value.column_master_key_name == cmk_name:
                return value
        raise KeyError_(f"CEK {self.name!r} has no encrypted value under CMK {cmk_name!r}")

    def cmk_names(self) -> list[str]:
        return [value.column_master_key_name for value in self.encrypted_values]

    def add_encrypted_value(self, value: CekEncryptedValue) -> None:
        """Attach a second encryption (used mid CMK-rotation)."""
        if value.column_master_key_name in self.cmk_names():
            raise KeyError_(
                f"CEK {self.name!r} already has a value under CMK "
                f"{value.column_master_key_name!r}"
            )
        self.encrypted_values.append(value)

    def drop_encrypted_value(self, cmk_name: str) -> None:
        """Drop the encryption under ``cmk_name`` (completes a CMK rotation)."""
        if len(self.encrypted_values) == 1:
            raise KeyError_(
                f"cannot drop the only encrypted value of CEK {self.name!r}"
            )
        value = self.value_for_cmk(cmk_name)
        self.encrypted_values.remove(value)
