"""Key providers: where column master keys live (Section 2.2).

SQL Server never holds CMK material — only a key-path URI naming a key
inside a provider the *client* controls. The paper lists Azure Key Vault,
the Windows certificate store, the Java key store, and HSM-rooted stores,
plus an extensible interface for custom providers. We reproduce that
surface with in-memory simulators; the Azure Key Vault simulator can model
network latency so the driver-side CEK cache experiments are meaningful.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod

from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, encrypt_oaep, verify_signature
from repro.errors import KeyProviderError

AZURE_KEY_VAULT_PROVIDER = "AZURE_KEY_VAULT_PROVIDER"
WINDOWS_CERTIFICATE_STORE_PROVIDER = "MSSQL_CERTIFICATE_STORE"
JAVA_KEY_STORE_PROVIDER = "MSSQL_JAVA_KEYSTORE"
HSM_PROVIDER = "HSM_PROVIDER"


class KeyProvider(ABC):
    """Interface every key provider implements.

    A provider holds RSA key pairs addressed by key path. ``wrap`` /
    ``unwrap`` protect CEK material with RSA-OAEP; ``sign`` / ``verify``
    protect CMK metadata with the same key material.
    """

    provider_name: str = "CUSTOM_PROVIDER"

    @abstractmethod
    def create_key(self, key_path: str, bits: int = 2048) -> RsaPublicKey:
        """Create an RSA key at ``key_path`` and return its public half."""

    @abstractmethod
    def get_public_key(self, key_path: str) -> RsaPublicKey:
        """Return the public key at ``key_path``."""

    @abstractmethod
    def wrap_key(self, key_path: str, key_material: bytes) -> bytes:
        """Encrypt CEK material under the CMK (RSA-OAEP)."""

    @abstractmethod
    def unwrap_key(self, key_path: str, wrapped: bytes) -> bytes:
        """Decrypt CEK material with the CMK private key."""

    @abstractmethod
    def sign(self, key_path: str, message: bytes) -> bytes:
        """Sign ``message`` with the CMK private key."""

    @abstractmethod
    def verify(self, key_path: str, message: bytes, signature: bytes) -> bool:
        """Verify a signature made by :meth:`sign`."""


class InMemoryKeyProvider(KeyProvider):
    """Base in-memory provider; thread-safe; optionally models latency.

    ``latency_s`` simulates the network round-trip of an external vault —
    the cost the paper says the driver's CEK cache exists to avoid.
    """

    def __init__(self, latency_s: float = 0.0):
        self._keys: dict[str, RsaKeyPair] = {}
        self._lock = threading.Lock()
        self.latency_s = latency_s
        self.call_count = 0

    def _charge(self) -> None:
        with self._lock:
            self.call_count += 1
        if self.latency_s:
            time.sleep(self.latency_s)

    def _get(self, key_path: str) -> RsaKeyPair:
        try:
            return self._keys[key_path]
        except KeyError:
            raise KeyProviderError(
                f"{self.provider_name}: no key at path {key_path!r}"
            ) from None

    def create_key(self, key_path: str, bits: int = 2048) -> RsaPublicKey:
        with self._lock:
            if key_path in self._keys:
                raise KeyProviderError(f"key already exists at {key_path!r}")
        pair = RsaKeyPair.generate(bits)
        with self._lock:
            self._keys[key_path] = pair
        return pair.public

    def get_public_key(self, key_path: str) -> RsaPublicKey:
        self._charge()
        return self._get(key_path).public

    def wrap_key(self, key_path: str, key_material: bytes) -> bytes:
        self._charge()
        return encrypt_oaep(self._get(key_path).public, key_material)

    def unwrap_key(self, key_path: str, wrapped: bytes) -> bytes:
        self._charge()
        return self._get(key_path).decrypt_oaep(wrapped)

    def sign(self, key_path: str, message: bytes) -> bytes:
        self._charge()
        return self._get(key_path).sign(message)

    def verify(self, key_path: str, message: bytes, signature: bytes) -> bool:
        self._charge()
        return verify_signature(self._get(key_path).public, message, signature)


class AzureKeyVaultSim(InMemoryKeyProvider):
    """Simulated Azure Key Vault: https key paths, network latency."""

    provider_name = AZURE_KEY_VAULT_PROVIDER

    def __init__(self, latency_s: float = 0.0):
        super().__init__(latency_s=latency_s)

    def create_key(self, key_path: str, bits: int = 2048) -> RsaPublicKey:
        if not key_path.startswith("https://"):
            raise KeyProviderError("Azure Key Vault key paths must be https:// URIs")
        return super().create_key(key_path, bits)


class CertificateStoreSim(InMemoryKeyProvider):
    """Simulated Windows certificate store (CurrentUser/LocalMachine paths)."""

    provider_name = WINDOWS_CERTIFICATE_STORE_PROVIDER


class JavaKeyStoreSim(InMemoryKeyProvider):
    """Simulated Java key store."""

    provider_name = JAVA_KEY_STORE_PROVIDER


class HsmKeyProviderSim(InMemoryKeyProvider):
    """Simulated HSM-rooted key store: keys can be created but the raw
    private material is never observable through the interface (this is
    already true of the base class; the subclass exists so configurations
    can name an HSM explicitly, as the paper's out-of-the-box list does).
    """

    provider_name = HSM_PROVIDER


class KeyProviderRegistry:
    """Maps provider names to provider instances; the extensibility point.

    Both the client driver and the tools consult a registry. Customers can
    register custom providers, mirroring the paper's extensible interface.
    """

    def __init__(self) -> None:
        self._providers: dict[str, KeyProvider] = {}

    def register(self, provider: KeyProvider) -> None:
        self._providers[provider.provider_name] = provider

    def get(self, provider_name: str) -> KeyProvider:
        try:
            return self._providers[provider_name]
        except KeyError:
            raise KeyProviderError(
                f"no key provider registered under {provider_name!r}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._providers)


def default_registry(latency_s: float = 0.0) -> KeyProviderRegistry:
    """A registry with all out-of-the-box providers, as shipped by AE."""
    registry = KeyProviderRegistry()
    registry.register(AzureKeyVaultSim(latency_s=latency_s))
    registry.register(CertificateStoreSim())
    registry.register(JavaKeyStoreSim())
    registry.register(HsmKeyProviderSim())
    return registry
