"""AE's two-level key hierarchy (Section 2.2 of the paper).

* :class:`~repro.keys.cmk.ColumnMasterKey` — metadata for a client-held
  asymmetric key referenced by URI; signed to prevent server tampering.
* :class:`~repro.keys.cek.ColumnEncryptionKey` — a 32-byte AES root key
  stored encrypted under one or (mid-rotation) two CMKs.
* :mod:`~repro.keys.providers` — the extensible key-provider interface and
  the out-of-the-box providers (Azure Key Vault sim, certificate store,
  Java key store, HSM).
"""

from repro.keys.cek import RSA_OAEP, CekEncryptedValue, ColumnEncryptionKey
from repro.keys.cmk import ColumnMasterKey
from repro.keys.providers import (
    AZURE_KEY_VAULT_PROVIDER,
    AzureKeyVaultSim,
    CertificateStoreSim,
    HsmKeyProviderSim,
    InMemoryKeyProvider,
    JavaKeyStoreSim,
    KeyProvider,
    KeyProviderRegistry,
    default_registry,
)

__all__ = [
    "AZURE_KEY_VAULT_PROVIDER",
    "AzureKeyVaultSim",
    "CekEncryptedValue",
    "CertificateStoreSim",
    "ColumnEncryptionKey",
    "ColumnMasterKey",
    "HsmKeyProviderSim",
    "InMemoryKeyProvider",
    "JavaKeyStoreSim",
    "KeyProvider",
    "KeyProviderRegistry",
    "RSA_OAEP",
    "default_registry",
]
