"""Column master keys (CMKs) — the second level of AE's key hierarchy.

A CMK is an asymmetric key living in a client-controlled key provider; SQL
Server stores only metadata: the provider name, the key path URI, whether
enclave computations are allowed, and a *signature over that metadata made
with the CMK key material itself*. The paper (Section 2.2) explains why the
signature exists: without it, a compromised SQL Server could flip the
enclave-computations bit and ship CEKs into an enclave the client never
authorized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SecurityViolation
from repro.keys.providers import KeyProvider, KeyProviderRegistry


def _metadata_message(key_store_provider_name: str, key_path: str, allow_enclave_computations: bool) -> bytes:
    # Canonical byte string covered by the CMK metadata signature. Matches
    # the production behaviour of signing (key path, enclave flag); the
    # provider name is included for completeness.
    flag = b"\x01" if allow_enclave_computations else b"\x00"
    return (
        b"CMK-METADATA\x00"
        + key_store_provider_name.upper().encode()
        + b"\x00"
        + key_path.upper().encode()
        + b"\x00"
        + flag
    )


@dataclass(frozen=True)
class ColumnMasterKey:
    """CMK metadata as stored in SQL Server's catalog.

    The actual key material never appears here — only the URI reference,
    exactly as in the paper's Figure 1 DDL.
    """

    name: str
    key_store_provider_name: str
    key_path: str
    allow_enclave_computations: bool
    signature: bytes

    @classmethod
    def create(
        cls,
        name: str,
        provider: KeyProvider,
        key_path: str,
        allow_enclave_computations: bool = False,
    ) -> "ColumnMasterKey":
        """Provision CMK metadata, signing it with the CMK key material.

        This is the client-side step the paper's tooling automates
        (Section 2.4.1): the client, holding access to the provider,
        computes the ENCLAVE_COMPUTATIONS signature.
        """
        # The signature exists to protect the enclave-computations flag
        # (Section 2.2); CMKs that never allow enclave use carry none,
        # matching the shipped DDL where SIGNATURE appears only inside the
        # ENCLAVE_COMPUTATIONS clause.
        signature = b""
        if allow_enclave_computations:
            message = _metadata_message(
                provider.provider_name, key_path, allow_enclave_computations
            )
            signature = provider.sign(key_path, message)
        return cls(
            name=name,
            key_store_provider_name=provider.provider_name,
            key_path=key_path,
            allow_enclave_computations=allow_enclave_computations,
            signature=signature,
        )

    def verify_signature(self, registry: KeyProviderRegistry) -> bool:
        """Client-side check that SQL Server did not tamper with this metadata.

        A CMK claiming enclave computations must carry a valid signature
        over (provider, path, flag). Without it, SQL Server could flip the
        flag and trick drivers into releasing CEKs to the enclave.
        """
        if not self.allow_enclave_computations:
            return True
        if not self.signature:
            return False
        provider = registry.get(self.key_store_provider_name)
        message = _metadata_message(
            self.key_store_provider_name, self.key_path, self.allow_enclave_computations
        )
        return provider.verify(self.key_path, message, self.signature)

    def require_valid(self, registry: KeyProviderRegistry) -> None:
        """Raise :class:`SecurityViolation` if the metadata signature is bad."""
        if not self.verify_signature(registry):
            raise SecurityViolation(
                f"CMK {self.name!r}: metadata signature verification failed; "
                "SQL Server may have tampered with the enclave-computations flag"
            )
