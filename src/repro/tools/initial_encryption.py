"""Client-side initial encryption / rotation — the enclave-less round-trip.

This is the AEv1 path the paper contrasts against (Section 1.1): turning
encryption on for a column whose CEK is *not* enclave-enabled requires
pulling every value to the client, encrypting there, and writing it back —
"prohibitively expensive" at scale, motivating AEv2's in-place DDL. We
implement it anyway (the feature ships with client-side tools for exactly
this), and the A3 ablation bench measures the two paths against each other.
"""

from __future__ import annotations

from repro.client.driver import Connection
from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.errors import DriverError
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.types import ColumnType, SqlType
from repro.sqlengine.values import serialize_value


def client_side_initial_encryption(
    connection: Connection,
    table: str,
    column: str,
    cek_name: str,
    cek_material: bytes,
    scheme: EncryptionScheme,
    roundtrip_latency_s: float = 0.0,
) -> int:
    """Encrypt a plaintext column by round-tripping rows through the client.

    ``roundtrip_latency_s`` models the client↔server network cost per
    batch; the A3 bench uses it to show why a week-long rotation was "a
    nonstarter" for terabyte databases. Returns the number of cells
    encrypted.
    """
    import time

    server = connection.server
    engine = server.engine
    schema = server.catalog.table(table)
    column_schema = schema.column(column)
    if column_schema.is_encrypted:
        raise DriverError(f"column {column!r} is already encrypted")
    slot = schema.column_index(column)
    cipher = CellCipher(cek_material)

    # Pull all rows to the client (round-trip #1), encrypt locally, then
    # write back (round-trip #2) — modelled per batch.
    rows = list(engine.table(table).heap.scan())
    if roundtrip_latency_s:
        time.sleep(roundtrip_latency_s)

    encryption = server.catalog.encryption_info(cek_name, scheme)
    new_type = ColumnType(sql_type=column_schema.column_type.sql_type, encryption=encryption)

    affected = [
        obj.schema
        for obj in engine.table(table).indexes.values()
        if slot in obj.key_slots
    ]
    for index_schema in affected:
        engine.drop_index(table, index_schema.name)

    column_schema.column_type = new_type
    txn = engine.begin()
    count = 0
    try:
        for rid, row in rows:
            cell = row[slot]
            if cell is None:
                continue
            new_row = list(row)
            new_row[slot] = Ciphertext(cipher.encrypt(serialize_value(cell), scheme))
            engine.update(txn, table, rid, tuple(new_row))
            count += 1
        if roundtrip_latency_s:
            time.sleep(roundtrip_latency_s)
        engine.commit(txn)
    except Exception:
        if txn.is_active:
            engine.abort(txn)
        column_schema.column_type = ColumnType(
            sql_type=new_type.sql_type, encryption=None
        )
        raise
    for index_schema in affected:
        if all(
            server.catalog.table(table).column(c).column_type.encryption is None
            or server.catalog.table(table).column(c).column_type.encryption.scheme
            is not EncryptionScheme.RANDOMIZED
            for c in index_schema.column_names
        ):
            engine.create_index(index_schema)
    server._invalidate_plan_cache()
    connection.cek_cache.put(cek_name, cek_material)
    return count
