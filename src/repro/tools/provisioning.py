"""Client-side key provisioning tools (Section 2.4.1).

The DDL expects clients to configure the CMK and compute the encrypted
value of CEKs; "in order to ease the burden for clients, we automate the
above steps in our tools." These helpers are that tooling: they create the
key in the provider (if needed), compute the signatures, emit the DDL of
Figure 1, and run it through a connection.
"""

from __future__ import annotations

from repro.client.driver import Connection
from repro.crypto.aead import generate_cek_material
from repro.keys.cek import CekEncryptedValue, ColumnEncryptionKey
from repro.keys.cmk import ColumnMasterKey
from repro.keys.providers import KeyProvider


def provision_cmk(
    connection: Connection,
    provider: KeyProvider,
    name: str,
    key_path: str,
    allow_enclave_computations: bool = True,
    create_key_bits: int = 1024,
) -> ColumnMasterKey:
    """Create (if needed) the provider key, sign the metadata, run the DDL."""
    try:
        provider.get_public_key(key_path)
    except Exception:
        provider.create_key(key_path, bits=create_key_bits)
    cmk = ColumnMasterKey.create(
        name, provider, key_path, allow_enclave_computations=allow_enclave_computations
    )
    enclave_clause = ""
    if allow_enclave_computations:
        enclave_clause = f",\n  ENCLAVE_COMPUTATIONS (SIGNATURE = 0x{cmk.signature.hex()})"
    ddl = (
        f"CREATE COLUMN MASTER KEY {name} WITH (\n"
        f"  KEY_STORE_PROVIDER_NAME = N'{provider.provider_name}',\n"
        f"  KEY_PATH = N'{key_path}'{enclave_clause})"
    )
    connection.execute_ddl(ddl)
    return cmk


def provision_cek(
    connection: Connection,
    provider: KeyProvider,
    cmk: ColumnMasterKey,
    name: str,
    key_material: bytes | None = None,
) -> bytes:
    """Generate CEK material, wrap + sign it under the CMK, run the DDL.

    Returns the raw material (client-side only; it never reaches SQL)."""
    material = key_material if key_material is not None else generate_cek_material()
    value = CekEncryptedValue.create(cmk, provider, material)
    ddl = (
        f"CREATE COLUMN ENCRYPTION KEY {name} WITH VALUES (\n"
        f"  COLUMN_MASTER_KEY = {cmk.name},\n"
        f"  ALGORITHM = 'RSA_OAEP',\n"
        f"  ENCRYPTED_VALUE = 0x{value.encrypted_value.hex()},\n"
        f"  SIGNATURE = 0x{value.signature.hex()})"
    )
    connection.execute_ddl(ddl)
    connection.cek_cache.put(name, material)
    return material


def rotate_cmk(
    connection: Connection,
    provider: KeyProvider,
    cek_name: str,
    old_cmk: ColumnMasterKey,
    new_cmk: ColumnMasterKey,
) -> None:
    """Rotate a CEK's CMK: re-wrap the CEK material under the new CMK.

    No data re-encryption is needed (Section 2.4.2). The CEK temporarily
    has two encrypted values; the old one is dropped to complete rotation.
    """
    metadata = connection.server.fetch_cek_metadata(cek_name)
    material = connection.unwrap_cek(metadata)
    new_value = CekEncryptedValue.create(new_cmk, provider, material)
    add_ddl = (
        f"ALTER COLUMN ENCRYPTION KEY {cek_name} ADD VALUE (\n"
        f"  COLUMN_MASTER_KEY = {new_cmk.name},\n"
        f"  ALGORITHM = 'RSA_OAEP',\n"
        f"  ENCRYPTED_VALUE = 0x{new_value.encrypted_value.hex()},\n"
        f"  SIGNATURE = 0x{new_value.signature.hex()})"
    )
    connection.execute_ddl(add_ddl)
    # ... clients holding either CMK keep working (no downtime) ...
    drop_ddl = (
        f"ALTER COLUMN ENCRYPTION KEY {cek_name} DROP VALUE (\n"
        f"  COLUMN_MASTER_KEY = {old_cmk.name})"
    )
    connection.execute_ddl(drop_ddl)


def rotate_cek_in_place(
    connection: Connection,
    table: str,
    column: str,
    type_sql: str,
    new_cek_name: str,
    encryption_type: str = "Randomized",
) -> None:
    """CEK rotation via ALTER TABLE ALTER COLUMN through the enclave.

    A CEK rotation *does* re-encrypt data; with enclave-enabled old and new
    keys this happens server-side with no client round-trip per row.
    """
    ddl = (
        f"ALTER TABLE {table} ALTER COLUMN {column} {type_sql} "
        f"ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = {new_cek_name}, "
        f"ENCRYPTION_TYPE = {encryption_type}, "
        f"ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')"
    )
    connection.execute_ddl(ddl, authorize_enclave=True)
