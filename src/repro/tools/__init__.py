"""Client-side tooling: provisioning, initial encryption, rotation."""

from repro.tools.initial_encryption import client_side_initial_encryption
from repro.tools.provisioning import (
    provision_cek,
    provision_cmk,
    rotate_cek_in_place,
    rotate_cmk,
)

__all__ = [
    "client_side_initial_encryption",
    "provision_cek",
    "provision_cmk",
    "rotate_cek_in_place",
    "rotate_cmk",
]
