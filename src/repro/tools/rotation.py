"""Online key-lifecycle client tooling (Section 2.4.2, online variant).

The one-shot ``ALTER TABLE ... ALTER COLUMN`` path in
:mod:`repro.tools.provisioning` rewrites the whole column inside a single
statement — correct, but it holds every row lock at once and offers no
crash-resume. These helpers drive the *online* path instead: the server's
:class:`~repro.sqlengine.rotation.KeyRotationJob` re-encrypts the column
batch-at-a-time through the enclave while concurrent sessions keep
reading and writing, checkpointing progress to the WAL.

The client's part mirrors what it does for any enclave query: authorize
the (canonical) rotation statement text with the enclave so its Recrypt
oracle accepts the batches, then drive the job through the admin verbs —
which work identically against an in-process :class:`SqlServer` and a
:class:`~repro.net.remote.RemoteServer` (and, through the router, against
a sharded fleet, pinned to the affinity shard that owns the enclave
session).
"""

from __future__ import annotations

from repro.client.driver import Connection
from repro.crypto.aead import EncryptionScheme

__all__ = [
    "encrypt_column_online",
    "resume_rotation",
    "rotate_cek_online",
    "rotation_query_text",
]


def rotation_query_text(table: str, column: str, new_cek: str) -> str:
    """The canonical statement text a lifecycle job runs under.

    This is what the client authorizes with the enclave and what the
    server hashes at every recrypt batch — one text per (table, column,
    target CEK), so a resumed job after a crash re-authorizes the exact
    same statement.
    """
    return (
        f"ALTER TABLE {table} ALTER COLUMN {column} "
        f"ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = {new_cek}) ONLINE"
    )


def _authorize(connection: Connection, query_text: str, cek_names: list[str]) -> None:
    connection.authorize_enclave_query(
        query_text, [name for name in cek_names if name]
    )


def rotate_cek_online(
    connection: Connection,
    table: str,
    column: str,
    new_cek: str,
    batch_size: int = 64,
    run: bool = True,
) -> str:
    """Start (and by default drive to completion) an online CEK rotation.

    Returns the rotation id. With ``run=False`` the job is started but
    not stepped — the caller drives it via ``connection.server
    .rotate_step`` to interleave with its own traffic (as the torture and
    differential suites do).
    """
    enc = connection.server.catalog.table(table).column(column).column_type.encryption
    if enc is None:
        raise ValueError(
            f"column {table}.{column} is not encrypted; use encrypt_column_online"
        )
    query_text = rotation_query_text(table, column, new_cek)
    _authorize(connection, query_text, [enc.cek_name, new_cek])
    rotation_id = connection.server.rotate_start(
        table, column, new_cek, query_text, batch_size=batch_size
    )
    connection.invalidate_metadata_caches()
    if run:
        connection.server.rotate_run(rotation_id)
        connection.invalidate_metadata_caches()
    return rotation_id


def encrypt_column_online(
    connection: Connection,
    table: str,
    column: str,
    new_cek: str,
    scheme: EncryptionScheme = EncryptionScheme.RANDOMIZED,
    batch_size: int = 64,
    run: bool = True,
) -> str:
    """Start (and by default complete) online *initial* encryption of a
    plaintext column under ``new_cek``."""
    query_text = rotation_query_text(table, column, new_cek)
    _authorize(connection, query_text, [new_cek])
    rotation_id = connection.server.rotate_start(
        table,
        column,
        new_cek,
        query_text,
        batch_size=batch_size,
        kind="encrypt",
        scheme=scheme,
    )
    connection.invalidate_metadata_caches()
    if run:
        connection.server.rotate_run(rotation_id)
        connection.invalidate_metadata_caches()
    return rotation_id


def resume_rotation(
    connection: Connection,
    rotation_id: str,
    table: str,
    column: str,
    new_cek: str,
    old_cek: str = "",
    batch_size: int = 64,
    run: bool = True,
) -> str:
    """Re-adopt a recovery-reinstated rotation after a server crash.

    Enclave sessions don't survive a crash, so the client must attest
    afresh and re-authorize the *same* canonical statement text before
    the server's recrypt batches are accepted again.
    """
    query_text = rotation_query_text(table, column, new_cek)
    _authorize(connection, query_text, [old_cek, new_cek])
    connection.server.rotate_resume(rotation_id, query_text, batch_size=batch_size)
    connection.invalidate_metadata_caches()
    if run:
        connection.server.rotate_run(rotation_id)
        connection.invalidate_metadata_caches()
    return rotation_id
