"""AEAD_AES_256_CBC_HMAC_SHA_256 — the cell-encryption algorithm of AE.

This is the algorithm named in the paper's DDL (Figure 1) and described in
Section 2.3. A 32-byte column encryption key (CEK) is the root key; from it
we derive an AES-256 encryption key, an HMAC key, and (for deterministic
encryption) an IV key. The serialized ciphertext layout is::

    version (1 byte) || MAC (32 bytes) || IV (16 bytes) || AES-CBC ciphertext

* **Randomized (RND)** encryption draws a fresh random IV per cell, giving
  IND-CPA security: encrypting the same plaintext twice yields different
  ciphertexts.
* **Deterministic (DET)** encryption derives the IV as a truncated
  HMAC-SHA-256 of the plaintext under the IV key. As the paper notes, this
  preserves equality at the level of the *whole value* (unlike ECB, which
  would leak equality of individual 16-byte blocks), enabling point lookups,
  equi-joins, and equality grouping directly on ciphertext.

Both modes carry an HMAC over (version || IV || ciphertext || version-size).
The paper uses this as a usability feature — clients can distinguish
legitimate ciphertext from garbage — not as an integrity guarantee for the
overall system.
"""

from __future__ import annotations

import enum
import secrets

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.kdf import constant_time_equal, derive_key, hmac_sha256
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad
from repro.errors import CryptoError, IntegrityError

ALGORITHM_NAME = "AEAD_AES_256_CBC_HMAC_SHA_256"
ALGORITHM_VERSION = 0x01
MAC_SIZE = 32
KEY_SIZE = 32

_ENC_KEY_SALT = (
    "Microsoft SQL Server cell encryption key with encryption algorithm:"
    f"{ALGORITHM_NAME} and key length:256"
)
_MAC_KEY_SALT = (
    "Microsoft SQL Server cell MAC key with encryption algorithm:"
    f"{ALGORITHM_NAME} and key length:256"
)
_IV_KEY_SALT = (
    "Microsoft SQL Server cell IV key with encryption algorithm:"
    f"{ALGORITHM_NAME} and key length:256"
)


class EncryptionScheme(enum.Enum):
    """The two cell-encryption schemes of Always Encrypted (Section 2.3)."""

    DETERMINISTIC = "Deterministic"
    RANDOMIZED = "Randomized"

    @property
    def short_name(self) -> str:
        return "DET" if self is EncryptionScheme.DETERMINISTIC else "RND"


class CellCipher:
    """Encrypts and decrypts individual cell values under one CEK.

    Instances are immutable: derived keys and the AES schedule are computed
    once, so repeated cell operations (the inner loop of query processing)
    avoid per-call key expansion.
    """

    def __init__(self, root_key: bytes):
        if len(root_key) != KEY_SIZE:
            raise CryptoError(f"CEK root key must be {KEY_SIZE} bytes, got {len(root_key)}")
        self._enc_key = derive_key(root_key, _ENC_KEY_SALT)
        self._mac_key = derive_key(root_key, _MAC_KEY_SALT)
        self._iv_key = derive_key(root_key, _IV_KEY_SALT)
        self._aes = AES(self._enc_key)

    # -- public API ---------------------------------------------------------

    def encrypt(self, plaintext: bytes, scheme: EncryptionScheme) -> bytes:
        """Encrypt a serialized cell value, returning the full envelope."""
        if scheme is EncryptionScheme.DETERMINISTIC:
            iv = hmac_sha256(self._iv_key, plaintext)[:BLOCK_SIZE]
        else:
            iv = secrets.token_bytes(BLOCK_SIZE)
        body = cbc_encrypt(self._aes, iv, pkcs7_pad(plaintext))
        mac = self._compute_mac(iv, body)
        return bytes([ALGORITHM_VERSION]) + mac + iv + body

    def decrypt(self, envelope: bytes) -> bytes:
        """Decrypt a cell envelope, verifying version and MAC first."""
        iv, body = self._parse(envelope)
        expected = self._compute_mac(iv, body)
        if not constant_time_equal(expected, envelope[1 : 1 + MAC_SIZE]):
            raise IntegrityError("cell MAC verification failed (tampered or wrong key)")
        return pkcs7_unpad(cbc_decrypt(self._aes, iv, body))

    def verify(self, envelope: bytes) -> bool:
        """Check the envelope's MAC without decrypting; never raises on bad MACs."""
        try:
            iv, body = self._parse(envelope)
        except CryptoError:
            return False
        return constant_time_equal(self._compute_mac(iv, body), envelope[1 : 1 + MAC_SIZE])

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _parse(envelope: bytes) -> tuple[bytes, bytes]:
        minimum = 1 + MAC_SIZE + BLOCK_SIZE + BLOCK_SIZE
        if len(envelope) < minimum:
            raise CryptoError(f"cell envelope too short: {len(envelope)} < {minimum} bytes")
        if envelope[0] != ALGORITHM_VERSION:
            raise CryptoError(f"unsupported cell algorithm version {envelope[0]:#x}")
        iv = envelope[1 + MAC_SIZE : 1 + MAC_SIZE + BLOCK_SIZE]
        body = envelope[1 + MAC_SIZE + BLOCK_SIZE :]
        if len(body) % BLOCK_SIZE != 0:
            raise CryptoError("cell ciphertext body is not block-aligned")
        return iv, body

    def _compute_mac(self, iv: bytes, body: bytes) -> bytes:
        version = bytes([ALGORITHM_VERSION])
        return hmac_sha256(self._mac_key, version + iv + body + b"\x01")


def generate_cek_material() -> bytes:
    """Generate fresh 32-byte CEK root key material."""
    return secrets.token_bytes(KEY_SIZE)
