"""RSA from scratch: key generation, OAEP encryption, and signatures.

Used by the reproduction exactly where the paper uses RSA:

* CEKs are encrypted under the CMK with ``RSA_OAEP`` (Figure 1 DDL).
* CMK metadata is signed with the CMK key material (Section 2.2).
* The VBS enclave creates an RSA key pair at load; the enclave report
  embeds a hash of the public key, and the enclave signs its DH public key
  (Section 4.2).
* HGS signs health certificates; the host hypervisor signs enclave reports.

Signatures are RSASSA-PKCS1-v1_5 with SHA-256; encryption is RSAES-OAEP
with SHA-256 and MGF1. Primes come from ``secrets`` with Miller–Rabin
testing.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.crypto.kdf import constant_time_equal
from repro.errors import CryptoError

_SHA256_DIGEST_INFO = bytes.fromhex("3031300d060960864801650304020105000420")

# Deterministic primes are cached per bit-size within a process so test
# suites that build many key hierarchies do not pay repeated keygen costs.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


def _is_probable_prime(n: int, rounds: int = 20) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for __ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for __ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int) -> int:
    while True:
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key (n, e)."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> bytes:
        """SHA-256 over the serialized public key; used in enclave reports."""
        return hashlib.sha256(self.to_bytes()).digest()

    def to_bytes(self) -> bytes:
        n_bytes = self.n.to_bytes(self.byte_length, "big")
        e_bytes = self.e.to_bytes(4, "big")
        return len(n_bytes).to_bytes(4, "big") + n_bytes + e_bytes

    @classmethod
    def from_bytes(cls, data: bytes) -> "RsaPublicKey":
        if len(data) < 8:
            raise CryptoError("truncated RSA public key encoding")
        n_len = int.from_bytes(data[:4], "big")
        if len(data) != 4 + n_len + 4:
            raise CryptoError("malformed RSA public key encoding")
        n = int.from_bytes(data[4 : 4 + n_len], "big")
        e = int.from_bytes(data[4 + n_len :], "big")
        return cls(n=n, e=e)


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA key pair with CRT parameters for fast private operations."""

    public: RsaPublicKey
    d: int
    p: int
    q: int

    @classmethod
    def generate(cls, bits: int = 2048, e: int = 65537) -> "RsaKeyPair":
        if bits < 512:
            raise CryptoError("RSA modulus must be at least 512 bits")
        while True:
            p = _random_prime(bits // 2)
            q = _random_prime(bits - bits // 2)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if phi % e == 0:
                continue
            if n.bit_length() != bits:
                continue
            d = pow(e, -1, phi)
            return cls(public=RsaPublicKey(n=n, e=e), d=d, p=p, q=q)

    def _private_op(self, value: int) -> int:
        # CRT: roughly 4x faster than pow(value, d, n).
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = pow(self.q, -1, self.p)
        m1 = pow(value % self.p, dp, self.p)
        m2 = pow(value % self.q, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q

    # -- OAEP ---------------------------------------------------------------

    def decrypt_oaep(self, ciphertext: bytes, label: bytes = b"") -> bytes:
        k = self.public.byte_length
        if len(ciphertext) != k:
            raise CryptoError("OAEP ciphertext length does not match modulus")
        c = int.from_bytes(ciphertext, "big")
        if c >= self.public.n:
            raise CryptoError("OAEP ciphertext out of range")
        em = self._private_op(c).to_bytes(k, "big")
        return _oaep_decode(em, k, label)

    # -- signatures ---------------------------------------------------------

    def sign(self, message: bytes) -> bytes:
        """RSASSA-PKCS1-v1_5 signature with SHA-256."""
        k = self.public.byte_length
        em = _pkcs1_v15_encode(message, k)
        return self._private_op(int.from_bytes(em, "big")).to_bytes(k, "big")


def encrypt_oaep(public: RsaPublicKey, plaintext: bytes, label: bytes = b"") -> bytes:
    """RSAES-OAEP encryption with SHA-256 / MGF1-SHA-256."""
    k = public.byte_length
    h_len = 32
    if len(plaintext) > k - 2 * h_len - 2:
        raise CryptoError(f"OAEP plaintext too long for {k*8}-bit modulus")
    l_hash = hashlib.sha256(label).digest()
    ps = b"\x00" * (k - len(plaintext) - 2 * h_len - 2)
    db = l_hash + ps + b"\x01" + plaintext
    seed = secrets.token_bytes(h_len)
    masked_db = _xor(db, _mgf1(seed, k - h_len - 1))
    masked_seed = _xor(seed, _mgf1(masked_db, h_len))
    em = b"\x00" + masked_seed + masked_db
    return pow(int.from_bytes(em, "big"), public.e, public.n).to_bytes(k, "big")


def verify_signature(public: RsaPublicKey, message: bytes, signature: bytes) -> bool:
    """Verify an RSASSA-PKCS1-v1_5 / SHA-256 signature."""
    k = public.byte_length
    if len(signature) != k:
        return False
    s = int.from_bytes(signature, "big")
    if s >= public.n:
        return False
    em = pow(s, public.e, public.n).to_bytes(k, "big")
    try:
        expected = _pkcs1_v15_encode(message, k)
    except CryptoError:
        return False
    return constant_time_equal(em, expected)


# ---------------------------------------------------------------------------
# Encoding helpers
# ---------------------------------------------------------------------------


def _mgf1(seed: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
    return bytes(out[:length])


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _oaep_decode(em: bytes, k: int, label: bytes) -> bytes:
    h_len = 32
    if k < 2 * h_len + 2 or em[0] != 0:
        raise CryptoError("OAEP decoding error")
    masked_seed = em[1 : 1 + h_len]
    masked_db = em[1 + h_len :]
    seed = _xor(masked_seed, _mgf1(masked_db, h_len))
    db = _xor(masked_db, _mgf1(seed, k - h_len - 1))
    l_hash = hashlib.sha256(label).digest()
    if not constant_time_equal(db[:h_len], l_hash):
        raise CryptoError("OAEP decoding error")
    try:
        sep = db.index(b"\x01", h_len)
    except ValueError:
        raise CryptoError("OAEP decoding error") from None
    if any(db[h_len:sep]):
        raise CryptoError("OAEP decoding error")
    return db[sep + 1 :]


def _pkcs1_v15_encode(message: bytes, k: int) -> bytes:
    digest = hashlib.sha256(message).digest()
    t = _SHA256_DIGEST_INFO + digest
    if k < len(t) + 11:
        raise CryptoError("RSA modulus too small for PKCS#1 v1.5 signature")
    return b"\x00\x01" + b"\xff" * (k - len(t) - 3) + b"\x00" + t
