"""Cryptographic primitives implemented from scratch for the reproduction.

Public surface:

* :class:`~repro.crypto.aes.AES` — the AES block cipher (FIPS 197).
* :class:`~repro.crypto.aead.CellCipher` and
  :class:`~repro.crypto.aead.EncryptionScheme` — the
  ``AEAD_AES_256_CBC_HMAC_SHA_256`` cell encryption used by Always Encrypted.
* :class:`~repro.crypto.rsa.RsaKeyPair` / OAEP / signatures — CMK operations,
  enclave keys, attestation signing.
* :class:`~repro.crypto.dh.DiffieHellman` — the driver↔enclave key exchange.
"""

from repro.crypto.aead import (
    ALGORITHM_NAME,
    CellCipher,
    EncryptionScheme,
    generate_cek_material,
)
from repro.crypto.aes import AES
from repro.crypto.dh import DiffieHellman, public_key_bytes
from repro.crypto.kdf import derive_key, hmac_sha256, sha256
from repro.crypto.rsa import (
    RsaKeyPair,
    RsaPublicKey,
    encrypt_oaep,
    verify_signature,
)

__all__ = [
    "AES",
    "ALGORITHM_NAME",
    "CellCipher",
    "DiffieHellman",
    "EncryptionScheme",
    "RsaKeyPair",
    "RsaPublicKey",
    "derive_key",
    "encrypt_oaep",
    "generate_cek_material",
    "hmac_sha256",
    "public_key_bytes",
    "sha256",
    "verify_signature",
]
