"""Key derivation helpers (HMAC-SHA-256 based).

AEAD_AES_256_CBC_HMAC_SHA_256 derives three sub-keys from the 32-byte column
encryption key so that the encryption, MAC, and deterministic-IV functions
never share key material directly.
"""

from __future__ import annotations

import hashlib
import hmac


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256 of ``data`` under ``key``."""
    return hmac.new(key, data, hashlib.sha256).digest()


def derive_key(root_key: bytes, label: str) -> bytes:
    """Derive a 32-byte sub-key from ``root_key`` for the given label.

    Matches the production scheme's approach of HMACing a UTF-16LE salt
    string describing the key's purpose, algorithm, and length.
    """
    return hmac_sha256(root_key, label.encode("utf-16-le"))


def sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe byte comparison for MAC verification."""
    return hmac.compare_digest(a, b)
