"""AES block cipher implemented from scratch (FIPS 197).

No third-party crypto library is available in this offline environment, so
the cell-encryption algorithm the paper names (AEAD_AES_256_CBC_HMAC_SHA_256)
is built on this implementation. Correctness is pinned to the FIPS 197 /
NIST SP 800-38A vectors in ``tests/crypto/test_aes.py``.

The implementation is table-driven: the S-box is derived from the GF(2^8)
multiplicative inverse and the affine transform at import time, and four
encryption T-tables (and four decryption tables) are precomputed so each
round is eight table lookups and xors per column. This is the classic
software AES construction and is the fastest approach available in pure
Python.
"""

from __future__ import annotations

from repro.errors import CryptoError

BLOCK_SIZE = 16

# ---------------------------------------------------------------------------
# GF(2^8) arithmetic and S-box construction
# ---------------------------------------------------------------------------


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    # Multiplicative inverses via exponentiation tables over generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]

    def inverse(a: int) -> int:
        if a == 0:
            return 0
        return exp[255 - log[a]]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        b = inverse(value)
        s = b
        for __ in range(4):
            b = ((b << 1) | (b >> 7)) & 0xFF
            s ^= b
        s ^= 0x63
        sbox[value] = s
        inv_sbox[s] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()


def _build_enc_tables() -> list[list[int]]:
    t0 = [0] * 256
    for value in range(256):
        s = SBOX[value]
        s2 = _gf_mul(s, 2)
        s3 = _gf_mul(s, 3)
        t0[value] = (s2 << 24) | (s << 16) | (s << 8) | s3
    tables = [t0]
    for shift in (8, 16, 24):
        tables.append([((w >> shift) | (w << (32 - shift))) & 0xFFFFFFFF for w in t0])
    return tables


def _build_dec_tables() -> list[list[int]]:
    d0 = [0] * 256
    for value in range(256):
        s = INV_SBOX[value]
        d0[value] = (
            (_gf_mul(s, 14) << 24)
            | (_gf_mul(s, 9) << 16)
            | (_gf_mul(s, 13) << 8)
            | _gf_mul(s, 11)
        )
    tables = [d0]
    for shift in (8, 16, 24):
        tables.append([((w >> shift) | (w << (32 - shift))) & 0xFFFFFFFF for w in d0])
    return tables


TE0, TE1, TE2, TE3 = _build_enc_tables()
TD0, TD1, TD2, TD3 = _build_dec_tables()

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB]


class AES:
    """An AES cipher with a fixed key, usable for 128/192/256-bit keys.

    Instances are immutable and safe to share across threads; all state is
    computed in ``__init__``.
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16, 24, or 32 bytes, got {len(key)}")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        self._dec_round_keys = self._expand_decryption_key()

    # -- key schedule -------------------------------------------------------

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        total = 4 * (self.rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def _expand_decryption_key(self) -> list[int]:
        # Equivalent inverse cipher: round keys in reverse round order with
        # InvMixColumns applied to the middle rounds.
        rk = self._round_keys
        out: list[int] = []
        for rnd in range(self.rounds, -1, -1):
            for col in range(4):
                w = rk[4 * rnd + col]
                if 0 < rnd < self.rounds:
                    w = (
                        TD0[SBOX[(w >> 24) & 0xFF]]
                        ^ TD1[SBOX[(w >> 16) & 0xFF]]
                        ^ TD2[SBOX[(w >> 8) & 0xFF]]
                        ^ TD3[SBOX[w & 0xFF]]
                    )
                out.append(w)
        return out

    # -- block operations ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        i = 4
        for __ in range(self.rounds - 1):
            t0 = (
                TE0[(s0 >> 24) & 0xFF]
                ^ TE1[(s1 >> 16) & 0xFF]
                ^ TE2[(s2 >> 8) & 0xFF]
                ^ TE3[s3 & 0xFF]
                ^ rk[i]
            )
            t1 = (
                TE0[(s1 >> 24) & 0xFF]
                ^ TE1[(s2 >> 16) & 0xFF]
                ^ TE2[(s3 >> 8) & 0xFF]
                ^ TE3[s0 & 0xFF]
                ^ rk[i + 1]
            )
            t2 = (
                TE0[(s2 >> 24) & 0xFF]
                ^ TE1[(s3 >> 16) & 0xFF]
                ^ TE2[(s0 >> 8) & 0xFF]
                ^ TE3[s1 & 0xFF]
                ^ rk[i + 2]
            )
            t3 = (
                TE0[(s3 >> 24) & 0xFF]
                ^ TE1[(s0 >> 16) & 0xFF]
                ^ TE2[(s1 >> 8) & 0xFF]
                ^ TE3[s2 & 0xFF]
                ^ rk[i + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            i += 4
        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        out = bytearray(16)
        for col, (a, b, c, d) in enumerate(
            ((s0, s1, s2, s3), (s1, s2, s3, s0), (s2, s3, s0, s1), (s3, s0, s1, s2))
        ):
            w = (
                (SBOX[(a >> 24) & 0xFF] << 24)
                | (SBOX[(b >> 16) & 0xFF] << 16)
                | (SBOX[(c >> 8) & 0xFF] << 8)
                | SBOX[d & 0xFF]
            ) ^ rk[i + col]
            out[4 * col : 4 * col + 4] = w.to_bytes(4, "big")
        return bytes(out)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"AES block must be 16 bytes, got {len(block)}")
        rk = self._dec_round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        i = 4
        for __ in range(self.rounds - 1):
            t0 = (
                TD0[(s0 >> 24) & 0xFF]
                ^ TD1[(s3 >> 16) & 0xFF]
                ^ TD2[(s2 >> 8) & 0xFF]
                ^ TD3[s1 & 0xFF]
                ^ rk[i]
            )
            t1 = (
                TD0[(s1 >> 24) & 0xFF]
                ^ TD1[(s0 >> 16) & 0xFF]
                ^ TD2[(s3 >> 8) & 0xFF]
                ^ TD3[s2 & 0xFF]
                ^ rk[i + 1]
            )
            t2 = (
                TD0[(s2 >> 24) & 0xFF]
                ^ TD1[(s1 >> 16) & 0xFF]
                ^ TD2[(s0 >> 8) & 0xFF]
                ^ TD3[s3 & 0xFF]
                ^ rk[i + 2]
            )
            t3 = (
                TD0[(s3 >> 24) & 0xFF]
                ^ TD1[(s2 >> 16) & 0xFF]
                ^ TD2[(s1 >> 8) & 0xFF]
                ^ TD3[s0 & 0xFF]
                ^ rk[i + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            i += 4
        out = bytearray(16)
        for col, (a, b, c, d) in enumerate(
            ((s0, s3, s2, s1), (s1, s0, s3, s2), (s2, s1, s0, s3), (s3, s2, s1, s0))
        ):
            w = (
                (INV_SBOX[(a >> 24) & 0xFF] << 24)
                | (INV_SBOX[(b >> 16) & 0xFF] << 16)
                | (INV_SBOX[(c >> 8) & 0xFF] << 8)
                | INV_SBOX[d & 0xFF]
            ) ^ rk[i + col]
            out[4 * col : 4 * col + 4] = w.to_bytes(4, "big")
        return bytes(out)
