"""Block-cipher modes of operation: CBC with PKCS#7 padding.

Always Encrypted's cell encryption (both DET and RND, Section 2.3 of the
paper) is AES in CBC mode; the schemes differ only in how the IV is chosen.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.errors import CryptoError


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` per PKCS#7."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Remove PKCS#7 padding, validating its structure."""
    if not data or len(data) % block_size != 0:
        raise CryptoError("padded data length is not a multiple of the block size")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise CryptoError("invalid PKCS#7 padding length")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise CryptoError("invalid PKCS#7 padding bytes")
    return data[:-pad_len]


def cbc_encrypt(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt ``plaintext`` (already padded) under ``cipher``."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if len(plaintext) % BLOCK_SIZE != 0:
        raise CryptoError("CBC plaintext must be block-aligned; pad it first")
    out = bytearray()
    prev = iv
    for offset in range(0, len(plaintext), BLOCK_SIZE):
        block = bytes(
            a ^ b for a, b in zip(plaintext[offset : offset + BLOCK_SIZE], prev)
        )
        prev = cipher.encrypt_block(block)
        out += prev
    return bytes(out)


def cbc_decrypt(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt ``ciphertext``; the caller removes padding."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE != 0:
        raise CryptoError("CBC ciphertext must be a non-empty multiple of 16 bytes")
    out = bytearray()
    prev = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset : offset + BLOCK_SIZE]
        decrypted = cipher.decrypt_block(block)
        out += bytes(a ^ b for a, b in zip(decrypted, prev))
        prev = block
    return bytes(out)
