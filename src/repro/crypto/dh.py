"""Finite-field Diffie–Hellman key exchange (RFC 3526 group 14).

Section 4.2 of the paper folds a DH exchange into the attestation protocol:
the client sends its DH public key with the attestation request; the enclave
returns its own DH public key (signed by the enclave's RSA key), after which
both sides hold the shared secret used to protect CEKs in transit.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field

from repro.errors import CryptoError

# RFC 3526, 2048-bit MODP Group (id 14).
MODP_2048_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF",
    16,
)
MODP_2048_GENERATOR = 2


@dataclass
class DiffieHellman:
    """One party's half of a DH exchange over the 2048-bit MODP group."""

    prime: int = MODP_2048_PRIME
    generator: int = MODP_2048_GENERATOR
    _private: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not self._private:
            self._private = secrets.randbits(256) | 1

    @property
    def public_key(self) -> int:
        return pow(self.generator, self._private, self.prime)

    def shared_secret(self, peer_public: int) -> bytes:
        """Derive the 32-byte shared secret from the peer's public key.

        The raw DH output is hashed with SHA-256 so the result is uniform
        and directly usable as an AES-256 key for the secure channel.
        """
        if not 2 <= peer_public <= self.prime - 2:
            raise CryptoError("DH peer public key out of range")
        z = pow(peer_public, self._private, self.prime)
        size = (self.prime.bit_length() + 7) // 8
        return hashlib.sha256(z.to_bytes(size, "big")).digest()


def public_key_bytes(public: int) -> bytes:
    """Serialize a DH public key for signing / transmission."""
    return public.to_bytes((MODP_2048_PRIME.bit_length() + 7) // 8, "big")
