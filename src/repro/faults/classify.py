"""The driver's error classifier: which failures are worth retrying.

One place answers "is this transient?" so the retry loop in the client
driver, the torture harness, and future connection-pool logic all agree.
"""

from __future__ import annotations

import enum

from repro.errors import (
    FatalFault,
    ForcedCrash,
    LockTimeoutError,
    TransientFault,
)


class ErrorClass(enum.Enum):
    TRANSIENT = "transient"   # safe to retry with backoff
    FATAL = "fatal"           # surface to the caller immediately


# Exception types the classifier treats as retryable. Lock timeouts are
# the classic production transient (the paper's deferred transactions
# hold locks until keys arrive — a waiter retrying is expected behaviour).
_TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    TransientFault,
    LockTimeoutError,
    ConnectionError,
    TimeoutError,
)

# Checked before the transient list: a forced crash is a FaultInjected
# subclass but retrying into a crashed process cannot succeed.
_FATAL_TYPES: tuple[type[BaseException], ...] = (ForcedCrash, FatalFault)


def classify_error(exc: BaseException) -> ErrorClass:
    """Classify an exception for retry purposes. Unknown errors are fatal:
    retrying a failure you don't understand hides bugs."""
    if isinstance(exc, _FATAL_TYPES):
        return ErrorClass.FATAL
    if isinstance(exc, _TRANSIENT_TYPES):
        return ErrorClass.TRANSIENT
    return ErrorClass.FATAL


def is_transient(exc: BaseException) -> bool:
    return classify_error(exc) is ErrorClass.TRANSIENT
