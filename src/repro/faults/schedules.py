"""Deterministic fault schedules: *when* an armed fault fires.

Hit indexes are 1-based and private to each arming, so the same schedule
object class always reproduces the same firing pattern for the same
workload — the property the crash-torture harness depends on to shrink
and replay failures.
"""

from __future__ import annotations

import random
from typing import Protocol


class Schedule(Protocol):
    def should_fire(self, hit: int) -> bool:
        """Decide for the ``hit``-th time the site is reached (1-based)."""
        ...


class Never:
    """A disarmed placeholder (useful to neutralize a shared arming)."""

    def should_fire(self, hit: int) -> bool:
        return False


class Always:
    """Fire on every hit."""

    def should_fire(self, hit: int) -> bool:
        return True


class OnNth:
    """Fire exactly once, on the nth hit (1-based)."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("OnNth needs n >= 1 (hit indexes are 1-based)")
        self.n = n

    def should_fire(self, hit: int) -> bool:
        return hit == self.n

    def __repr__(self) -> str:
        return f"OnNth({self.n})"


class EveryKth:
    """Fire on every kth hit (k, 2k, 3k, ...), optionally at most ``limit`` times."""

    def __init__(self, k: int, limit: int | None = None):
        if k < 1:
            raise ValueError("EveryKth needs k >= 1")
        self.k = k
        self.limit = limit
        self._fired = 0

    def should_fire(self, hit: int) -> bool:
        if self.limit is not None and self._fired >= self.limit:
            return False
        if hit % self.k == 0:
            self._fired += 1
            return True
        return False

    def __repr__(self) -> str:
        return f"EveryKth({self.k})"


class SeededProbability:
    """Fire each hit with probability ``p``, from a private seeded RNG.

    The RNG is owned by the schedule instance, so the decision sequence is
    a pure function of (seed, hit index) — independent of any other
    randomness in the process.
    """

    def __init__(self, p: float, seed: int, limit: int | None = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.p = p
        self.seed = seed
        self.limit = limit
        self._rng = random.Random(seed)
        self._fired = 0

    def should_fire(self, hit: int) -> bool:
        if self.limit is not None and self._fired >= self.limit:
            # Keep consuming the stream so the decision for hit N never
            # depends on whether earlier fires were suppressed.
            self._rng.random()
            return False
        if self._rng.random() < self.p:
            self._fired += 1
            return True
        return False

    def __repr__(self) -> str:
        return f"SeededProbability(p={self.p}, seed={self.seed})"
