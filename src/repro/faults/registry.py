"""The process-global fault-injection registry.

Every layer of the stack declares named *fault sites* — the host↔enclave
channel, the WAL flush path, the disk write path, the driver's describe
round-trip — by calling :func:`register_fault_site` at import time and
:func:`fault_point` on the hot path. Tests *arm* a site with a
deterministic :mod:`schedule <repro.faults.schedules>` deciding *when* to
fire and a typed :mod:`action <repro.faults.actions>` deciding *what*
happens: raise a :class:`~repro.errors.TransientFault`, tear the page
image being written, drop the channel message, force a crash.

Design rules:

* **Disarmed sites are near-free**: one dict lookup per ``fault_point``
  call, no lock, no allocation — the instrumentation can stay in
  production code permanently.
* **Determinism**: schedules are counters or seeded RNGs; the same
  (workload seed, site, schedule) triple replays the same failure.
* **Observability**: every fired fault increments the ``faults.injected``
  counter in the :mod:`repro.obs` registry, so EXPLAIN STATS and test
  assertions can see exactly how many faults a statement absorbed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.faults.actions import FaultAction, FaultDirective
from repro.faults.schedules import Schedule
from repro.obs.flightrec import record_event
from repro.obs.metrics import get_registry


@dataclass
class FaultSite:
    """A named place in the code where faults can be injected."""

    name: str
    description: str = ""


@dataclass
class ArmedFault:
    """One (site, schedule, action) arming; ``hits``/``fired`` are its
    private counters, so re-arming always starts a fresh deterministic
    sequence."""

    site: str
    schedule: Schedule
    action: FaultAction
    hits: int = 0
    fired: int = 0
    disarmed: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class FaultRegistry:
    """Named fault sites plus the currently armed faults at each."""

    def __init__(self) -> None:
        self._sites: dict[str, FaultSite] = {}
        self._armed: dict[str, list[ArmedFault]] = {}
        self._lock = threading.Lock()

    # -- site registration ---------------------------------------------------

    def register_site(self, name: str, description: str = "") -> FaultSite:
        """Get-or-create a named site (idempotent, import-time safe)."""
        with self._lock:
            site = self._sites.get(name)
            if site is None:
                site = FaultSite(name=name, description=description)
                self._sites[name] = site
            elif description and not site.description:
                site.description = description
            return site

    def sites(self) -> list[str]:
        with self._lock:
            return sorted(self._sites)

    def site(self, name: str) -> FaultSite:
        with self._lock:
            try:
                return self._sites[name]
            except KeyError:
                raise KeyError(f"unknown fault site {name!r}") from None

    # -- arming ----------------------------------------------------------------

    def arm(self, site: str, schedule: Schedule, action: FaultAction) -> ArmedFault:
        """Arm ``action`` at ``site``, firing when ``schedule`` says so.

        The site must have been registered (importing the instrumented
        module registers it) — arming a typo'd name raises immediately
        instead of silently never firing.
        """
        with self._lock:
            if site not in self._sites:
                known = ", ".join(sorted(self._sites)) or "<none>"
                raise KeyError(
                    f"cannot arm unknown fault site {site!r}; registered sites: {known}"
                )
            armed = ArmedFault(site=site, schedule=schedule, action=action)
            self._armed.setdefault(site, []).append(armed)
            return armed

    def disarm(self, armed: ArmedFault) -> None:
        armed.disarmed = True
        with self._lock:
            faults = self._armed.get(armed.site)
            if faults and armed in faults:
                faults.remove(armed)
                if not faults:
                    del self._armed[armed.site]

    def disarm_all(self) -> None:
        with self._lock:
            for faults in self._armed.values():
                for armed in faults:
                    armed.disarmed = True
            self._armed.clear()

    def armed_at(self, site: str) -> list[ArmedFault]:
        with self._lock:
            return list(self._armed.get(site, ()))

    # -- the hot path ------------------------------------------------------------

    def fire(self, site: str, **ctx) -> FaultDirective | None:
        """Evaluate the armed faults at ``site``; called by ``fault_point``.

        Returns a directive for the instrumented code to apply (torn
        write, partial flush, dropped message, ...), or ``None``. Raising
        actions raise directly. At most one directive fires per hit; the
        first armed fault whose schedule matches wins.
        """
        faults = self._armed.get(site)
        if not faults:
            return None
        for armed in list(faults):
            if armed.disarmed:
                continue
            with armed._lock:
                armed.hits += 1
                should = armed.schedule.should_fire(armed.hits)
                if should:
                    armed.fired += 1
            if should:
                get_registry().counter(
                    "faults.injected", help="faults fired by the injection registry"
                ).inc()
                record_event("fault.injected", site=site)
                return armed.action.trigger(site, ctx)
        return None


_global_fault_registry = FaultRegistry()


def get_fault_registry() -> FaultRegistry:
    """The process-global fault registry every component reports into."""
    return _global_fault_registry


def register_fault_site(name: str, description: str = "") -> FaultSite:
    """Module-level helper: declare a site at import time."""
    return _global_fault_registry.register_site(name, description)


def fault_point(name: str, **ctx) -> FaultDirective | None:
    """The instrumentation hook: evaluate armed faults at ``name``.

    Disarmed cost is a single dict lookup. ``ctx`` keyword arguments are
    passed to the action (e.g. ``image=...`` at ``disk.write_page`` so a
    torn-write action can corrupt the exact bytes in flight).
    """
    return _global_fault_registry.fire(name, **ctx)
