"""Typed fault actions: *what* happens when an armed fault fires.

Two shapes:

* **Raising actions** (`RaiseTransient`, `RaiseFatal`, `ForceCrash`)
  raise the matching :mod:`repro.errors` exception straight out of the
  ``fault_point`` call — the instrumented code needs no special handling.
* **Directive actions** (`TornWrite`, `PartialFlush`, `DropMessage`,
  `DuplicateMessage`) return a :class:`FaultDirective` that only the
  site that understands it applies (the disk tears the in-flight page
  image; the WAL stops the flush short; the driver's channel send drops
  or duplicates the sealed package). A site that receives a directive it
  cannot interpret ignores it — arming `TornWrite` at `engine.commit`
  is a no-op, not an error.

Torn writes and partial flushes model *power loss mid-I/O*, so their
directives carry ``then_crash=True`` and the applying site raises
:class:`~repro.errors.ForcedCrash` after corrupting state: a flush that
returned success must never have lied about durability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import FatalFault, ForcedCrash, TransientFault


@dataclass(frozen=True)
class FaultDirective:
    """Base class for instructions handed back to the instrumented site."""

    kind: str = "noop"


@dataclass(frozen=True)
class TornWriteDirective(FaultDirective):
    """Tear the page image being written: keep a prefix of the new bytes,
    leave the rest as whatever was there before (old image or zeros)."""

    kind: str = "torn_write"
    keep_fraction: float = 0.5
    then_crash: bool = True

    def tear(self, new_image: bytes, old_image: bytes | None) -> bytes:
        keep = max(1, int(len(new_image) * self.keep_fraction))
        tail_source = old_image if old_image is not None else b"\x00" * len(new_image)
        tail = tail_source[keep:].ljust(len(new_image) - keep, b"\x00")
        return new_image[:keep] + tail[: len(new_image) - keep]


@dataclass(frozen=True)
class PartialFlushDirective(FaultDirective):
    """Stop a WAL flush short of the tail: the last ``drop_last`` appended
    records do not become durable. Models a crash mid-fsync — the torn
    log tail of Section 4.5."""

    kind: str = "partial_flush"
    drop_last: int = 1
    then_crash: bool = True


@dataclass(frozen=True)
class DropMessageDirective(FaultDirective):
    """Silently drop a channel message before delivery. The sender sees a
    transient error (a real dropped request manifests as a timeout)."""

    kind: str = "drop_message"


@dataclass(frozen=True)
class DuplicateMessageDirective(FaultDirective):
    """Deliver a channel message twice — the replay the enclave's nonce
    range tracker (Section 4.2) must reject on the second delivery."""

    kind: str = "duplicate_message"


class FaultAction(Protocol):
    def trigger(self, site: str, ctx: dict) -> FaultDirective | None:
        """Raise an injected error or return a directive for the site."""
        ...


class RaiseTransient:
    """Raise a retryable :class:`~repro.errors.TransientFault`."""

    def __init__(self, message: str | None = None):
        self.message = message

    def trigger(self, site: str, ctx: dict) -> FaultDirective | None:
        raise TransientFault(site, self.message)


class RaiseFatal:
    """Raise a non-retryable :class:`~repro.errors.FatalFault`."""

    def __init__(self, message: str | None = None):
        self.message = message

    def trigger(self, site: str, ctx: dict) -> FaultDirective | None:
        raise FatalFault(site, self.message)


class ForceCrash:
    """Raise :class:`~repro.errors.ForcedCrash`: volatile state is gone."""

    def trigger(self, site: str, ctx: dict) -> FaultDirective | None:
        raise ForcedCrash(site)


class TornWrite:
    """Tear the last page image written, then crash (power loss mid-write)."""

    def __init__(self, keep_fraction: float = 0.5, then_crash: bool = True):
        if not 0.0 < keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in (0, 1): some bytes land, some don't")
        self.directive = TornWriteDirective(
            keep_fraction=keep_fraction, then_crash=then_crash
        )

    def trigger(self, site: str, ctx: dict) -> FaultDirective | None:
        return self.directive


class PartialFlush:
    """Stop the WAL flush ``drop_last`` records short of the tail, then crash."""

    def __init__(self, drop_last: int = 1, then_crash: bool = True):
        if drop_last < 1:
            raise ValueError("drop_last must be >= 1 (otherwise the flush completed)")
        self.directive = PartialFlushDirective(drop_last=drop_last, then_crash=then_crash)

    def trigger(self, site: str, ctx: dict) -> FaultDirective | None:
        return self.directive


class DropMessage:
    def trigger(self, site: str, ctx: dict) -> FaultDirective | None:
        return DropMessageDirective()


class DuplicateMessage:
    def trigger(self, site: str, ctx: dict) -> FaultDirective | None:
        return DuplicateMessageDirective()
