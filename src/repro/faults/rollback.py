"""Rollback fault actions: the snapshot-restoring adversary.

Authenticated encryption makes *forging* ciphertext infeasible, but an
operator with disk access does not need to forge anything: every byte of
yesterday's database is genuine ciphertext with valid tags. These
actions weaponize that observation inside the fault-injection framework.
Each one first **captures** a point-in-time snapshot through the
sanctioned adversary hooks (:meth:`Disk.snapshot_pages`,
:meth:`WriteAheadLog.snapshot_state`, :meth:`Catalog.snapshot_ceks`) and
later — when its schedule fires at an armed site — **swaps the old state
back in** and raises :class:`~repro.errors.ForcedCrash`, modelling a
host that powers the server off, restores a backup, and boots it again.

The restored state is internally consistent: checksums pass, AEAD tags
verify, the WAL replays cleanly. Without a freshness anchor, recovery
accepts it silently (the baseline the rollback test suite pins); with
one, :meth:`~repro.sqlengine.engine.StorageEngine.recover` raises
:class:`~repro.errors.StaleRestoreError`.

Four attack shapes, in increasing subtlety:

* :class:`RestoreSnapshot` — the whole disk *and* WAL go back in time
  (classic backup restore). Detected by ``wal.prefix``.
* :class:`ReplayPages` — only data pages are replayed; the WAL is left
  current, so redo alone cannot explain the stale images. Detected by
  ``page.stale``.
* :class:`RevertBtreeNodes` — only the heap pages backing one indexed
  table are reverted (B+-trees rebuild from the heap at recovery, so
  reverting the heap is the durable equivalent of reverting the tree's
  nodes). Detected by ``page.stale`` on exactly those pages.
* :class:`StaleCekVersion` — disk, WAL, *and* the CEK system table go
  back to before a key rotation: the pre-rotation backup attack.
  Detected by ``wal.prefix`` (the rotation's DDL trail is missing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ForcedCrash
from repro.faults.actions import FaultDirective

if TYPE_CHECKING:
    from repro.sqlengine.engine import StorageEngine


class RollbackAction:
    """Base: capture now, restore-and-crash when the schedule fires.

    ``capture(engine)`` is called by the test (or
    :class:`~repro.security.adversary.StrongAdversary`) at the moment
    being "backed up"; ``trigger`` is the
    :class:`~repro.faults.actions.FaultAction` protocol entry the
    registry invokes. An un-captured action is a no-op — the schedule
    fired before the adversary had a backup to restore.
    """

    description = "restore an old-but-valid snapshot, then crash"

    def __init__(self) -> None:
        self._engine: "StorageEngine | None" = None
        self.restored = False

    def capture(self, engine: "StorageEngine") -> None:
        """Take the backup. Flushes the pool first so the disk snapshot
        is a complete, checksum-clean image of the present."""
        engine.pool.flush_all()
        engine.wal.flush()
        self._engine = engine
        self._capture(engine)

    def restore(self) -> None:
        """Swap the captured state back in (without the crash)."""
        assert self._engine is not None, "capture() first"
        self._restore(self._engine)
        self.restored = True

    def trigger(self, site: str, ctx: dict) -> FaultDirective | None:
        if self._engine is None:
            return None
        self.restore()
        raise ForcedCrash(site, f"host restored a stale snapshot ({type(self).__name__})")

    # subclass hooks
    def _capture(self, engine: "StorageEngine") -> None:
        raise NotImplementedError

    def _restore(self, engine: "StorageEngine") -> None:
        raise NotImplementedError


class RestoreSnapshot(RollbackAction):
    """Restore the whole disk + WAL from the captured backup."""

    description = "whole-database backup restore (disk + WAL)"

    def _capture(self, engine: "StorageEngine") -> None:
        self._pages = engine.disk.snapshot_pages()
        self._wal = engine.wal.snapshot_state()

    def _restore(self, engine: "StorageEngine") -> None:
        engine.disk.restore_pages(self._pages, replace=True)
        engine.wal.restore_state(self._wal)


class ReplayPages(RollbackAction):
    """Replay old page images while leaving the WAL current.

    ``page_ids=None`` replays every captured page. The WAL says the
    present; the pages say the past — a splice no amount of redo
    explains, which is exactly what the per-page version map catches.
    """

    description = "replay stale data pages under a current WAL"

    def __init__(self, page_ids: list[int] | None = None) -> None:
        super().__init__()
        self._page_ids = page_ids

    def _capture(self, engine: "StorageEngine") -> None:
        pages = engine.disk.snapshot_pages()
        if self._page_ids is not None:
            pages = {pid: pages[pid] for pid in self._page_ids if pid in pages}
        self._pages = pages

    def _restore(self, engine: "StorageEngine") -> None:
        engine.disk.restore_pages(self._pages, replace=False)


class RevertBtreeNodes(RollbackAction):
    """Revert the heap pages backing one indexed table.

    Recovery rebuilds every B+-tree from its heap (trees are volatile in
    this engine), so restoring the heap pages *is* the durable form of
    reverting the tree's nodes: after recovery the index faithfully
    reflects yesterday's rows.
    """

    description = "revert the heap pages behind an indexed table"

    def __init__(self, table_name: str) -> None:
        super().__init__()
        self._table_name = table_name.lower()

    def _capture(self, engine: "StorageEngine") -> None:
        table = engine.table(self._table_name)
        images = engine.disk.snapshot_pages()
        self._pages = {
            pid: images[pid] for pid in table.heap.page_ids if pid in images
        }

    def _restore(self, engine: "StorageEngine") -> None:
        engine.disk.restore_pages(self._pages, replace=False)


class StaleCekVersion(RollbackAction):
    """Restore a pre-key-rotation backup: disk, WAL, and CEK metadata.

    The stale CEK values are genuine ciphertext under the CMK, and every
    cell on the restored disk decrypts cleanly under them — the rotation
    never happened, as far as the restored state can tell. Only the
    anchor remembers the rotation's WAL trail.
    """

    description = "pre-rotation backup restore (disk + WAL + CEK table)"

    def _capture(self, engine: "StorageEngine") -> None:
        self._pages = engine.disk.snapshot_pages()
        self._wal = engine.wal.snapshot_state()
        self._ceks = engine.catalog.snapshot_ceks()
        self._cek_versions = engine.catalog.snapshot_cek_versions()
        self._column_encryption = engine.catalog.snapshot_column_encryption()

    def _restore(self, engine: "StorageEngine") -> None:
        engine.disk.restore_pages(self._pages, replace=True)
        engine.wal.restore_state(self._wal)
        engine.catalog.restore_ceks(self._ceks)
        # The version system table and the columns' encryption attributes
        # go back too: a real backup restore would not spare either (the
        # rotation's metadata flip is just another catalog row). The
        # anchor's held per-CEK floor is what the restore cannot rewind —
        # recovery reports the stale version as a ``cek.version:<name>``
        # violation on top of ``wal.prefix``.
        engine.catalog.restore_cek_versions(self._cek_versions)
        engine.catalog.restore_column_encryption(self._column_encryption)


ROLLBACK_ACTIONS = (RestoreSnapshot, ReplayPages, RevertBtreeNodes, StaleCekVersion)
