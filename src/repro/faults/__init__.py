"""Deterministic fault injection for the Always Encrypted reproduction.

See ``docs/FAULTS.md``. The shape:

    from repro.faults import get_fault_registry, OnNth, RaiseTransient

    faults = get_fault_registry()
    armed = faults.arm("enclave.channel.send", OnNth(1), RaiseTransient())
    try:
        ...   # run the workload; the first channel send fails, is retried
    finally:
        faults.disarm(armed)
"""

from repro.faults.actions import (
    DropMessage,
    DropMessageDirective,
    DuplicateMessage,
    DuplicateMessageDirective,
    FaultAction,
    FaultDirective,
    ForceCrash,
    PartialFlush,
    PartialFlushDirective,
    RaiseFatal,
    RaiseTransient,
    TornWrite,
    TornWriteDirective,
)
from repro.faults.classify import ErrorClass, classify_error, is_transient
from repro.faults.rollback import (
    ROLLBACK_ACTIONS,
    ReplayPages,
    RestoreSnapshot,
    RevertBtreeNodes,
    RollbackAction,
    StaleCekVersion,
)
from repro.faults.registry import (
    ArmedFault,
    FaultRegistry,
    FaultSite,
    fault_point,
    get_fault_registry,
    register_fault_site,
)
from repro.faults.schedules import (
    Always,
    EveryKth,
    Never,
    OnNth,
    Schedule,
    SeededProbability,
)

__all__ = [
    "ArmedFault",
    "Always",
    "DropMessage",
    "DropMessageDirective",
    "DuplicateMessage",
    "DuplicateMessageDirective",
    "ErrorClass",
    "EveryKth",
    "FaultAction",
    "FaultDirective",
    "FaultRegistry",
    "FaultSite",
    "ForceCrash",
    "Never",
    "OnNth",
    "PartialFlush",
    "PartialFlushDirective",
    "RaiseFatal",
    "RaiseTransient",
    "ReplayPages",
    "RestoreSnapshot",
    "RevertBtreeNodes",
    "RollbackAction",
    "ROLLBACK_ACTIONS",
    "Schedule",
    "StaleCekVersion",
    "SeededProbability",
    "TornWrite",
    "TornWriteDirective",
    "classify_error",
    "fault_point",
    "get_fault_registry",
    "is_transient",
    "register_fault_site",
]
