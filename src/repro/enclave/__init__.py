"""The simulated VBS enclave and its boundary machinery.

* :class:`~repro.enclave.runtime.Enclave` — the enclave itself: sessions,
  CEK store, expression evaluation, gated encryption oracle.
* :class:`~repro.enclave.runtime.EnclaveBinary` — the signed "dll".
* :mod:`~repro.enclave.nonce` — replay protection with compact ranges.
* :mod:`~repro.enclave.channel` — the sealed CEK package format.
* :class:`~repro.enclave.worker.EnclaveCallGateway` — sync vs worker-queue
  call routing (the Section 4.6 optimization).
"""

from repro.enclave.channel import (
    CekPackage,
    SealedPackage,
    open_package,
    seal_package,
)
from repro.enclave.nonce import NonceCounter, NonceRangeTracker
from repro.enclave.runtime import (
    ENCLAVE_VERSION,
    Enclave,
    EnclaveBinary,
    EnclaveCounters,
)
from repro.enclave.sqlos import SqlOs
from repro.enclave.validate import validate_program
from repro.enclave.worker import CallMode, EnclaveCallGateway, WorkerStats

__all__ = [
    "CallMode",
    "CekPackage",
    "ENCLAVE_VERSION",
    "Enclave",
    "EnclaveBinary",
    "EnclaveCallGateway",
    "EnclaveCounters",
    "NonceCounter",
    "NonceRangeTracker",
    "SealedPackage",
    "SqlOs",
    "WorkerStats",
    "open_package",
    "seal_package",
    "validate_program",
]
