"""The simulated VBS enclave and its boundary machinery.

* :class:`~repro.enclave.runtime.Enclave` — the enclave itself: sessions,
  CEK store, expression evaluation, gated encryption oracle.
* :class:`~repro.enclave.runtime.EnclaveBinary` — the signed "dll".
* :mod:`~repro.enclave.nonce` — replay protection with compact ranges.
* :mod:`~repro.enclave.channel` — the sealed CEK package format.
* :class:`~repro.enclave.worker.EnclaveCallGateway` — sync vs worker-queue
  call routing (the Section 4.6 optimization).
* :data:`ECALL_SURFACE` — the machine-readable declaration of the
  sanctioned host↔enclave surface, consumed by both the runtime and the
  trust-boundary static analyzer (:mod:`repro.analysis`).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class EcallSurface:
    """The sanctioned trust-boundary surface, declared once.

    The paper's security argument depends on the host interacting with the
    enclave only through a narrow, auditable ecall surface. This registry
    is that surface in machine-readable form. Three consumers keep it
    honest:

    * :meth:`Enclave._observe` refuses to record a boundary crossing whose
      ecall name is not in :attr:`ecalls` — an undeclared ecall cannot run;
    * :class:`EnclaveCallGateway` verifies at construction that everything
      declared in :attr:`gateway` actually exists on the gateway;
    * the :mod:`repro.analysis` trust-boundary rule flags any host code
      that imports or touches anything *outside* this surface.
    """

    #: Ecall methods on :class:`Enclave` that cross into the enclave. Every
    #: boundary observation must carry one of these names.
    ecalls: frozenset
    #: Host-visible observability/attestation reads on :class:`Enclave`
    #: (measurement, counters, the boundary-observer tap). These expose
    #: exactly what the paper's adversary model already grants the host.
    observable: frozenset
    #: The public surface of :class:`EnclaveCallGateway` hosts may use.
    gateway: frozenset
    #: Names host packages may import from the ``repro.enclave`` facade.
    #: Everything else in the package is enclave-internal.
    importable: frozenset


ECALL_SURFACE = EcallSurface(
    ecalls=frozenset({
        "start_session",
        "install_package",
        "installed_ceks",
        "register_program",
        "eval",
        "eval_batch",
        "compare",
        "compare_batch",
        "begin_rotation",
        "end_rotation",
        "encrypt_for_ddl",
        "recrypt_for_ddl",
        "recrypt_batch_for_ddl",
        "decrypt_for_ddl",
        "anchor_attach",
        "anchor_advance",
        "anchor_confirm",
        "anchor_cek_version",
        "anchor_verify",
        "anchor_truncate",
        "anchor_status",
    }),
    observable=frozenset({
        "measure",
        "public_key",
        "add_boundary_observer",
        "counters",
        "binary",
        "hypervisor_version",
    }),
    gateway=frozenset({
        "register_program",
        "eval",
        "eval_batch",
        "shutdown",
        "stats",
        "mode",
        "enclave",
        "n_threads",
        "transition_cost_s",
        "spin_duration_s",
    }),
    importable=frozenset({
        "ECALL_SURFACE",
        "EcallSurface",
        "ENCLAVE_VERSION",
        "CallMode",
        "CekPackage",
        "Enclave",
        "EnclaveBinary",
        "EnclaveCallGateway",
        "EnclaveCounters",
        "NonceCounter",
        "NonceRangeTracker",
        "SealedPackage",
        "WorkerStats",
        "seal_package",
    }),
)

from repro.enclave.channel import (
    CekPackage,
    SealedPackage,
    open_package,
    seal_package,
)
from repro.enclave.nonce import NonceCounter, NonceRangeTracker
from repro.enclave.runtime import (
    ENCLAVE_VERSION,
    Enclave,
    EnclaveBinary,
    EnclaveCounters,
)
from repro.enclave.sqlos import SqlOs
from repro.enclave.validate import validate_program
from repro.enclave.worker import CallMode, EnclaveCallGateway, WorkerStats

__all__ = [
    "ECALL_SURFACE",
    "EcallSurface",
    "CallMode",
    "CekPackage",
    "ENCLAVE_VERSION",
    "Enclave",
    "EnclaveBinary",
    "EnclaveCallGateway",
    "EnclaveCounters",
    "NonceCounter",
    "NonceRangeTracker",
    "SealedPackage",
    "SqlOs",
    "WorkerStats",
    "open_package",
    "seal_package",
    "validate_program",
]
