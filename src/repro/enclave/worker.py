"""The enclave worker-queue optimization (Section 4.6).

Calling the enclave synchronously pays a security-boundary transition on
every expression evaluation — and expression evaluation is the inner loop
of query processing. The paper's optimization: pin enclave worker threads
that consume work from a queue, spinning for a fixed duration after each
item before exiting the enclave and sleeping. Under heavy enclave use the
workers stay hot and the transition cost is amortized away; under light
use they sleep and release resources.

The simulation is faithful in mechanism: real worker threads, a real queue,
real spin-then-sleep. The boundary-transition cost itself (a hypervisor
context switch on VBS) has no native analog in-process, so it is charged
explicitly as a configurable busy-wait — the knob the A1 ablation bench
sweeps.
"""

from __future__ import annotations

import enum
import queue
import threading
import time
from dataclasses import dataclass, field

from repro.enclave.runtime import Enclave
from repro.errors import EnclaveError
from repro.obs.flightrec import record_event
from repro.obs.metrics import StatsView, get_registry
from repro.obs.tracing import EMPTY_CAPTURE, CapturedTrace, get_tracer
from repro.obs.transition_cost import get_transition_cost_model


class CallMode(enum.Enum):
    SYNCHRONOUS = "sync"     # every call pays the boundary transition
    QUEUED = "queued"        # worker threads amortize transitions


class WorkerStats(StatsView):
    """Per-gateway view over the global ``worker.*`` counters.

    calls / boundary_transitions (times the transition cost was paid) /
    worker_wakeups (queue workers transitioning sleep→hot) / spin_hits
    (work picked up while spinning, no cost).
    """

    FIELDS = {
        "calls": "worker.calls",
        "boundary_transitions": "worker.boundary_transitions",
        "worker_wakeups": "worker.wakeups",
        "spin_hits": "worker.spin_hits",
    }


def _busy_wait(duration_s: float) -> None:
    if duration_s <= 0:
        return
    deadline = time.perf_counter() + duration_s
    while time.perf_counter() < deadline:
        pass


#: Bucket edges for the ``worker.batch_size`` histogram: powers of two up
#: to well past the default executor chunk size (64).
_BATCH_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass
class _WorkItem:
    handle: int
    inputs: list
    done: threading.Event = field(default_factory=threading.Event)
    result: list | None = None
    error: Exception | None = None
    #: When True, ``inputs`` is a list of rows and the item routes through
    #: ``Enclave.eval_batch`` — one queue slot, one transition per chunk.
    batch: bool = False
    #: The submitting thread's metric attribution contexts; the worker
    #: adopts them so enclave counters land in the right statement's stats.
    contexts: tuple = ()
    #: The submitting thread's trace state; the worker adopts it so
    #: flight-recorder events emitted inside the enclave (ecall
    #: observations, measured transitions) carry the statement identity.
    trace: CapturedTrace = EMPTY_CAPTURE


class EnclaveCallGateway:
    """Routes host expression-eval calls to the enclave.

    In SYNCHRONOUS mode each call charges ``transition_cost_s``. In QUEUED
    mode, ``n_threads`` workers consume a shared queue; after finishing an
    item a worker spins for ``spin_duration_s`` polling for more work, and
    only a sleeping worker's wakeup charges the transition cost.

    Implements the :class:`~repro.sqlengine.expression.vm.EnclaveConnector`
    protocol, so a host StackMachine can use it directly for TM_EVAL.
    """

    def __init__(
        self,
        enclave: Enclave,
        mode: CallMode = CallMode.QUEUED,
        n_threads: int = 4,
        transition_cost_s: float = 0.0,
        spin_duration_s: float = 0.0002,
    ):
        if n_threads < 1:
            raise EnclaveError("enclave worker pool needs at least one thread")
        self.enclave = enclave
        self.mode = mode
        self.n_threads = n_threads
        self.transition_cost_s = transition_cost_s
        self.spin_duration_s = spin_duration_s
        self.stats = WorkerStats()
        self._tracer = get_tracer()
        self._queue_depth = get_registry().gauge(
            "worker.queue_depth", help="items waiting in the enclave work queue"
        )
        self._batch_size = get_registry().histogram(
            "worker.batch_size",
            buckets=_BATCH_SIZE_BUCKETS,
            help="rows shipped per enclave eval submission (1 = row-at-a-time)",
        )
        self._queue: queue.Queue[_WorkItem | None] = queue.Queue()
        self._shutdown = False
        self._threads: list[threading.Thread] = []
        # The gateway half of the sanctioned-surface registry: everything
        # declared callable by hosts must exist here, or the declaration
        # has drifted from the code.
        from repro.enclave import ECALL_SURFACE

        for entry in ECALL_SURFACE.gateway:
            if not hasattr(self, entry):
                raise EnclaveError(
                    f"ECALL_SURFACE declares gateway entry {entry!r} but "
                    "EnclaveCallGateway does not provide it"
                )
        if mode is CallMode.QUEUED:
            for i in range(n_threads):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"enclave-worker-{i}", daemon=True
                )
                thread.start()
                self._threads.append(thread)

    # -- EnclaveConnector protocol --------------------------------------------

    def register_program(self, program_bytes: bytes) -> int:
        return self.enclave.register_program(program_bytes)

    def eval(self, handle: int, inputs: list) -> list:
        self.stats.inc("calls")
        self._batch_size.observe(1)
        if self.mode is CallMode.SYNCHRONOUS:
            self.stats.inc("boundary_transitions")
            with self._tracer.ecall_span("enclave.eval", mode="sync"):
                started = time.perf_counter()
                _busy_wait(self.transition_cost_s)
                result = self.enclave.eval(handle, inputs)
                self._observe_transition(1, time.perf_counter() - started)
                return result
        item = _WorkItem(
            handle=handle, inputs=inputs,
            contexts=get_registry().current_contexts(),
            trace=self._tracer.capture(),
        )
        # The span covers submit→completion as seen by the host thread: the
        # full cost of routing one evaluation through the enclave boundary.
        with self._tracer.ecall_span("enclave.eval", mode="queued"):
            self._queue.put(item)
            self._queue_depth.set(self._queue.qsize())
            item.done.wait()
        if item.error is not None:
            raise item.error
        assert item.result is not None
        return item.result

    def eval_batch(self, handle: int, rows: list[list]) -> list[list]:
        """Evaluate ``handle`` over many rows through one boundary crossing.

        The whole chunk travels as a single work item, so both modes charge
        the transition cost once per chunk instead of once per row — the
        Section 4.6 amortization made explicit rather than probabilistic.
        """
        if not rows:
            return []
        self.stats.inc("calls")
        self._batch_size.observe(len(rows))
        if self.mode is CallMode.SYNCHRONOUS:
            self.stats.inc("boundary_transitions")
            with self._tracer.ecall_span(
                "enclave.eval_batch", mode="sync", rows=len(rows)
            ):
                started = time.perf_counter()
                _busy_wait(self.transition_cost_s)
                result = self.enclave.eval_batch(handle, rows)
                self._observe_transition(len(rows), time.perf_counter() - started)
                return result
        item = _WorkItem(
            handle=handle, inputs=rows, batch=True,
            contexts=get_registry().current_contexts(),
            trace=self._tracer.capture(),
        )
        with self._tracer.ecall_span(
            "enclave.eval_batch", mode="queued", rows=len(rows)
        ):
            self._queue.put(item)
            self._queue_depth.set(self._queue.qsize())
            item.done.wait()
        if item.error is not None:
            raise item.error
        assert item.result is not None
        return item.result

    # -- worker threads ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._shutdown:
            # Sleeping state: block on the queue. Picking up work from here
            # is a wakeup and pays the enclave-entry transition.
            try:
                item = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            if item is None:
                return
            with get_registry().adopt_contexts(item.contexts), \
                    self._tracer.adopt(item.trace):
                self.stats.inc("worker_wakeups")
                self.stats.inc("boundary_transitions")
                _busy_wait(self.transition_cost_s)
                self._process(item)
            # Hot state: spin polling for more work before exiting. The
            # sleep(0) is the PAUSE of this spin loop — it yields the GIL
            # so submitters can actually enqueue while we poll.
            deadline = time.perf_counter() + self.spin_duration_s
            while not self._shutdown and time.perf_counter() < deadline:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    time.sleep(0)
                    continue
                if item is None:
                    return
                with get_registry().adopt_contexts(item.contexts), \
                        self._tracer.adopt(item.trace):
                    self.stats.inc("spin_hits")
                    self._process(item)
                deadline = time.perf_counter() + self.spin_duration_s

    def _observe_transition(self, rows: int, wall_s: float) -> None:
        """Feed the measured ecall wall time to the cost model and the
        flight recorder — the batch executor's future cost-model input."""
        get_transition_cost_model().observe(rows, wall_s)
        record_event("enclave.transition", rows=rows, duration_s=wall_s)

    def _process(self, item: _WorkItem) -> None:
        self._queue_depth.set(self._queue.qsize())
        started = time.perf_counter()
        try:
            if item.batch:
                item.result = self.enclave.eval_batch(item.handle, item.inputs)
            else:
                item.result = self.enclave.eval(item.handle, item.inputs)
            self._observe_transition(
                len(item.inputs) if item.batch else 1,
                time.perf_counter() - started,
            )
        except Exception as exc:  # propagate to the submitting host thread
            item.error = exc
        finally:
            item.done.set()

    def shutdown(self) -> None:
        self._shutdown = True
        for __ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=1.0)

    def __enter__(self) -> "EnclaveCallGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
