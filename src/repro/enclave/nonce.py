"""Replay protection for CEK installation (Section 4.2).

SQL Server sits between the driver and the enclave and could replay a TDS
stream to re-install keys. The driver therefore attaches a fresh nonce to
every encrypted CEK package. The paper's design, reproduced here: the
driver generates nonces from a counter, and the enclave tracks *all*
historical nonces per session, encoded as compact ranges — because the
driver's values are near-sequential (with local reordering from
multi-threading), the encoding stays tiny.
"""

from __future__ import annotations

import bisect

from repro.errors import ReplayError


class NonceRangeTracker:
    """Tracks the set of nonces seen so far as disjoint inclusive ranges.

    ``check_and_add`` is O(log r) in the number of ranges r; for the
    near-sequential sequences the driver produces, r stays near 1.
    """

    def __init__(self) -> None:
        # Parallel sorted lists of range starts and ends; ranges are
        # disjoint and non-adjacent (adjacent ranges are merged).
        self._starts: list[int] = []
        self._ends: list[int] = []

    def __contains__(self, nonce: int) -> bool:
        idx = bisect.bisect_right(self._starts, nonce) - 1
        return idx >= 0 and self._ends[idx] >= nonce

    @property
    def range_count(self) -> int:
        """Number of stored ranges — the enclave state footprint."""
        return len(self._starts)

    @property
    def total_seen(self) -> int:
        return sum(end - start + 1 for start, end in zip(self._starts, self._ends))

    def check_and_add(self, nonce: int) -> None:
        """Record ``nonce``; raise :class:`ReplayError` if already seen."""
        if nonce < 0:
            raise ReplayError(f"nonce must be non-negative, got {nonce}")
        idx = bisect.bisect_right(self._starts, nonce) - 1
        if idx >= 0 and self._ends[idx] >= nonce:
            raise ReplayError(f"replayed nonce {nonce}")

        # Can we extend the range on the left (ends[idx] == nonce - 1)?
        extend_left = idx >= 0 and self._ends[idx] == nonce - 1
        # Can we extend the range on the right (starts[idx+1] == nonce + 1)?
        right = idx + 1
        extend_right = right < len(self._starts) and self._starts[right] == nonce + 1

        if extend_left and extend_right:
            # Merge the two ranges across the gap that nonce fills.
            self._ends[idx] = self._ends[right]
            del self._starts[right]
            del self._ends[right]
        elif extend_left:
            self._ends[idx] = nonce
        elif extend_right:
            self._starts[right] = nonce
        else:
            self._starts.insert(right, nonce)
            self._ends.insert(right, nonce)

    def ranges(self) -> list[tuple[int, int]]:
        """The compact encoding, e.g. [(0, 100)] after nonces 0..100."""
        return list(zip(self._starts, self._ends))


class NonceCounter:
    """Driver-side sequential nonce source (one per session/shared secret)."""

    def __init__(self, start: int = 0):
        self._next = start

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value
