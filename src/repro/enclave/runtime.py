"""The simulated VBS enclave (Sections 2.1, 4.2, 4.4).

The enclave is modelled as an object whose internal state (CEK material,
session secrets, plaintext mid-computation) the host never touches; the
*only* interaction surface is the explicit ecall methods below, and every
crossing is recorded so the strong-adversary simulation can observe exactly
what the paper says an adversary sees — and nothing more.

What the real TEE provides by hardware/hypervisor means (memory isolation)
is provided here by convention plus an observer API: the security analysis
in :mod:`repro.security` treats everything passed into or out of these
methods as adversary-visible, and nothing else.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.attestation.report import EnclaveReport
from repro.crypto.aead import EncryptionScheme
from repro.crypto.dh import DiffieHellman, public_key_bytes
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.channel import SealedPackage, SessionSecrets, open_package
from repro.enclave.sqlos import SqlOs
from repro.enclave.validate import validate_program
from repro.errors import CryptoError, EnclaveError, IntegrityError, ReplayError
from repro.faults.registry import fault_point, register_fault_site
from repro.obs.flightrec import record_event
from repro.obs.metrics import StatsView

register_fault_site(
    "enclave.channel.recv",
    "a sealed CEK package arriving at the enclave's install ecall",
)
register_fault_site(
    "enclave.eval_batch",
    "per-row checkpoint inside a batched eval ecall (mid-batch failures)",
)
register_fault_site(
    "enclave.recrypt_batch",
    "per-row checkpoint inside a batched recrypt ecall (rotation mid-batch failures)",
)
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.expression.program import StackProgram
from repro.sqlengine.expression.vm import StackMachine
from repro.sqlengine.types import EncryptionInfo
from repro.sqlengine.values import (
    SqlScalar,
    compare_values,
    deserialize_value,
    serialize_value,
)

ENCLAVE_VERSION = 2
_session_ids = itertools.count(1)


@dataclass(frozen=True)
class EnclaveBinary:
    """The signed enclave "dll" the host loads.

    ``author_key`` is the specially provisioned signing key the paper
    describes (Section 4.2, health check 3): clients check the author ID
    rather than the binary hash so minor code changes don't break clients.
    """

    content: bytes
    version: int
    author_key: RsaKeyPair
    signature: bytes

    @classmethod
    def build(cls, author_key: RsaKeyPair, version: int = ENCLAVE_VERSION, content: bytes | None = None) -> "EnclaveBinary":
        if content is None:
            content = f"AE-enclave-ES-subset-v{version}".encode()
        return cls(
            content=content,
            version=version,
            author_key=author_key,
            signature=author_key.sign(content),
        )

    @property
    def binary_hash(self) -> bytes:
        return hashlib.sha256(self.content).digest()

    @property
    def author_id(self) -> bytes:
        return self.author_key.public.fingerprint()


class EnclaveCounters(StatsView):
    """Boundary-crossing and work counters (perf model + leakage analysis).

    Backed by the global metrics registry; each enclave instance reads its
    own deltas since construction. ``cpu_seconds`` is the CPU time spent
    inside enclave computation ecalls (eval/compare/DDL crypto) — the
    enclave service demand for the performance model.
    """

    FIELDS = {
        "ecalls": "enclave.ecalls",
        "sessions_started": "enclave.sessions_started",
        "packages_installed": "enclave.packages_installed",
        "programs_registered": "enclave.programs_registered",
        "evals": "enclave.evals",
        "eval_batches": "enclave.eval_batches",
        "batched_rows": "enclave.batched_rows",
        "comparisons": "enclave.comparisons",
        "compare_batches": "enclave.compare_batches",
        "cell_decrypts": "enclave.cell_decrypts",
        "cell_encrypts": "enclave.cell_encrypts",
        "cpu_seconds": "enclave.cpu_seconds",
        "replays_rejected": "enclave.replays_rejected",
    }


# Observer signature: (ecall_name, adversary_visible_inputs, visible_outputs)
BoundaryObserver = Callable[[str, tuple, object], None]


class _EnclaveCryptoContext:
    """The VM crypto context backed by the enclave's SQL OS key store."""

    def __init__(self, enclave: "Enclave"):
        self._enclave = enclave

    def decrypt_cell(self, ciphertext: Ciphertext, enc: EncryptionInfo) -> SqlScalar:
        self._enclave.counters.inc("cell_decrypts")
        # Mid-rotation scans read mixed old/new cells under one column
        # name; the rotation-partner window resolves both, same as the
        # comparison ecalls.
        return deserialize_value(
            self._enclave._decrypt_for_compare(enc.cek_name, ciphertext.envelope)
        )

    def encrypt_cell(self, value: SqlScalar, enc: EncryptionInfo) -> Ciphertext:
        cipher = self._enclave.sqlos.cipher_for(enc.cek_name)
        self._enclave.counters.inc("cell_encrypts")
        return Ciphertext(cipher.encrypt(serialize_value(value), enc.scheme))


class Enclave:
    """A loaded enclave instance inside the (untrusted) SQL Server process."""

    def __init__(self, binary: EnclaveBinary, hypervisor_version: int = 10):
        if not binary.author_key.public or not binary.signature:
            raise EnclaveError("enclave binary is unsigned")
        self.binary = binary
        self.hypervisor_version = hypervisor_version
        self.sqlos = SqlOs()
        self.counters = EnclaveCounters()
        # Per the paper, the VBS enclave creates an RSA key pair when loaded.
        # 1024 bits keeps simulated load times reasonable; the protocol is
        # key-size agnostic.
        self._rsa = RsaKeyPair.generate(1024)
        self._sessions: dict[int, SessionSecrets] = {}
        self._programs: dict[int, StackProgram] = {}
        self._program_handles: dict[bytes, int] = {}
        self._next_handle = itertools.count(1)
        self._vm = StackMachine(crypto=_EnclaveCryptoContext(self))
        # Enclave-held freshness state (rollback defense): survives host
        # crashes and disk restores because it lives in this trust domain.
        from repro.enclave.anchor import AnchorState

        self._anchor = AnchorState()
        self._observers: list[BoundaryObserver] = []
        # Live online-rotation pairs: cek name -> its partner. During the
        # mixed-key window an index over the rotating column holds
        # envelopes under both CEKs, and the comparison ecalls fall back
        # to the partner when the named CEK's MAC rejects a cell.
        self._rotation_partners: dict[str, str] = {}
        self._lock = threading.RLock()
        # Consume the sanctioned-surface registry: every declared entry
        # must actually exist, so the allowlist cannot drift from the code.
        from repro.enclave import ECALL_SURFACE

        for entry in ECALL_SURFACE.ecalls | ECALL_SURFACE.observable:
            if not hasattr(self, entry):
                raise EnclaveError(
                    f"ECALL_SURFACE declares {entry!r} but Enclave does not provide it"
                )

    # -- adversary-visible surface -------------------------------------------

    @property
    def public_key(self):
        """The enclave's RSA public key (visible; its hash is in the report)."""
        return self._rsa.public

    def add_boundary_observer(self, observer: BoundaryObserver) -> None:
        """Register a tap that sees every ecall's visible inputs/outputs."""
        self._observers.append(observer)

    def _observe(self, name: str, visible_inputs: tuple, visible_output: object) -> None:
        from repro.enclave import ECALL_SURFACE

        if name not in ECALL_SURFACE.ecalls:
            raise EnclaveError(
                f"boundary crossing {name!r} is not a declared ecall; add it to "
                "repro.enclave.ECALL_SURFACE if it is meant to be sanctioned"
            )
        self.counters.inc("ecalls")
        # The flight recorder sees only the ecall *name* — the same signal
        # the adversary gets from watching the boundary, never plaintext.
        record_event("enclave.ecall", name=name)
        for observer in self._observers:
            observer(name, visible_inputs, visible_output)

    def measure(self) -> EnclaveReport:
        """Produce the enclave report (host asks the hypervisor to measure)."""
        return EnclaveReport(
            author_id=self.binary.author_id,
            binary_hash=self.binary.binary_hash,
            enclave_version=self.binary.version,
            hypervisor_version=self.hypervisor_version,
            enclave_public_key_hash=self._rsa.public.fingerprint(),
        )

    # -- ecall: session / attestation -----------------------------------------

    def start_session(self, client_dh_public: int) -> tuple[int, int, bytes]:
        """DH half-exchange folded into attestation (Section 4.2).

        Returns ``(session_id, enclave_dh_public, signature)`` where the
        signature covers both DH public keys and is made with the enclave's
        RSA key — binding the exchange to the attested enclave identity.
        """
        dh = DiffieHellman()
        secret = dh.shared_secret(client_dh_public)
        session_id = next(_session_ids)
        with self._lock:
            self._sessions[session_id] = SessionSecrets(shared_secret=secret)
        message = (
            b"AE-DH-BINDING\x00"
            + public_key_bytes(dh.public_key)
            + public_key_bytes(client_dh_public)
        )
        signature = self._rsa.sign(message)
        self.counters.inc("sessions_started")
        self._observe(
            "start_session", (client_dh_public,), (session_id, dh.public_key)
        )
        return session_id, dh.public_key, signature

    # -- ecall: CEK installation ----------------------------------------------

    def install_package(self, session_id: int, sealed: SealedPackage) -> None:
        """Install CEKs (and DDL authorizations) from a sealed package."""
        fault_point("enclave.channel.recv", session_id=session_id)
        session = self._session(session_id)
        try:
            package = open_package(session.shared_secret, sealed)
        except (IntegrityError, CryptoError) as exc:
            raise EnclaveError(f"CEK package failed authentication: {exc}") from exc
        with self.sqlos.state_lock:
            # Nonce check under the state lock: replay and install are atomic.
            session_nonces = getattr(session, "_nonces", None)
            if session_nonces is None:
                from repro.enclave.nonce import NonceRangeTracker

                session_nonces = NonceRangeTracker()
                session._nonces = session_nonces  # type: ignore[attr-defined]
            try:
                session_nonces.check_and_add(package.nonce)
            except ReplayError:
                self.counters.inc("replays_rejected")
                raise
            for name, material in package.ceks:
                if not self.sqlos.has_key(name):
                    self.sqlos.install_key(name, material)
            for digest in package.authorized_query_hashes:
                session.authorized_query_hashes.add(digest)
        self.counters.inc("packages_installed")
        # Adversary sees only the opaque blob and the session id.
        self._observe("install_package", (session_id, sealed.blob), None)

    def installed_ceks(self) -> frozenset[str]:
        return self.sqlos.installed_keys()

    # -- ecall: expression registration & evaluation ---------------------------

    def register_program(self, program_bytes: bytes) -> int:
        """Validate and register a serialized CEsComp; returns a handle.

        Registration is idempotent per byte-identical program, matching the
        register-once / invoke-by-handle pattern in Section 3.
        """
        with self._lock:
            existing = self._program_handles.get(program_bytes)
            if existing is not None:
                return existing
            program = StackProgram.deserialize(program_bytes)
            validate_program(program, self.sqlos.installed_keys())
            handle = next(self._next_handle)
            self._programs[handle] = program
            self._program_handles[program_bytes] = handle
        self.counters.inc("programs_registered")
        self._observe("register_program", (program_bytes,), handle)
        return handle

    def eval(self, handle: int, inputs: list[object]) -> list[object]:
        """Evaluate a registered program (Section 4.4.1 Eval interface)."""
        with self._lock:
            program = self._programs.get(handle)
        if program is None:
            raise EnclaveError(f"no registered program with handle {handle}")
        started = time.perf_counter()
        outputs = self._vm.eval(program, inputs, n_outputs=1)
        self.counters.inc("cpu_seconds", time.perf_counter() - started)
        self.counters.inc("evals")
        # The adversary sees the (ciphertext) inputs and the cleartext result.
        self._observe("eval", (handle, tuple(inputs)), tuple(outputs))
        return outputs

    def eval_batch(self, handle: int, rows: list[list[object]]) -> list[list[object]]:
        """Evaluate a registered program over many input rows in one ecall.

        The Section 4.6 amortization taken to its batched conclusion: one
        program lookup, one boundary crossing for the whole chunk. The
        single observation carries the per-row inputs and per-row outputs,
        so the adversary sees exactly the per-row verdicts it would have
        seen from row-at-a-time eval — batching amortizes cost, it neither
        hides nor adds information crossing the boundary in the clear.
        """
        with self._lock:
            program = self._programs.get(handle)
        if program is None:
            raise EnclaveError(f"no registered program with handle {handle}")
        started = time.perf_counter()
        outputs: list[list[object]] = []
        for index, inputs in enumerate(rows):
            fault_point("enclave.eval_batch", handle=handle, index=index, total=len(rows))
            outputs.append(self._vm.eval(program, inputs, n_outputs=1))
        self.counters.inc("cpu_seconds", time.perf_counter() - started)
        self.counters.inc("evals", len(rows))
        self.counters.inc("eval_batches")
        self.counters.inc("batched_rows", len(rows))
        self._observe(
            "eval_batch",
            (handle, tuple(tuple(inputs) for inputs in rows)),
            tuple(tuple(row_outputs) for row_outputs in outputs),
        )
        return outputs

    # -- ecall: dedicated comparison path for range indexes --------------------

    def begin_rotation(self, old_cek: str, new_cek: str) -> None:
        """Open the mixed-key comparison window for an online rotation.

        While a :class:`~repro.sqlengine.rotation.KeyRotationJob` sweeps a
        column, indexes keyed on it hold envelopes under both CEKs, so the
        comparison ecalls probe the partner CEK when the named one's MAC
        rejects a cell. Registration needs no query authorization: compare
        is already an open ecall over installed keys, and the pair only
        widens its MAC probe — no plaintext crosses the boundary that
        could not already.
        """
        with self._lock:
            self._rotation_partners[old_cek] = new_cek
            self._rotation_partners[new_cek] = old_cek

    def end_rotation(self, old_cek: str, new_cek: str) -> None:
        """Close the mixed-key window (terminal all-new reached)."""
        with self._lock:
            self._rotation_partners.pop(old_cek, None)
            self._rotation_partners.pop(new_cek, None)

    def _decrypt_for_compare(self, cek_name: str, envelope: bytes) -> bytes:
        """Decrypt under the named CEK, falling back to its live rotation
        partner — the one window in which two keys legitimately coexist."""
        with self._lock:
            partner = self._rotation_partners.get(cek_name)
        if not self.sqlos.has_key(cek_name) and partner:
            # A session that only ever shipped the partner key can still
            # probe mid-rotation trees: the window names both keys.
            return self.sqlos.cipher_for(partner).decrypt(envelope)
        try:
            return self.sqlos.cipher_for(cek_name).decrypt(envelope)
        except IntegrityError:
            if not partner or not self.sqlos.has_key(partner):
                raise
            return self.sqlos.cipher_for(partner).decrypt(envelope)

    def compare(self, cek_name: str, left: Ciphertext, right: Ciphertext) -> int:
        """Three-way comparison of two ciphertexts under one CEK.

        This is the routed comparison of Section 3.1.2 (Figure 4): the
        enclave decrypts both operands and returns the ordering *in the
        clear*, which is exactly the ordering leakage Figure 5 attributes
        to RND comparisons.
        """
        started = time.perf_counter()
        left_value = deserialize_value(self._decrypt_for_compare(cek_name, left.envelope))
        right_value = deserialize_value(self._decrypt_for_compare(cek_name, right.envelope))
        self.counters.inc("cell_decrypts", 2)
        result = compare_values(left_value, right_value)
        self.counters.inc("cpu_seconds", time.perf_counter() - started)
        self.counters.inc("comparisons")
        self._observe("compare", (cek_name, left, right), result)
        return result

    def compare_batch(
        self, cek_name: str, probe: Ciphertext, candidates: list[Ciphertext]
    ) -> list[int]:
        """Three-way compare ``probe`` against every candidate in one ecall.

        The probe is decrypted once for the whole batch (``compare`` pays
        two decrypts per comparison). The observation carries every
        per-pair ordering verdict — the same cleartext results the
        adversary collects from single compares, in one crossing.
        """
        if not candidates:
            return []
        started = time.perf_counter()
        probe_value = deserialize_value(self._decrypt_for_compare(cek_name, probe.envelope))
        results: list[int] = []
        for candidate in candidates:
            value = deserialize_value(self._decrypt_for_compare(cek_name, candidate.envelope))
            results.append(compare_values(probe_value, value))
        self.counters.inc("cell_decrypts", 1 + len(candidates))
        self.counters.inc("cpu_seconds", time.perf_counter() - started)
        self.counters.inc("comparisons", len(candidates))
        self.counters.inc("compare_batches")
        self._observe(
            "compare_batch", (cek_name, probe, tuple(candidates)), tuple(results)
        )
        return results

    # -- ecall: the gated encryption oracle (Section 3.2) -----------------------

    def encrypt_for_ddl(
        self,
        query_text: str,
        cek_name: str,
        serialized_plaintext: bytes,
        scheme: EncryptionScheme,
    ) -> Ciphertext:
        """Encrypt a value — only for a client-authorized DDL statement.

        SQL Server supplies the raw query text as its proof; the enclave
        hashes it and requires the hash to have been authorized by some
        attested session (the driver placed it inside a sealed package).
        """
        self._require_authorized(query_text, "Encrypt")
        cipher = self.sqlos.cipher_for(cek_name)
        envelope = cipher.encrypt(serialized_plaintext, scheme)
        self.counters.inc("cell_encrypts")
        self._observe("encrypt_for_ddl", (query_text, cek_name), None)
        return Ciphertext(envelope)

    def recrypt_for_ddl(
        self,
        query_text: str,
        old_cek: str,
        new_cek: str,
        ciphertext: Ciphertext,
        new_scheme: EncryptionScheme,
    ) -> Ciphertext:
        """Re-encrypt a cell from one CEK/scheme to another (key rotation /
        scheme conversion), gated on the same DDL authorization."""
        self._require_authorized(query_text, "Recrypt")
        old_cipher = self.sqlos.cipher_for(old_cek)
        new_cipher = self.sqlos.cipher_for(new_cek)
        plaintext = old_cipher.decrypt(ciphertext.envelope)
        envelope = new_cipher.encrypt(plaintext, new_scheme)
        self.counters.inc("cell_decrypts")
        self.counters.inc("cell_encrypts")
        self._observe("recrypt_for_ddl", (query_text, old_cek, new_cek), None)
        return Ciphertext(envelope)

    def recrypt_batch_for_ddl(
        self,
        query_text: str,
        old_cek: str,
        new_cek: str,
        ciphertexts: list[Ciphertext],
        new_scheme: EncryptionScheme,
    ) -> list[Ciphertext]:
        """Re-encrypt a batch of cells in one boundary crossing.

        The rotation job's inner loop: one authorization check, one
        cipher lookup per key, one ecall for the whole batch — the
        eval_batch amortization applied to the Section 2.4.2 rotation
        path. Plaintext exists only transiently inside the loop; the
        single observation carries only key names and the batch size.

        Cells already under ``new_cek`` pass through unchanged, which
        makes a resumed rotation idempotent: after a crash the job may
        replay a batch whose tail was already converted. A cell under
        *neither* key is tampering and still raises — every cell must
        verify under exactly one of the two keys.
        """
        self._require_authorized(query_text, "Recrypt")
        old_cipher = self.sqlos.cipher_for(old_cek)
        new_cipher = self.sqlos.cipher_for(new_cek)
        started = time.perf_counter()
        outputs: list[Ciphertext] = []
        for index, ciphertext in enumerate(ciphertexts):
            fault_point(
                "enclave.recrypt_batch", index=index, total=len(ciphertexts)
            )
            try:
                plaintext = old_cipher.decrypt(ciphertext.envelope)
            except IntegrityError:
                # Not under the old key — must verify under the new one.
                new_cipher.decrypt(ciphertext.envelope)
                outputs.append(ciphertext)
                continue
            outputs.append(Ciphertext(new_cipher.encrypt(plaintext, new_scheme)))
        self.counters.inc("cpu_seconds", time.perf_counter() - started)
        self.counters.inc("cell_decrypts", len(ciphertexts))
        self.counters.inc("cell_encrypts", len(ciphertexts))
        self._observe(
            "recrypt_batch_for_ddl",
            (query_text, old_cek, new_cek, len(ciphertexts)),
            None,
        )
        return outputs

    def decrypt_for_ddl(self, query_text: str, cek_name: str, ciphertext: Ciphertext) -> bytes:
        """Decrypt a cell for a client-authorized decryption DDL.

        Turning encryption *off* (ALTER COLUMN back to plaintext) exposes
        plaintext to the server by definition; like Encrypt, it is gated on
        an explicit client-authorized query text.
        """
        self._require_authorized(query_text, "Decrypt")
        cipher = self.sqlos.cipher_for(cek_name)
        plaintext = cipher.decrypt(ciphertext.envelope)
        self.counters.inc("cell_decrypts")
        self._observe("decrypt_for_ddl", (query_text, cek_name), None)
        return plaintext

    # -- ecall: the freshness anchor (rollback defense) -------------------------

    def anchor_attach(
        self,
        pages: dict[int, bytes],
        chain_lsn: int,
        chain_digest: bytes,
        base_lsn: int = 0,
        base_digest: bytes = b"\x00" * 32,
        cek_versions: dict[str, int] | None = None,
    ) -> int:
        """Seed the enclave-held freshness anchor from current durable state.

        None of these ecalls take the enclave session lock: the anchor has
        its own innermost latch (see :mod:`repro.enclave.anchor`) because
        advances run under the buffer pool's write-back latch.
        """
        epoch = self._anchor.attach(
            pages, chain_lsn, chain_digest, base_lsn, base_digest, cek_versions
        )
        self._observe("anchor_attach", (chain_lsn, chain_digest), epoch)
        return epoch

    def anchor_advance(
        self,
        chain_lsn: int | None = None,
        chain_digest: bytes | None = None,
        page_id: int | None = None,
        page_digest: bytes | None = None,
    ) -> int:
        """Advance the anchor: a new WAL chain head and/or a page version."""
        epoch = self._anchor.epoch
        if page_id is not None and page_digest is not None:
            epoch = self._anchor.advance_page(page_id, page_digest)
        if chain_lsn is not None and chain_digest is not None:
            epoch = self._anchor.advance_wal(chain_lsn, chain_digest)
        self._observe(
            "anchor_advance", (chain_lsn, chain_digest, page_id, page_digest), epoch
        )
        return epoch

    def anchor_confirm(self, page_id: int) -> None:
        """Confirm the disk write behind the page's latest advance landed."""
        self._anchor.confirm_page(page_id)
        self._observe("anchor_confirm", (page_id,), None)

    def anchor_cek_version(self, cek_name: str, version: int) -> int:
        """Witness a completed CEK rotation (monotonic per key)."""
        epoch = self._anchor.advance_cek_version(cek_name, version)
        self._observe("anchor_cek_version", (cek_name, version), epoch)
        return epoch

    def anchor_verify(
        self,
        base_lsn: int,
        base_digest: bytes,
        record_blobs: list[bytes],
        page_digests: dict[int, bytes],
        torn_page_ids: set[int],
        cek_versions: dict[str, int] | None = None,
    ):
        """Recovery-time freshness check; returns an ``AnchorVerdict``."""
        verdict = self._anchor.verify(
            base_lsn,
            base_digest,
            record_blobs,
            page_digests,
            torn_page_ids,
            cek_versions,
        )
        self._observe(
            "anchor_verify", (base_lsn, len(record_blobs), len(page_digests)), verdict
        )
        return verdict

    def anchor_truncate(self, base_lsn: int, base_digest: bytes) -> int:
        """Seal the current chain head as the new truncation base."""
        epoch = self._anchor.seal_base(base_lsn, base_digest)
        self._observe("anchor_truncate", (base_lsn, base_digest), epoch)
        return epoch

    def anchor_status(self) -> dict:
        """Epoch / head / pages-root metadata (adversary-visible)."""
        status = self._anchor.status()
        self._observe("anchor_status", (), status)
        return status

    def _require_authorized(self, query_text: str, operation: str) -> None:
        digest = hashlib.sha256(query_text.encode("utf-8")).digest()
        with self._lock:
            authorized = any(
                digest in session.authorized_query_hashes
                for session in self._sessions.values()
            )
        if not authorized:
            raise EnclaveError(
                f"{operation} refused: no client authorized this query text "
                "(the enclave's encryption oracle is client-gated)"
            )

    # -- internals --------------------------------------------------------------

    def _session(self, session_id: int) -> SessionSecrets:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise EnclaveError(f"unknown enclave session {session_id}") from None
