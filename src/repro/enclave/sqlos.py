"""The "enclave SQL OS" — resource services for ES inside the enclave.

Section 4.4 of the paper: expression services never calls the OS directly;
it goes through SQL OS. The enclave runtime excludes the OS, so the
authors wrote a small enclave SQL OS providing just the abstractions ES
needs — memory, threading/synchronization, exception handling — plus the
cryptographic operations needed within the enclave, layered on the enclave
runtime. Re-implementing this layer per enclave platform is what makes the
rest of the enclave code portable.

Our simulation gives the layer real responsibilities: it owns the cipher
cache (key material only ever lives here), a lock for the single-writer
state-change discipline described in Section 4.6, memory accounting, and
structured exception capture that deliberately strips plaintext from error
messages (the paper's devops point: debugging must respect confidentiality).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.crypto.aead import CellCipher
from repro.errors import EnclaveError, KeysUnavailableError


@dataclass
class EnclaveFault:
    """Coarse-grained fault information, safe to export from the enclave.

    Mirrors the paper's use of structured exception handling to obtain
    coarse information about faults without exposing enclave state.
    """

    kind: str
    where: str
    # Never carries plaintext values or key material.


@dataclass
class SqlOs:
    """Resource services available to enclave code."""

    memory_limit_bytes: int = 64 * 1024 * 1024
    _memory_used: int = 0
    _ciphers: dict[str, CellCipher] = field(default_factory=dict)
    _key_material: dict[str, bytes] = field(default_factory=dict)
    # Section 4.6: all state changes are funnelled through a single lock
    # (the production design uses a dedicated state-change thread; a lock
    # gives the same single-writer discipline in-process).
    state_lock: threading.Lock = field(default_factory=threading.Lock)
    faults: list[EnclaveFault] = field(default_factory=list)

    # -- memory --------------------------------------------------------------

    def allocate(self, nbytes: int) -> None:
        if self._memory_used + nbytes > self.memory_limit_bytes:
            raise EnclaveError(
                f"enclave memory limit exceeded "
                f"({self._memory_used + nbytes} > {self.memory_limit_bytes})"
            )
        self._memory_used += nbytes

    def free(self, nbytes: int) -> None:
        self._memory_used = max(0, self._memory_used - nbytes)

    @property
    def memory_used(self) -> int:
        return self._memory_used

    # -- crypto services -----------------------------------------------------

    def install_key(self, cek_name: str, material: bytes) -> None:
        """Install CEK material (state change: callers hold state_lock)."""
        self.allocate(len(material))
        self._key_material[cek_name] = material
        self._ciphers[cek_name] = CellCipher(material)

    def cipher_for(self, cek_name: str) -> CellCipher:
        try:
            return self._ciphers[cek_name]
        except KeyError:
            raise KeysUnavailableError(
                f"CEK {cek_name!r} is not installed in the enclave"
            ) from None

    def has_key(self, cek_name: str) -> bool:
        return cek_name in self._ciphers

    def installed_keys(self) -> frozenset[str]:
        return frozenset(self._ciphers)

    def key_material(self, cek_name: str) -> bytes:
        """Raw CEK material — used only by in-enclave re-encryption (rotation)."""
        try:
            return self._key_material[cek_name]
        except KeyError:
            raise KeysUnavailableError(
                f"CEK {cek_name!r} is not installed in the enclave"
            ) from None

    # -- fault handling --------------------------------------------------------

    def record_fault(self, kind: str, where: str) -> None:
        self.faults.append(EnclaveFault(kind=kind, where=where))
