"""The enclave-held freshness anchor (rollback defense).

Authenticated encryption gives the AE engine confidentiality and
integrity but **not freshness**: an operator who restores yesterday's
disk presents the engine with ciphertext that all still verifies. The
anchor closes that gap with state the host cannot rewrite:

* a **monotonic epoch counter** — bumped on every advance and every
  successful verification, never decremented;
* a **rolling hash chain over WAL records** — the host folds each
  durable record's encoded bytes into a SHA-256 chain at flush time and
  reports the ``(lsn, digest)`` head; the anchor accepts only
  monotonically advancing heads. At recovery the anchor re-folds the
  chain *itself* from the record bytes the host presents and requires
  the fold to pass through its held head: a strict prefix (restored old
  log), a fork (same length, different history), or a segment swap all
  fail the fold;
* a **per-page version map** — the digest of every page image the pool
  has written back, advanced immediately before each disk write. At
  recovery every CRC-valid disk page must match its held digest, so
  replayed old-but-valid page images are caught even when the WAL is
  current. A Merkle root over the map is exposed for cheap whole-disk
  comparison and reporting.

Two trust roots host this state: the VBS enclave
(:meth:`repro.enclave.runtime.Enclave.anchor_advance` &c.) for RND
deployments, and a simulated TPM NV slot
(:class:`repro.attestation.tpm.TpmNvAnchor`) for enclave-less DET
deployments. Both wrap the same :class:`AnchorState`.

Crash-window tolerance (the zero-false-positive rules):

* **WAL**: flush completes *before* the advance ecall, so a crash in
  between leaves durable records beyond the anchored head. Such an
  unanchored suffix is accepted (and re-anchored by the successful
  verify); a tail *shorter* than the head is a rollback.
* **Pages**: each page advance lands *before* its disk write and is
  *confirmed* after the write returns. Pages with unconfirmed advances
  (a crash in the window, or a failed write the engine survived) may
  show the version from before the advance; any other stale page is a
  rollback.
* **Torn pages** (CRC-invalid) are exempt: recovery drops them and
  redoes their rows from the already-verified WAL.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.obs.flightrec import record_event
from repro.obs.latchprof import TimedLatch
from repro.obs.metrics import get_registry

#: The chain/base digest before any record is folded. Mirrored by the
#: host-side chain cache in :mod:`repro.sqlengine.storage.wal` (the host
#: cannot import this module across the trust boundary).
GENESIS = b"\x00" * 32


def fold(digest: bytes, blob: bytes) -> bytes:
    """Extend the rolling WAL chain by one encoded record."""
    return hashlib.sha256(digest + blob).digest()


def merkle_root(leaves: list[bytes]) -> bytes:
    """Merkle root over a list of leaf digests (odd leaves promote)."""
    if not leaves:
        return GENESIS
    level = list(leaves)
    while len(level) > 1:
        paired = []
        for i in range(0, len(level) - 1, 2):
            paired.append(hashlib.sha256(level[i] + level[i + 1]).digest())
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


@dataclass(frozen=True)
class AnchorVerdict:
    """The outcome of one recovery-time freshness verification."""

    ok: bool
    epoch: int
    anchored_lsn: int
    #: machine-readable reasons: ``wal.base``, ``wal.prefix``,
    #: ``wal.fork``, ``page.missing:<id>``, ``page.stale:<id>``,
    #: ``page.unanchored:<id>``, ``cek.version:<name>``
    violations: tuple[str, ...] = ()
    #: durable records beyond the anchored head (the one-flush window)
    unanchored_suffix: int = 0

    def describe(self) -> str:
        if self.ok:
            return (
                f"anchor verified at epoch {self.epoch} "
                f"(lsn {self.anchored_lsn}, suffix {self.unanchored_suffix})"
            )
        return (
            f"stale restore detected at epoch {self.epoch}: "
            + ", ".join(self.violations)
        )


class AnchorState:
    """Sealed freshness state: epoch, WAL chain head, page version map.

    Lives inside a trust root (enclave or TPM NV); the host interacts
    only through the advance/verify/truncate/status methods. All
    mutators are serialized by the anchor latch, an innermost leaf in
    the declared lock order (``repro.enclave.anchor.*``) so advances may
    run under the buffer-pool latch on the write-back path.
    """

    def __init__(self) -> None:
        self._latch = TimedLatch("repro.enclave.anchor.AnchorState._latch")
        self.attached = False
        self.epoch = 0
        self.chain_lsn = -1
        self.chain_digest = GENESIS
        self.base_lsn = 0
        self.base_digest = GENESIS
        self._pages: dict[int, bytes] = {}
        # page_id → previous digest (None = page didn't exist) for every
        # advance whose disk write has not been confirmed yet. A crash —
        # or a failed write the engine survived — leaves the disk at the
        # *previous* version of exactly these pages; anything else stale
        # is a rollback.
        self._inflight: dict[int, bytes | None] = {}
        # CEK name → rotation version the anchor has witnessed. Advanced
        # *after* the catalog's durable bump (the ROTATE_END record is in
        # the WAL chain), so a crash in between leaves the catalog ahead —
        # tolerated and adopted at verify; a catalog *behind* is a
        # pre-rotation restore.
        self._cek_versions: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def attach(
        self,
        pages: dict[int, bytes],
        chain_lsn: int,
        chain_digest: bytes,
        base_lsn: int = 0,
        base_digest: bytes = GENESIS,
        cek_versions: dict[str, int] | None = None,
    ) -> int:
        """Seed the anchor from the current durable state.

        Called once when freshness protection is enabled (and again only
        through an explicit operator ``rebaseline`` after an accepted
        restore). Everything on disk *now* becomes the trusted present.
        """
        with self._latch:
            self.attached = True
            self.epoch += 1
            self.chain_lsn = chain_lsn
            self.chain_digest = chain_digest
            self.base_lsn = base_lsn
            self.base_digest = base_digest
            self._pages = dict(pages)
            self._inflight = {}
            self._cek_versions = dict(cek_versions or {})
            epoch = self.epoch
        self._record_advance(epoch, chain_lsn, kind="attach")
        return epoch

    # -- advance -----------------------------------------------------------

    def advance_wal(self, chain_lsn: int, chain_digest: bytes) -> int:
        """Accept a new WAL chain head; monotonic in ``chain_lsn``.

        A head older than the held one is ignored (two racing flushes
        may deliver out of order); an *equal* lsn with a different
        digest is a host bug or attack and is rejected.
        """
        with self._latch:
            if chain_lsn < self.chain_lsn:
                return self.epoch
            if chain_lsn == self.chain_lsn:
                if chain_digest != self.chain_digest:
                    raise AnchorMismatch(
                        f"conflicting chain digest at lsn {chain_lsn}"
                    )
                return self.epoch
            self.chain_lsn = chain_lsn
            self.chain_digest = chain_digest
            self.epoch += 1
            epoch = self.epoch
        self._record_advance(epoch, chain_lsn, kind="wal")
        return epoch

    def advance_page(self, page_id: int, page_digest: bytes) -> int:
        """Record a page version about to be written to disk."""
        with self._latch:
            # setdefault: if an earlier advance of this page is still
            # unconfirmed (its write failed and the engine carried on),
            # the disk holds the version from *before* that first
            # advance — keep it as the tolerated fallback.
            self._inflight.setdefault(page_id, self._pages.get(page_id))
            self._pages[page_id] = page_digest
            self.epoch += 1
            epoch = self.epoch
        self._record_advance(epoch, page_id, kind="page")
        return epoch

    def confirm_page(self, page_id: int) -> None:
        """The write behind the page's latest advance reached the disk."""
        with self._latch:
            self._inflight.pop(page_id, None)

    def advance_cek_version(self, cek_name: str, version: int) -> int:
        """Witness a completed key rotation; monotonic per CEK.

        Called after the catalog's durable version bump (ROTATE_END is
        already on the WAL chain). A version below the held one is a
        host bug or replayed install and is rejected.
        """
        with self._latch:
            held = self._cek_versions.get(cek_name, 1)
            if version < held:
                raise AnchorMismatch(
                    f"CEK {cek_name!r} version {version} below held {held}"
                )
            if version == held:
                return self.epoch
            self._cek_versions[cek_name] = version
            self.epoch += 1
            epoch = self.epoch
        self._record_advance(epoch, version, kind="cek")
        return epoch

    def seal_base(self, base_lsn: int, base_digest: bytes) -> int:
        """Seal a new truncation base (log records below it are gone).

        Only the current chain head may become the base: truncation
        happens at the flushed horizon, so ``base_lsn`` must be one past
        the anchored head and carry its digest. A restore from before
        the truncation then fails the base check at verify.
        """
        with self._latch:
            if base_lsn != self.chain_lsn + 1 or base_digest != self.chain_digest:
                raise AnchorMismatch(
                    f"truncation base (lsn {base_lsn}) does not match the "
                    f"anchored chain head (lsn {self.chain_lsn})"
                )
            self.base_lsn = base_lsn
            self.base_digest = base_digest
            self.epoch += 1
            epoch = self.epoch
        self._record_advance(epoch, base_lsn, kind="truncate")
        return epoch

    # -- verify ------------------------------------------------------------

    def verify(
        self,
        base_lsn: int,
        base_digest: bytes,
        record_blobs: list[bytes],
        page_digests: dict[int, bytes],
        torn_page_ids: set[int],
        cek_versions: dict[str, int] | None = None,
    ) -> AnchorVerdict:
        """Check the presented durable state against the held anchor.

        The anchor folds the WAL chain itself — the host supplies raw
        record bytes, not a digest — and requires the fold to pass
        through the held head. Pages compare digest-for-digest with the
        single-write tolerance described in the module docstring. On
        success the head re-anchors to the full durable tail (closing
        the one-flush window) and the epoch advances.
        """
        with self._latch:
            violations: list[str] = []
            if (base_lsn, base_digest) != (self.base_lsn, self.base_digest):
                violations.append("wal.base")
            digest = base_digest
            lsn = base_lsn - 1
            passed_head = self.chain_lsn <= base_lsn - 1
            for blob in record_blobs:
                digest = fold(digest, blob)
                lsn += 1
                if lsn == self.chain_lsn:
                    passed_head = digest == self.chain_digest
            if lsn < self.chain_lsn:
                violations.append("wal.prefix")
            elif not passed_head:
                violations.append("wal.fork")
            unanchored = max(0, lsn - self.chain_lsn)

            # reconcile: map entries to rewrite on success so the held map
            # equals the verified disk reality (tolerated in-flight pages
            # re-anchor to the version actually on disk).
            reconcile: dict[int, bytes | None] = {}
            for page_id in sorted(self._pages):
                if page_id in torn_page_ids:
                    continue  # dropped + redone from the verified WAL
                held = self._pages[page_id]
                on_disk = page_digests.get(page_id)
                if on_disk == held:
                    continue
                # In-flight tolerance: a page whose latest write(s) were
                # never confirmed may still show the version from before
                # its first unconfirmed advance (or be absent entirely,
                # if that was the page's first write). Anything else
                # stale is a rollback.
                if page_id in self._inflight and self._inflight[page_id] == on_disk:
                    reconcile[page_id] = on_disk
                    continue
                if on_disk is None:
                    violations.append(f"page.missing:{page_id}")
                else:
                    violations.append(f"page.stale:{page_id}")
            for page_id in sorted(page_digests):
                if page_id not in self._pages and page_id not in torn_page_ids:
                    violations.append(f"page.unanchored:{page_id}")

            # CEK version check (the second, independent refusal of a
            # pre-rotation restore). A reported version *above* the held
            # one is the crash window between the durable catalog bump
            # and the advance ecall — adopted on success; below is a
            # rollback to pre-rotation key metadata.
            reported_versions = cek_versions or {}
            adopt_versions: dict[str, int] = {}
            for cek_name in sorted(self._cek_versions):
                held_version = self._cek_versions[cek_name]
                reported = reported_versions.get(cek_name, 1)
                if reported < held_version:
                    violations.append(f"cek.version:{cek_name}")
                elif reported > held_version:
                    adopt_versions[cek_name] = reported
            for cek_name, reported in sorted(reported_versions.items()):
                if cek_name not in self._cek_versions and reported > 1:
                    adopt_versions[cek_name] = reported

            ok = not violations
            if ok:
                self.chain_lsn = lsn
                self.chain_digest = digest
                self._inflight = {}
                for page_id, on_disk in reconcile.items():
                    if on_disk is None:
                        self._pages.pop(page_id, None)
                    else:
                        self._pages[page_id] = on_disk
                # Forget torn pages: recovery dropped them and will write
                # fresh images (re-advancing the map) later. Keeping the
                # pre-tear digest would flag page.missing at the *next*
                # recovery if a crash lands before that write-back.
                for page_id in torn_page_ids:
                    self._pages.pop(page_id, None)
                self._cek_versions.update(adopt_versions)
                self.epoch += 1
            verdict = AnchorVerdict(
                ok=ok,
                epoch=self.epoch,
                anchored_lsn=self.chain_lsn,
                violations=tuple(violations),
                unanchored_suffix=unanchored,
            )
        registry = get_registry()
        registry.counter(
            "anchor.verifications", help="recovery-time freshness checks run"
        ).inc()
        if ok:
            record_event(
                "anchor.verify",
                epoch=verdict.epoch,
                anchored_lsn=verdict.anchored_lsn,
                unanchored_suffix=verdict.unanchored_suffix,
            )
        else:
            registry.counter(
                "anchor.mismatches", help="stale restores detected at recovery"
            ).inc()
            record_event(
                "anchor.mismatch",
                epoch=verdict.epoch,
                violations=list(verdict.violations),
            )
        return verdict

    # -- host-visible status ----------------------------------------------

    def status(self) -> dict:
        """Epoch, head, and pages root — adversary-visible metadata (all
        digests are over adversary-visible ciphertext bytes)."""
        with self._latch:
            leaves = [
                hashlib.sha256(page_id.to_bytes(8, "big") + digest).digest()
                for page_id, digest in sorted(self._pages.items())
            ]
            return {
                "attached": self.attached,
                "epoch": self.epoch,
                "chain_lsn": self.chain_lsn,
                "chain_digest": self.chain_digest,
                "base_lsn": self.base_lsn,
                "pages": len(self._pages),
                "pages_root": merkle_root(leaves),
                "cek_versions": dict(self._cek_versions),
            }

    # -- internals ---------------------------------------------------------

    def _record_advance(self, epoch: int, position: int, kind: str) -> None:
        registry = get_registry()
        registry.counter(
            "anchor.advances", help="freshness anchor advances (all kinds)"
        ).inc()
        registry.gauge(
            "anchor.epoch", help="current enclave-held freshness epoch"
        ).set(epoch)
        record_event("anchor.advance", epoch=epoch, position=position, what=kind)


class AnchorMismatch(ValueError):
    """A host-supplied advance conflicts with held anchor state."""
