"""The driver↔enclave secure channel riding over untrusted SQL Server.

After attestation, driver and enclave share a 32-byte secret. The driver
uses it to encrypt CEK packages (and to HMAC-sign DDL query text it
authorizes); SQL Server forwards the opaque blob on the TDS stream. A
nonce inside the package defeats replay (Section 4.2).

The package is encrypted with the same AEAD cell cipher used for data
(randomized mode), keyed by the shared secret.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.crypto.kdf import hmac_sha256
from repro.errors import EnclaveError


@dataclass(frozen=True)
class CekPackage:
    """What the driver sends to install CEKs for a query.

    ``authorized_query_hashes`` carries SHA-256 hashes of query texts the
    client explicitly authorizes for enclave *encryption-oracle* use (the
    secure-compilation check for ALTER TABLE ALTER COLUMN in Section 3.2);
    each is accompanied by an HMAC under the session secret, computed by
    the driver, proving the client (not SQL Server) produced it.
    """

    nonce: int
    ceks: tuple[tuple[str, bytes], ...] = ()
    authorized_query_hashes: tuple[bytes, ...] = ()

    def serialize(self) -> bytes:
        out = bytearray()
        out += struct.pack(">Q", self.nonce)
        out += struct.pack(">H", len(self.ceks))
        for name, material in self.ceks:
            name_bytes = name.encode("utf-8")
            out += struct.pack(">H", len(name_bytes)) + name_bytes
            out += struct.pack(">H", len(material)) + material
        out += struct.pack(">H", len(self.authorized_query_hashes))
        for digest in self.authorized_query_hashes:
            if len(digest) != 32:
                raise EnclaveError("authorized query hash must be SHA-256 (32 bytes)")
            out += digest
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "CekPackage":
        try:
            (nonce,) = struct.unpack_from(">Q", data, 0)
            offset = 8
            (n_ceks,) = struct.unpack_from(">H", data, offset)
            offset += 2
            ceks: list[tuple[str, bytes]] = []
            for __ in range(n_ceks):
                (name_len,) = struct.unpack_from(">H", data, offset)
                offset += 2
                name = data[offset : offset + name_len].decode("utf-8")
                offset += name_len
                (mat_len,) = struct.unpack_from(">H", data, offset)
                offset += 2
                ceks.append((name, data[offset : offset + mat_len]))
                offset += mat_len
            (n_hashes,) = struct.unpack_from(">H", data, offset)
            offset += 2
            hashes = []
            for __ in range(n_hashes):
                hashes.append(data[offset : offset + 32])
                offset += 32
            if offset != len(data):
                raise EnclaveError("trailing bytes in CEK package")
        except struct.error as exc:
            raise EnclaveError(f"malformed CEK package: {exc}") from exc
        return cls(nonce=nonce, ceks=tuple(ceks), authorized_query_hashes=tuple(hashes))


@dataclass(frozen=True)
class SealedPackage:
    """The encrypted CEK package as it appears on the (tapped) wire."""

    blob: bytes


_CHANNEL_LABEL = b"AE-secure-channel-v1"


def seal_package(shared_secret: bytes, package: CekPackage) -> SealedPackage:
    """Driver side: encrypt a package under the session shared secret."""
    cipher = CellCipher(hmac_sha256(shared_secret, _CHANNEL_LABEL))
    return SealedPackage(blob=cipher.encrypt(package.serialize(), EncryptionScheme.RANDOMIZED))


def open_package(shared_secret: bytes, sealed: SealedPackage) -> CekPackage:
    """Enclave side: decrypt and parse a sealed package."""
    cipher = CellCipher(hmac_sha256(shared_secret, _CHANNEL_LABEL))
    return CekPackage.deserialize(cipher.decrypt(sealed.blob))


def sign_query_authorization(shared_secret: bytes, query_hash: bytes) -> bytes:
    """Driver-side HMAC proving the client authorized this DDL query text."""
    return hmac_sha256(shared_secret, b"AE-query-authorization\x00" + query_hash)


@dataclass
class SessionSecrets:
    """Per-session state the enclave keeps for one attested driver session."""

    shared_secret: bytes = b""
    authorized_query_hashes: set[bytes] = field(default_factory=set)
