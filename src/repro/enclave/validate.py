"""Static security validation of enclave stack programs.

The paper (Section 4.4.1): "The enclave enforces security checks that
ensures for instance that encrypted and plaintext values cannot be
compared." Since programs arrive from the *untrusted* host, the enclave
cannot rely on the host compiler having been honest; it re-derives the
provenance of every stack slot symbolically and rejects programs that
would compare plaintext chosen by the host against decrypted column data
(which would give the host an equality/ordering oracle), or that reference
CEKs the client never installed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EnclaveError
from repro.sqlengine.expression.program import Opcode, StackProgram


@dataclass(frozen=True)
class _Provenance:
    """What a symbolic stack slot holds during validation.

    ``cek`` is the CEK name the value was decrypted with, or None for
    values that never were ciphertext (constants, host-supplied plaintext,
    booleans produced by operators).
    """

    cek: str | None
    is_result: bool = False  # produced by an operator, safe to combine


def validate_program(program: StackProgram, installed_ceks: frozenset[str]) -> set[str]:
    """Validate ``program``; returns the set of CEKs it uses.

    Raises :class:`EnclaveError` on any violation:

    * GET_DATA/SET_DATA referencing a CEK not installed in the enclave;
    * COMP / LIKE mixing a decrypted value with host plaintext;
    * COMP / LIKE mixing values decrypted under different CEKs;
    * arithmetic on decrypted values (unsupported in AEv2);
    * nested TM_EVAL (the enclave never re-enters itself);
    * stack underflow (malformed program).
    """
    stack: list[_Provenance] = []
    used: set[str] = set()

    def pop(n: int, what: str) -> list[_Provenance]:
        if len(stack) < n:
            raise EnclaveError(f"malformed enclave program: {what} underflows the stack")
        return [stack.pop() for __ in range(n)]

    for ins in program.instructions:
        opcode = ins.opcode
        if opcode is Opcode.GET_DATA:
            __, enc = ins.operand  # type: ignore[misc]
            if enc is not None:
                if enc.cek_name not in installed_ceks:
                    raise EnclaveError(
                        f"program references CEK {enc.cek_name!r} which the client "
                        "has not installed in the enclave"
                    )
                used.add(enc.cek_name)
                stack.append(_Provenance(cek=enc.cek_name))
            else:
                stack.append(_Provenance(cek=None))
        elif opcode is Opcode.PUSH_CONST:
            stack.append(_Provenance(cek=None))
        elif opcode in (Opcode.COMP, Opcode.LIKE):
            b, a = pop(2, opcode.name)
            _check_comparable(a, b, opcode.name)
            stack.append(_Provenance(cek=None, is_result=True))
        elif opcode in (Opcode.AND, Opcode.OR):
            pop(2, opcode.name)
            stack.append(_Provenance(cek=None, is_result=True))
        elif opcode is Opcode.NOT:
            pop(1, "NOT")
            stack.append(_Provenance(cek=None, is_result=True))
        elif opcode is Opcode.ARITH:
            b, a = pop(2, "ARITH")
            if a.cek is not None or b.cek is not None:
                raise EnclaveError("arithmetic on decrypted column data is not supported")
            stack.append(_Provenance(cek=None, is_result=True))
        elif opcode is Opcode.IS_NULL:
            pop(1, "IS_NULL")
            stack.append(_Provenance(cek=None, is_result=True))
        elif opcode is Opcode.SET_DATA:
            __, enc = ins.operand  # type: ignore[misc]
            pop(1, "SET_DATA")
            if enc is not None:
                if enc.cek_name not in installed_ceks:
                    raise EnclaveError(
                        f"program writes CEK {enc.cek_name!r} which the client "
                        "has not installed in the enclave"
                    )
                used.add(enc.cek_name)
        elif opcode is Opcode.TM_EVAL:
            raise EnclaveError("nested TM_EVAL inside an enclave program is not allowed")
        else:  # pragma: no cover - exhaustive
            raise EnclaveError(f"unknown opcode {opcode} in enclave program")
    return used


def _check_comparable(a: _Provenance, b: _Provenance, what: str) -> None:
    a_enc = a.cek is not None
    b_enc = b.cek is not None
    if a_enc != b_enc:
        raise EnclaveError(
            f"{what}: comparing a decrypted column value against host-chosen "
            "plaintext would expose a comparison oracle; rejected"
        )
    if a_enc and b_enc and a.cek != b.cek:
        raise EnclaveError(f"{what}: operands decrypted under different CEKs")
