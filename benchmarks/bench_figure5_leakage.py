"""Figure 5: operation leakage to the strong adversary — measured.

For each row of the paper's leakage table we run the operation against an
attached strong adversary and demonstrate the leakage *and its limit*:

* Comparison (DET)   → the frequency histogram is recoverable; values not.
* Comparison (RND)   → the total ordering is recoverable from an index
                       build's comparisons; frequencies/values are not.
* LIKE via scan      → one predicate bit per row, nothing else.
* LIKE via index     → ordering plus prefix-run proximity.
* DDL encryption     → the oracle is unusable without client authorization.
"""

import pytest

from repro.attestation.hgs import AttestationPolicy, HostGuardianService
from repro.attestation.tpm import HostMachine
from repro.client.driver import connect
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.runtime import Enclave, EnclaveBinary
from repro.errors import EnclaveError
from repro.keys.providers import default_registry
from repro.security.adversary import StrongAdversary
from repro.security.leakage import (
    FIGURE5_ROWS,
    det_frequency_distribution,
    like_scan_predicate_bits,
    prefix_match_proximity,
    reconstruct_order,
)
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.server import SqlServer
from repro.tools.provisioning import provision_cek, provision_cmk

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"

CITIES = ["seattle"] * 6 + ["zurich"] * 3 + ["portland"] * 1
NAMES = ["apple", "apricot", "avocado", "banana", "blueberry", "cherry",
         "citrus", "date", "elderberry", "fig"]


def build_leakage_experiment(over_wire: bool = False):
    """The Figure 5 experiment; ``over_wire=True`` runs the identical
    workload through a socket :class:`WireServer` with the adversary's
    byte-level frame tap attached (the sharded deployment's wire)."""
    author = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author)
    enclave = Enclave(binary)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(enclave=enclave, host_machine=host, hgs=hgs)
    adversary = StrongAdversary()
    adversary.attach(server)
    registry = default_registry()
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    if over_wire:
        from repro.net.remote import RemoteServer
        from repro.net.wireserver import WireServer

        wire = WireServer(server, name="leak-wire", tap=adversary.wire_tap()).start()
        endpoint = RemoteServer(wire.host, wire.port)
    else:
        endpoint = server
    conn = connect(endpoint, registry, attestation_policy=policy)
    cmk = provision_cmk(conn, vault, "CMK", "https://vault.azure.net/keys/leak")
    provision_cek(conn, vault, cmk, "CEK")
    conn.execute_ddl(
        "CREATE TABLE F (k int PRIMARY KEY, "
        f"city varchar(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK, ENCRYPTION_TYPE = Deterministic, ALGORITHM = '{ALGO}'), "
        f"name varchar(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK, ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
    )
    for k, (city, name) in enumerate(zip(CITIES, NAMES)):
        conn.execute(
            "INSERT INTO F (k, city, name) VALUES (@k, @c, @n)",
            {"k": k, "c": city, "n": name},
        )
    # Exercise the operations whose leakage Figure 5 tabulates.
    conn.execute("SELECT k FROM F WHERE name LIKE @p", {"p": "ap%"})   # scan LIKE
    conn.execute_ddl("CREATE NONCLUSTERED INDEX F_NAME ON F(name)")    # index build
    return server, adversary, conn, enclave


def test_leakage_accounting_unchanged_by_serialization():
    """Satellite invariant of the sharded wire: moving the client to the
    other side of a real socket changes *how* the adversary watches (raw
    frames instead of call interposition) but not *what* leaks. The
    accounted per-column leakage must be byte-for-byte identical, and the
    plaintext of encrypted columns must not appear in any serialized
    frame."""
    from repro.obs.leakage import get_leakage_accountant
    from repro.sqlengine.values import serialize_value

    accountant = get_leakage_accountant()
    accountant.reset()
    __, inproc_adversary, *_ = build_leakage_experiment(over_wire=False)
    inproc_leakage = inproc_adversary.leakage_summary()

    accountant.reset()
    __, wire_adversary, *_ = build_leakage_experiment(over_wire=True)
    wire_leakage = wire_adversary.leakage_summary()

    assert wire_leakage == inproc_leakage, (
        "serialization changed the leakage accounting:\n"
        f"in-process: {inproc_leakage}\nover wire : {wire_leakage}"
    )

    # The frame tap actually saw the conversation ...
    assert len(wire_adversary.frame_events) > 0
    assert inproc_adversary.frame_events == []
    # ... and no encrypted-column plaintext ever crossed it. (The raw
    # utf-8 of the city/name values is what a sniffer would grep for.)
    secrets = [v.encode() for v in set(CITIES) | set(NAMES)]
    for event in wire_adversary.frame_events:
        assert not any(secret in event.frame for secret in secrets), (
            f"plaintext leaked in a serialized {event.direction} frame "
            f"(opcode {event.opcode:#x})"
        )
    assert wire_adversary.plaintext_exposures(
        [serialize_value(v) for v in set(CITIES) | set(NAMES)]
    ) == []


def test_figure5_leakage_table(benchmark):
    server, adversary, conn, enclave = benchmark.pedantic(
        build_leakage_experiment, rounds=1, iterations=1
    )

    rows = []

    # Row 1 — Comparison (DET): frequency distribution.
    det_cells = [
        row[1] for __, row in server.engine.scan("F") if isinstance(row[1], Ciphertext)
    ]
    histogram = det_frequency_distribution(det_cells)
    assert histogram == [6, 3, 1]
    rows.append(("Comparison (DET)", f"frequency histogram recovered: {histogram}"))

    # Row 2 — Comparison (RND): ordering from the index build's sort.
    order = reconstruct_order(adversary, "CEK")
    assert len(order.ordered_envelopes) == len(NAMES)
    rows.append(
        ("Comparison (RND)",
         f"total order of {len(order.ordered_envelopes)} ciphertexts recovered "
         f"from {order.comparisons_used} observed comparisons")
    )

    # Row 3 — LIKE via scan: one predicate bit per row.
    bits = [b for batch in like_scan_predicate_bits(adversary) for b in batch]
    assert bits.count(True) == 2  # apple, apricot
    rows.append(("LIKE via scan", f"{len(bits)} predicate bits observed, {bits.count(True)} true"))

    # Row 4 — LIKE via index (prefix): ordering + proximity.
    matched = set(order.ordered_envelopes[:3])  # the names sharing 'a'-prefix sort first
    proximity = prefix_match_proximity(order.ordered_envelopes, matched)
    assert proximity.matched_run_length == 3
    rows.append(
        ("LIKE via index (prefix)",
         f"contiguous run of {proximity.matched_run_length} at position {proximity.run_position}")
    )

    # Row 5 — DDL encryption oracle: gated on client authorization.
    with pytest.raises(EnclaveError):
        enclave.encrypt_for_ddl("unauthorized ddl", "CEK", b"\x01\x07", None)
    rows.append(("DDL to encrypt data", "unauthorized oracle use refused by enclave"))

    print()
    print("=" * 78)
    print("Figure 5 — operation leakage to a strong adversary (measured)")
    print("=" * 78)
    for (operation, paper_leakage), (__, measured) in zip(FIGURE5_ROWS, rows):
        print(f"{operation:>52s} | paper: {paper_leakage}")
        print(f"{'':>52s} | here : {measured}")

    # And the boundary of the leakage: plaintext never appears anywhere.
    from repro.sqlengine.values import serialize_value

    secrets = [serialize_value(v) for v in set(CITIES) | set(NAMES)]
    assert adversary.plaintext_exposures(secrets) == []
    print(f"{'(non-leakage)':>52s} | plaintext on adversary surfaces: none")
