"""Figure 8: normalized TPC-C throughput vs client threads.

Paper (Section 5.4.1): SQL-PT, SQL-PT-AEConn, and SQL-AE (RND, 4 enclave
threads) across 10–100 Benchcraft threads, normalized to SQL-PT's maximum.
At 100 threads the paper reports AE ≈ 50% of plaintext and AEConn ≈ 64%
(the extra ``sp_describe_parameter_encryption`` round-trip dominating).

This bench runs the real TPC-C mix on our engine to calibrate service
demands, solves the closed queueing network for each thread count, and
prints the same normalized series the figure plots. Shape assertions pin
the paper's qualitative claims.
"""

from repro.harness.experiments import run_figure8


def test_figure8_throughput_vs_clients(benchmark, tpcc_scale, calibration_transactions):
    result = benchmark.pedantic(
        run_figure8,
        kwargs={"scale": tpcc_scale, "n_transactions": calibration_transactions},
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 66)
    print("Figure 8 — normalized TPC-C throughput vs client driver threads")
    print("=" * 66)
    print(result.print_rows())
    for label, calibration in result.calibrations.items():
        print(
            f"  calibrated {label}: {calibration.wall_s_per_txn * 1000:.2f} ms/txn "
            f"(enclave {calibration.enclave_s_per_txn * 1000:.2f} ms, "
            f"{calibration.roundtrips_per_txn:.1f} round-trips)"
        )
    figure = result.figure
    at_100 = {c.label: figure.normalized[c.label][-1] for c in figure.curves}
    print(f"  at 100 threads: {at_100}")
    print("  paper at 100 threads: PT=1.00, AEConn≈0.64, AE≈0.50")

    benchmark.extra_info["normalized_at_100"] = at_100

    # Shape assertions (the paper's qualitative claims):
    # 1. Throughput rises monotonically with client threads for each system.
    for label in at_100:
        series = figure.normalized[label]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), label
    # 2. PT dominates; AEConn loses a large fraction to the extra
    #    round-trip; AE (RND-4) is at or below AEConn.
    assert at_100["SQL-PT"] == max(at_100.values())
    assert 0.4 <= at_100["SQL-PT-AEConn"] <= 0.9
    assert at_100["SQL-AE-RND-4"] <= at_100["SQL-PT-AEConn"] + 0.02
    # 3. AE lands in the "roughly half" band of the paper.
    assert 0.30 <= at_100["SQL-AE-RND-4"] <= 0.85
