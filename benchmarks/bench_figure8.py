"""Figure 8: normalized TPC-C throughput vs client threads.

Paper (Section 5.4.1): SQL-PT, SQL-PT-AEConn, and SQL-AE (RND, 4 enclave
threads) across 10–100 Benchcraft threads, normalized to SQL-PT's maximum.
At 100 threads the paper reports AE ≈ 50% of plaintext and AEConn ≈ 64%
(the extra ``sp_describe_parameter_encryption`` round-trip dominating).

Two companions here:

* **modeled** — the real TPC-C mix calibrates service demands, the closed
  queueing network sweeps thread counts (the paper-scale curve);
* **measured** — N real client threads with their own connections drive
  the concurrent session layer with a simulated per-round-trip RTT
  (:mod:`repro.harness.measured`), persisted to
  ``benchmarks/BENCH_figure8_measured.json``.

Run the measured sweep standalone with
``PYTHONPATH=src python benchmarks/bench_figure8.py --measured``.
"""

import json
import pathlib

from repro.harness.experiments import run_figure8
from repro.harness.measured import run_figure8_measured

MEASURED_JSON = pathlib.Path(__file__).parent / "BENCH_figure8_measured.json"


def test_figure8_throughput_vs_clients(benchmark, tpcc_scale, calibration_transactions):
    result = benchmark.pedantic(
        run_figure8,
        kwargs={"scale": tpcc_scale, "n_transactions": calibration_transactions},
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 66)
    print("Figure 8 — normalized TPC-C throughput vs client driver threads")
    print("=" * 66)
    print(result.print_rows())
    for label, calibration in result.calibrations.items():
        print(
            f"  calibrated {label}: {calibration.wall_s_per_txn * 1000:.2f} ms/txn "
            f"(enclave {calibration.enclave_s_per_txn * 1000:.2f} ms, "
            f"{calibration.roundtrips_per_txn:.1f} round-trips)"
        )
    figure = result.figure
    at_100 = {c.label: figure.normalized[c.label][-1] for c in figure.curves}
    print(f"  at 100 threads: {at_100}")
    print("  paper at 100 threads: PT=1.00, AEConn≈0.64, AE≈0.50")

    benchmark.extra_info["normalized_at_100"] = at_100

    # Shape assertions (the paper's qualitative claims):
    # 1. Throughput rises monotonically with client threads for each system.
    for label in at_100:
        series = figure.normalized[label]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), label
    # 2. PT dominates; AEConn loses a large fraction to the extra
    #    round-trip; AE (RND-4) is at or below AEConn.
    assert at_100["SQL-PT"] == max(at_100.values())
    assert 0.4 <= at_100["SQL-PT-AEConn"] <= 0.9
    assert at_100["SQL-AE-RND-4"] <= at_100["SQL-PT-AEConn"] + 0.02
    # 3. AE lands in the "roughly half" band of the paper.
    assert 0.30 <= at_100["SQL-AE-RND-4"] <= 0.85


def test_figure8_measured_multi_client(benchmark):
    """Measured companion: real concurrent clients through the session layer.

    Asserts the paper's ordering holds in *measured* wall-clock throughput
    at every client count, that 16 real clients actually scale (the RTT
    overlap the session layer exists to provide), and that the run leaves
    the database consistent — then persists the curve next to the modeled
    one.
    """
    result = benchmark.pedantic(
        run_figure8_measured,
        kwargs={"output_path": MEASURED_JSON},
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 66)
    print("Figure 8 (measured) — TPC-C txn/s, real client threads")
    print("=" * 66)
    print(result.print_rows())

    pt = result.curve("SQL-PT")
    aeconn = result.curve("SQL-PT-AEConn")
    ae = result.curve("SQL-AE-RND-4")

    # 1. The run is serializable-equivalent: every TPC-C invariant holds
    #    at quiesce after the 16-client mix, for every configuration.
    for curve in result.curves:
        assert curve.invariant_violations == [], curve.label

    # 2. Real scaling: 16 clients beat one client by a wide margin. The
    #    plaintext configurations clear 4x; RND's enclave-predicate scans
    #    serialize more (every last-name lookup scans CUSTOMER through
    #    the enclave while holding locks), so its bar is lower.
    assert pt.at(16) > 4.0 * pt.at(1), (pt.at(16), pt.at(1))
    assert aeconn.at(16) > 4.0 * aeconn.at(1), (aeconn.at(16), aeconn.at(1))
    assert ae.at(16) > 2.0 * ae.at(1), (ae.at(16), ae.at(1))

    # 3. The paper's ordering holds in measured throughput at every count:
    #    SQL-PT > SQL-PT-AEConn >= SQL-AE.
    for i, n in enumerate(pt.clients):
        assert pt.throughput[i] > aeconn.throughput[i], n
        assert aeconn.throughput[i] >= ae.throughput[i], n

    # 4. The persisted artifact matches what we asserted on.
    persisted = json.loads(MEASURED_JSON.read_text())
    assert persisted["figure"] == "8-measured"
    assert {c["label"] for c in persisted["curves"]} == {
        "SQL-PT", "SQL-PT-AEConn", "SQL-AE-RND-4"
    }

    benchmark.extra_info["measured_scaling_16_over_1"] = {
        curve.label: curve.at(16) / curve.at(1) for curve in result.curves
    }


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--measured", action="store_true",
        help="run the real-thread measured sweep and write "
             "BENCH_figure8_measured.json",
    )
    parser.add_argument("--clients", type=int, nargs="*", default=None,
                        help="client counts to sweep (default 1 2 4 8 16)")
    parser.add_argument("--txns", type=int, default=16,
                        help="transactions per client per point")
    cli = parser.parse_args()
    if cli.measured:
        counts = tuple(cli.clients) if cli.clients else (1, 2, 4, 8, 16)
        measured = run_figure8_measured(
            client_counts=counts,
            transactions_per_client=cli.txns,
            output_path=MEASURED_JSON,
        )
        print(measured.print_rows())
        print(f"wrote {MEASURED_JSON}")
    else:
        modeled = run_figure8()
        print(modeled.print_rows())
