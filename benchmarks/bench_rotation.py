"""ROTATION — live-traffic overhead of the mixed-key window.

An online CEK rotation's whole point is that concurrent traffic keeps
running while the background job sweeps the column. The tax on that
traffic is the mixed-key window: once the metadata flips, index probes
against entries still under the old CEK MAC-fail under the new name and
retry through the enclave's rotation-partner fallback — a second
decrypt per affected operand. This bench pins that tax:

* a TPC-C ``payment`` slice against a system holding an **open
  mid-rotation window** (metadata flipped, the CUSTOMER_NC1 tree half
  old-key, half new-key — the worst case for the fallback path) may run
  at most 10% slower than the identical slice against an idle twin.

The window is held genuinely mid-sweep for the whole timed region: the
job is started, stepped through half the rows, and not stepped again
until timing ends. Afterwards the job is driven to completion and the
terminal state asserted, so the numbers always describe a rotation that
actually finished cleanly.

Pairing discipline matches ``bench_freshness.py``: two identically
configured *systems*, per-pair identical RNG reseeding so both arms time
byte-identical work, alternating arm order, medians compared. The
measured numbers persist to ``benchmarks/BENCH_rotation.json``.
"""

import gc
import json
import pathlib
import statistics
import time

from repro.tools.provisioning import provision_cek
from repro.tools.rotation import rotate_cek_online
from repro.workloads.tpcc.config import EncryptionMode, TpccConfig
from repro.workloads.tpcc.driver import build_system

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_rotation.json"

PAIRS = 120         # (rotating, idle) runs of identical work
OVERHEAD_LIMIT = 0.10
SEED_BASE = 30_000  # per-pair RNG seed: pair i reseeds both arms with it

OLD_CEK = "TpccCEK"
NEW_CEK = "TpccCEK2"


def _config() -> TpccConfig:
    # RND mode: CUSTOMER_NC1 routes its C_FIRST comparisons through the
    # enclave, so the mixed-key fallback is on the payment hot path.
    return TpccConfig(
        warehouses=1,
        districts_per_warehouse=1,
        customers_per_district=10,
        items=20,
        mode=EncryptionMode.RND,
    )


def _open_mixed_window(system) -> tuple[str, int]:
    """Start a C_FIRST rotation and sweep exactly half the rows."""
    conn = system.connection
    provider = system.registry.get("AZURE_KEY_VAULT_PROVIDER")
    cmk = system.server.catalog.cmk("TpccCMK")
    provision_cek(conn, provider, cmk, NEW_CEK)
    rid = rotate_cek_online(
        conn, "CUSTOMER", "C_FIRST", NEW_CEK, batch_size=1, run=False
    )
    customers = _config().customers_per_district
    rotated = 0
    while rotated < customers // 2:
        __, changed = system.server.rotate_step(rid)
        rotated += changed
    return rid, rotated


def test_rotation_overhead_under_10_percent():
    rotating = build_system(_config(), worker_threads=0)
    idle = build_system(_config(), worker_threads=0)
    arms = {"rotating": rotating.transactions, "idle": idle.transactions}

    for txns in arms.values():  # warm plans and caches on both systems
        for i in range(10):
            txns.rng.seed(i)
            txns.payment()

    rid, rotated_mid = _open_mixed_window(rotating)
    assert 0 < rotated_mid < _config().customers_per_district

    rotating_times: list[float] = []
    idle_times: list[float] = []
    # Micro-benchmark hygiene: collect once, then pause the cyclic GC so
    # collection pauses don't land on whichever arm happens to run.
    gc.collect()
    gc.disable()
    try:
        for i in range(PAIRS):
            order = ("rotating", "idle") if i % 2 else ("idle", "rotating")
            for arm in order:
                txns = arms[arm]
                txns.rng.seed(SEED_BASE + i)
                started = time.perf_counter()
                txns.payment()
                elapsed = time.perf_counter() - started
                (rotating_times if arm == "rotating" else idle_times).append(
                    elapsed
                )
    finally:
        gc.enable()

    # The window was live for every timed transaction; now let the job
    # finish and check it lands terminal, so the overhead number always
    # describes a rotation that completes.
    more = True
    while more:
        more, __ = rotating.server.rotate_step(rid)
    assert rotating.server.cek_versions() == {NEW_CEK: 2}
    assert not any(s.active for s in rotating.server.rotation_states())

    median_rotating = statistics.median(rotating_times)
    median_idle = statistics.median(idle_times)
    overhead = (median_rotating - median_idle) / median_idle

    summary = {
        "pairs": PAIRS,
        "median_rotating_s": round(median_rotating, 7),
        "median_idle_s": round(median_idle, 7),
        "overhead_frac": round(overhead, 6),
        "overhead_limit": OVERHEAD_LIMIT,
        "rows_mid_window": rotated_mid,
    }
    OUT_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True))
    print("\n  rotation: " + json.dumps(summary, sort_keys=True))

    assert overhead < OVERHEAD_LIMIT, (
        f"mixed-key window overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_LIMIT:.0%} (median rotating="
        f"{median_rotating * 1e3:.3f}ms idle={median_idle * 1e3:.3f}ms)"
    )
