"""FRESHNESS — anchor overhead on the TPC-C write path.

The freshness anchor touches the engine's hottest durability points: one
advance ecall per WAL flush and one advance + confirm pair per page
write-back. The rollback defense is only deployable if that tax is
provably small:

* with the anchor **on**, a TPC-C write slice may run at most 5% slower
  than the identical slice with the anchor off (paper mode). The slice
  is the ``payment`` transaction — every run commits, so every run pays
  the anchor's per-flush advance on the WAL chain head. The page-side
  hooks (advance + confirm around each write-back) are exercised by an
  explicit checkpoint after the timed region, which must leave the
  anchor holding a digest for every flushed page.

Anchoring is a construction-time choice (the anchor seeds itself from
the durable state it attaches to), so the arms are two *systems* —
identical config, one built with ``freshness_anchor=True`` — rather than
one system with a toggled flag. Timings are still paired: the
transaction RNG of both systems is reseeded identically per pair so the
arms time byte-identical work, pair order alternates so neither arm
systematically runs second, and medians are compared so machine drift
cancels instead of landing in one arm.

The measured numbers persist to ``benchmarks/BENCH_freshness.json``.
"""

import gc
import json
import pathlib
import statistics
import time

from repro.workloads.tpcc.config import EncryptionMode, TpccConfig
from repro.workloads.tpcc.driver import build_system

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_freshness.json"

PAIRS = 200         # (anchor-on, anchor-off) runs of identical work
OVERHEAD_LIMIT = 0.05
SEED_BASE = 20_000  # per-pair RNG seed: pair i reseeds both arms with it


def _config() -> TpccConfig:
    return TpccConfig(
        warehouses=1,
        districts_per_warehouse=1,
        customers_per_district=10,
        items=20,
        mode=EncryptionMode.DET,
    )


def test_anchor_overhead_under_5_percent():
    anchored = build_system(_config(), worker_threads=0, freshness_anchor=True)
    plain = build_system(_config(), worker_threads=0, freshness_anchor=False)
    arms = {"on": anchored.transactions, "off": plain.transactions}
    assert anchored.server.engine.freshness is not None
    assert plain.server.engine.freshness is None

    for txns in arms.values():  # warm plans and caches on both systems
        for i in range(10):
            txns.rng.seed(i)
            txns.payment()

    on_times: list[float] = []
    off_times: list[float] = []
    # Micro-benchmark hygiene: collect once, then pause the cyclic GC so
    # collection pauses don't land on whichever arm happens to run.
    gc.collect()
    gc.disable()
    try:
        for i in range(PAIRS):
            order = ("on", "off") if i % 2 else ("off", "on")
            for arm in order:
                txns = arms[arm]
                txns.rng.seed(SEED_BASE + i)
                started = time.perf_counter()
                txns.payment()
                elapsed = time.perf_counter() - started
                (on_times if arm == "on" else off_times).append(elapsed)
    finally:
        gc.enable()

    # Drive the page-side hooks (advance + confirm per write-back) once,
    # outside the timed region: a checkpoint flushes every dirty page.
    anchored.server.engine.checkpoint()
    status = anchored.server.engine.freshness.status()
    assert status["attached"]
    assert status["pages"] > 0, "checkpoint must anchor the flushed pages"
    advances_epoch = status["epoch"]
    assert advances_epoch > PAIRS, "anchored runs must actually advance"

    median_on = statistics.median(on_times)
    median_off = statistics.median(off_times)
    overhead = (median_on - median_off) / median_off

    summary = {
        "pairs": PAIRS,
        "median_on_s": round(median_on, 7),
        "median_off_s": round(median_off, 7),
        "overhead_frac": round(overhead, 6),
        "overhead_limit": OVERHEAD_LIMIT,
        "anchor_epoch_after": advances_epoch,
        "anchored_pages": status["pages"],
    }
    OUT_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True))
    print("\n  freshness: " + json.dumps(summary, sort_keys=True))

    assert overhead < OVERHEAD_LIMIT, (
        f"freshness anchor overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_LIMIT:.0%} (median on={median_on * 1e3:.3f}ms "
        f"off={median_off * 1e3:.3f}ms)"
    )
