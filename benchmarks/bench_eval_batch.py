"""A8 — batched enclave calls: transitions and wall time per configuration.

Sweeps eval batch size × call mode × simulated transition cost for a
selective RND-predicate scan. The claim under test is the tentpole of the
batching change: with a non-zero boundary-transition cost, shipping 64
rows per ecall pays ≥5× fewer ``worker.boundary_transitions`` than
row-at-a-time evaluation — and measurably less wall time — in both
SYNCHRONOUS and QUEUED modes.

Every configuration's measurements are appended to
``benchmarks/BENCH_enclave_batch.json`` by the session fixture in
``conftest.py``.
"""

import os
import time

import pytest

from repro.attestation.hgs import AttestationPolicy, HostGuardianService
from repro.attestation.tpm import HostMachine
from repro.client.driver import connect
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.runtime import Enclave, EnclaveBinary
from repro.enclave.worker import CallMode
from repro.keys.providers import default_registry
from repro.obs.metrics import get_registry
from repro.sqlengine.server import SqlServer
from repro.tools.provisioning import provision_cek, provision_cmk

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"
ROWS = int(os.environ.get("REPRO_BENCH_BATCH_ROWS", "192"))
TRANSITION_COSTS_S = (0.0, 0.0002)
BATCH_SIZES = (1, 8, 64)
SELECTIVE_CUTOFF = ROWS - ROWS // 10  # ~10% of rows qualify


def build(mode: CallMode):
    author = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author)
    enclave = Enclave(binary)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(
        enclave=enclave, host_machine=host, hgs=hgs, enclave_call_mode=mode
    )
    registry = default_registry()
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    conn = connect(server, registry, attestation_policy=policy)
    cmk = provision_cmk(conn, vault, "CMK", "https://vault.azure.net/keys/eb-bench")
    provision_cek(conn, vault, cmk, "CEK")
    conn.execute_ddl(
        "CREATE TABLE L (k int PRIMARY KEY, "
        f"v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK, "
        f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
    )
    for k in range(ROWS):
        conn.execute(
            "INSERT INTO L (k, v) VALUES (@k, @v)", {"k": k, "v": (k * 61) % ROWS}
        )
    return server, conn


def measure(server, conn, batch_size: int, transition_cost_s: float) -> dict:
    registry = get_registry()
    gateway = server.gateway
    gateway.transition_cost_s = transition_cost_s
    # Disable spinning so queued-mode transition counts are deterministic:
    # every queue item is a sleep→hot wakeup. This isolates the batching
    # amortization (one item per chunk) from the probabilistic spin
    # amortization the A1 bench already measures.
    gateway.spin_duration_s = 0.0
    server.executor.eval_batch_size = batch_size
    conn.execute("SELECT k FROM L WHERE v >= @x", {"x": SELECTIVE_CUTOFF})  # warm
    before = registry.value("worker.boundary_transitions")
    started = time.perf_counter()
    result = conn.execute("SELECT k FROM L WHERE v >= @x", {"x": SELECTIVE_CUTOFF})
    wall_s = time.perf_counter() - started
    transitions = registry.value("worker.boundary_transitions") - before
    assert len(result.rows) == ROWS - SELECTIVE_CUTOFF
    return {
        "mode": server.gateway.mode.value,
        "batch_size": batch_size,
        "transition_cost_s": transition_cost_s,
        "rows": ROWS,
        "rows_matched": len(result.rows),
        "boundary_transitions": transitions,
        "wall_time_s": round(wall_s, 6),
        "enclave_eval_batches": result.stats.enclave_eval_batches,
        "enclave_batched_rows": result.stats.enclave_batched_rows,
    }


@pytest.mark.parametrize(
    "mode", [CallMode.SYNCHRONOUS, CallMode.QUEUED], ids=["sync", "queued"]
)
def test_batch_sweep(mode, enclave_batch_results):
    server, conn = build(mode)
    by_config = {}
    try:
        for cost in TRANSITION_COSTS_S:
            for batch in BATCH_SIZES:
                entry = measure(server, conn, batch, cost)
                by_config[(cost, batch)] = entry
                enclave_batch_results.append(entry)
    finally:
        server.gateway.shutdown()

    for cost in TRANSITION_COSTS_S:
        row = by_config[(cost, 1)]
        batched = by_config[(cost, 64)]
        # Correctness-independence of the sweep: same matches everywhere.
        assert row["rows_matched"] == batched["rows_matched"]
        assert row["boundary_transitions"] >= 5 * max(1, batched["boundary_transitions"])
        if cost > 0:
            # The acceptance criterion: ≥5× fewer transitions AND faster.
            assert batched["wall_time_s"] < row["wall_time_s"], (
                f"batch 64 not faster at cost {cost}: {batched} vs {row}"
            )
