"""A5 — cell encryption microbenchmarks (DET vs RND, sizes, MAC verify).

The cost hierarchy here is what drives every macro result: RND encryption
pays a fresh random IV but is otherwise identical to DET; decryption skips
the IV derivation; MAC verification alone is cheap.
"""

import pytest

from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.sqlengine.values import serialize_value

CEK = bytes(range(32))
CIPHER = CellCipher(CEK)
SMALL = serialize_value("C_LAST-sized-value")
LARGE = serialize_value("x" * 400)


@pytest.mark.parametrize("scheme", [EncryptionScheme.DETERMINISTIC, EncryptionScheme.RANDOMIZED])
def test_encrypt_small_value(benchmark, scheme):
    benchmark(CIPHER.encrypt, SMALL, scheme)


@pytest.mark.parametrize("scheme", [EncryptionScheme.DETERMINISTIC, EncryptionScheme.RANDOMIZED])
def test_encrypt_large_value(benchmark, scheme):
    benchmark(CIPHER.encrypt, LARGE, scheme)


def test_decrypt_small_value(benchmark):
    envelope = CIPHER.encrypt(SMALL, EncryptionScheme.RANDOMIZED)
    result = benchmark(CIPHER.decrypt, envelope)
    assert result == SMALL


def test_verify_only(benchmark):
    envelope = CIPHER.encrypt(SMALL, EncryptionScheme.RANDOMIZED)
    assert benchmark(CIPHER.verify, envelope)


def test_cipher_construction_key_derivation(benchmark):
    # Per-CEK setup cost: three HMAC derivations + AES key schedule. The
    # driver/enclave cache CellCipher objects to amortize exactly this.
    benchmark(CellCipher, CEK)
