"""A4 — nonce tracking: compact-range encoding under reordering.

Section 4.2's design claim: because the driver generates near-sequential
nonces (with local reordering from multi-threading), tracking *all*
historical nonces compresses to a handful of ranges. We measure
check-and-add throughput and the state footprint across delivery orders,
including the adversarial random order where the encoding degrades.
"""

import random

import pytest

from repro.enclave.nonce import NonceRangeTracker

N = 5_000


def sequential(n):
    return list(range(n))


def locally_reordered(n, window=16, seed=7):
    rng = random.Random(seed)
    out, buffer, nxt = [], [], 0
    while len(out) < n:
        while len(buffer) < window and nxt < n:
            buffer.append(nxt)
            nxt += 1
        out.append(buffer.pop(rng.randrange(len(buffer))))
    return out


def fully_random(n, seed=7):
    out = list(range(n))
    random.Random(seed).shuffle(out)
    return out


ORDERS = {
    "sequential": sequential,
    "locally-reordered": locally_reordered,
    "fully-random": fully_random,
}


@pytest.mark.parametrize("order", list(ORDERS))
def test_nonce_tracking(benchmark, order):
    nonces = ORDERS[order](N)

    def run():
        tracker = NonceRangeTracker()
        for nonce in nonces:
            tracker.check_and_add(nonce)
        return tracker

    tracker = benchmark(run)
    print(f"\n  {order}: {N} nonces → {tracker.range_count} ranges")
    if order == "sequential":
        assert tracker.range_count == 1
    elif order == "locally-reordered":
        # The design target: near-sequential input stays near-constant.
        assert tracker.range_count <= 32
    # fully-random degrades (many ranges mid-stream) but ends merged:
    assert tracker.total_seen == N
