"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` (small|medium) controls the TPC-C calibration scale;
small keeps the whole benchmark suite in a few minutes on a laptop.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.experiments import TpccScale

SCALES = {
    "small": TpccScale(
        warehouses=1, districts_per_warehouse=2, customers_per_district=20, items=40
    ),
    "medium": TpccScale(
        warehouses=2, districts_per_warehouse=4, customers_per_district=60, items=100
    ),
}


@pytest.fixture(scope="session")
def tpcc_scale() -> TpccScale:
    return SCALES[os.environ.get("REPRO_BENCH_SCALE", "small")]


@pytest.fixture(scope="session")
def calibration_transactions() -> int:
    return int(os.environ.get("REPRO_BENCH_TXNS", "40"))
