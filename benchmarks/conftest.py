"""Shared benchmark configuration.

``REPRO_BENCH_SCALE`` (small|medium) controls the TPC-C calibration scale;
small keeps the whole benchmark suite in a few minutes on a laptop.

Every benchmark runs against a freshly reset metrics registry, and its
final registry snapshot is written as JSON to
``benchmarks/.metrics/<test_name>.json`` — set ``REPRO_BENCH_METRICS_DIR``
to relocate, or to an empty string to disable.
"""

from __future__ import annotations

import json
import os
import pathlib
import re

import pytest

from repro.harness.experiments import TpccScale
from repro.obs.metrics import get_registry

SCALES = {
    "small": TpccScale(
        warehouses=1, districts_per_warehouse=2, customers_per_district=20, items=40
    ),
    "medium": TpccScale(
        warehouses=2, districts_per_warehouse=4, customers_per_district=60, items=100
    ),
}


@pytest.fixture(scope="session")
def tpcc_scale() -> TpccScale:
    return SCALES[os.environ.get("REPRO_BENCH_SCALE", "small")]


@pytest.fixture(scope="session")
def calibration_transactions() -> int:
    return int(os.environ.get("REPRO_BENCH_TXNS", "40"))


def _metrics_dir() -> pathlib.Path | None:
    configured = os.environ.get("REPRO_BENCH_METRICS_DIR")
    if configured == "":
        return None
    if configured is not None:
        return pathlib.Path(configured)
    return pathlib.Path(__file__).parent / ".metrics"


@pytest.fixture(scope="session")
def enclave_batch_results():
    """Accumulates bench_eval_batch configurations; persisted at session end.

    Each entry is one (mode, batch_size, transition_cost) measurement with
    its boundary_transitions and wall time. The snapshot lands in
    ``benchmarks/BENCH_enclave_batch.json`` so the batching win is
    inspectable without rerunning the sweep.
    """
    results: list[dict] = []
    yield results
    if not results:
        return
    path = pathlib.Path(__file__).parent / "BENCH_enclave_batch.json"
    path.write_text(json.dumps({"configurations": results}, indent=2, sort_keys=True))


@pytest.fixture(autouse=True)
def metrics_snapshot(request):
    """Reset the registry per benchmark; dump its snapshot as JSON after."""
    registry = get_registry()
    registry.reset()
    yield registry
    out_dir = _metrics_dir()
    if out_dir is None:
        return
    out_dir.mkdir(parents=True, exist_ok=True)
    safe_name = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    path = out_dir / f"{safe_name}.json"
    path.write_text(
        json.dumps(
            {"benchmark": request.node.nodeid, "metrics": registry.snapshot()},
            indent=2,
            sort_keys=True,
        )
    )
