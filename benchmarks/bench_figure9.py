"""Figure 9: enclave-based RND processing vs deterministic encryption.

Paper (Section 5.4.2): at 100 client threads and W=800, SQL-AE-DET sits
between SQL-PT-AEConn and SQL-AE-RND; enclave-based computation (RND-4) is
12.3% slower than DET; one enclave thread (RND-1) is slower than four.
"""

from repro.harness.experiments import run_figure9


def test_figure9_enclave_vs_det(benchmark, tpcc_scale, calibration_transactions):
    result = benchmark.pedantic(
        run_figure9,
        kwargs={"scale": tpcc_scale, "n_transactions": calibration_transactions},
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 66)
    print("Figure 9 — normalized throughput at 100 client threads")
    print("=" * 66)
    print(result.print_rows())
    print("  paper: AEConn > DET > RND-4 > RND-1; DET−RND-4 gap = 12.3%")

    n = result.normalized
    benchmark.extra_info["normalized"] = n
    benchmark.extra_info["enclave_vs_det_gap"] = result.enclave_vs_det_gap

    # Shape assertions:
    # 1. The paper's ordering of the four configurations.
    assert n["SQL-PT"] >= n["SQL-PT-AEConn"]
    assert n["SQL-PT-AEConn"] >= n["SQL-AE-DET"] - 0.05  # DET ≈ just below AEConn
    assert n["SQL-AE-DET"] > n["SQL-AE-RND-1"]
    assert n["SQL-AE-RND-4"] > n["SQL-AE-RND-1"]
    # 2. The enclave-vs-DET gap is a modest single/low-double-digit
    #    percentage (paper: 12.3%), not a blowup.
    assert -0.05 <= result.enclave_vs_det_gap <= 0.40
