"""A2 — driver-side caching (Section 4.1): CEK cache and describe cache.

The paper calls out both: the CEK cache avoids key-provider network calls
(Azure Key Vault), and caching sp_describe_parameter_encryption results
would remove the extra round-trip that costs SQL-PT-AEConn ~36% of
throughput. We measure steady-state execute latency under each policy with
a simulated 2 ms key-vault latency.
"""

import pytest

from repro.attestation.hgs import AttestationPolicy, HostGuardianService
from repro.attestation.tpm import HostMachine
from repro.client.driver import connect
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.runtime import Enclave, EnclaveBinary
from repro.keys.providers import AzureKeyVaultSim, KeyProviderRegistry
from repro.sqlengine.server import SqlServer
from repro.tools.provisioning import provision_cek, provision_cmk

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"
VAULT_LATENCY_S = 0.002


def build(cache_describe: bool, cek_ttl_s: float):
    author = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author)
    enclave = Enclave(binary)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(enclave=enclave, host_machine=host, hgs=hgs)
    registry = KeyProviderRegistry()
    vault = AzureKeyVaultSim(latency_s=VAULT_LATENCY_S)
    registry.register(vault)
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    conn = connect(
        server, registry, attestation_policy=policy,
        cache_describe_results=cache_describe, cek_cache_ttl_s=cek_ttl_s,
    )
    cmk = provision_cmk(conn, vault, "CMK", "https://vault.azure.net/keys/cache-bench")
    provision_cek(conn, vault, cmk, "CEK")
    conn.execute_ddl(
        "CREATE TABLE C (k int PRIMARY KEY, "
        f"v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK, "
        f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
    )
    for k in range(20):
        conn.execute("INSERT INTO C (k, v) VALUES (@k, @v)", {"k": k, "v": k})
    return conn


def steady_state_queries(conn, n=20):
    for i in range(n):
        conn.execute("SELECT k FROM C WHERE v = @v", {"v": i % 20})


@pytest.mark.parametrize(
    "label,cache_describe,cek_ttl",
    [
        ("all-caches", True, 7200.0),
        ("no-describe-cache", False, 7200.0),
        ("no-cek-cache", True, 0.0),
    ],
)
def test_driver_cache_policies(benchmark, label, cache_describe, cek_ttl):
    conn = build(cache_describe, cek_ttl)
    steady_state_queries(conn, 5)  # warm whatever caches are enabled
    benchmark.pedantic(steady_state_queries, args=(conn, 20), rounds=3, iterations=1)
    print(
        f"\n  {label}: describe_rtts={conn.stats.describe_roundtrips} "
        f"provider_calls={conn.stats.key_provider_calls} "
        f"(vault latency {VAULT_LATENCY_S * 1000:.0f} ms/call)"
    )
    if label == "all-caches":
        # Warm caches: no further describe round-trips or vault calls.
        assert conn.stats.key_provider_calls <= 4
