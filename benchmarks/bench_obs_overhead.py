"""OBS — flight recorder overhead.

The flight recorder sits on every hot path in the stack (spans, ecalls,
lock waits, leakage observations), so its cost must be provably small:

* with the recorder **on**, a TPC-C slice may run at most 5% slower than
  with the recorder off. The slice is the read-only ``order_status``
  transaction — its 60% by-last-name path routes the RND-encrypted
  ``C_LAST`` predicate through the enclave index, so every run crosses
  the instrumented boundary paths. Timings are *paired*: the transaction
  RNG is reseeded identically for both arms of a pair, so on/off time
  byte-identical work, and the pair order alternates so neither arm
  systematically benefits from running second. Medians are compared so
  machine drift cancels instead of landing in one arm;
* with the *registry* disabled (the global observability kill switch),
  ``record_event`` must collapse to an attribute check — near-zero cost.

The measured numbers persist to ``benchmarks/BENCH_obs_overhead.json``.
"""

import gc
import json
import pathlib
import statistics
import time

from repro.enclave import CallMode
from repro.obs.flightrec import get_recorder, record_event
from repro.obs.metrics import get_registry
from repro.workloads.tpcc.config import EncryptionMode, TpccConfig
from repro.workloads.tpcc.driver import build_system

OUT_PATH = pathlib.Path(__file__).parent / "BENCH_obs_overhead.json"

PAIRS = 200         # (recorder-on, recorder-off) runs of identical work
OVERHEAD_LIMIT = 0.05
DISABLED_CALLS = 100_000
SEED_BASE = 10_000  # per-pair RNG seed: pair i reseeds both arms with it


def test_recorder_overhead_under_5_percent():
    config = TpccConfig(
        warehouses=1,
        districts_per_warehouse=1,
        customers_per_district=10,
        items=20,
        mode=EncryptionMode.RND,
        enclave_threads=2,
    )
    system = build_system(
        config, enclave_call_mode=CallMode.SYNCHRONOUS, worker_threads=0
    )
    recorder = get_recorder()
    txns = system.transactions
    for i in range(10):  # warm plans, caches, and the attestation session
        txns.rng.seed(i)
        txns.order_status()

    on_times: list[float] = []
    off_times: list[float] = []
    recorder.clear()
    # Standard micro-benchmark hygiene: collect once, then pause the
    # cyclic GC for the timed region so collection pauses (which land on
    # whichever arm happens to be running) don't skew the medians.
    gc.collect()
    gc.disable()
    try:
        for i in range(PAIRS):
            arms = ("on", "off") if i % 2 else ("off", "on")
            for arm in arms:
                txns.rng.seed(SEED_BASE + i)
                recorder.enabled = arm == "on"
                started = time.perf_counter()
                txns.order_status()
                elapsed = time.perf_counter() - started
                (on_times if arm == "on" else off_times).append(elapsed)
    finally:
        gc.enable()
        recorder.enabled = True
    events_recorded = len(recorder)
    assert events_recorded > 0, "recorder-on runs must actually record"

    median_on = statistics.median(on_times)
    median_off = statistics.median(off_times)
    overhead = (median_on - median_off) / median_off

    # -- the kill switch: registry off must make record_event near-free ----
    registry = get_registry()
    started = time.perf_counter()
    for __ in range(DISABLED_CALLS):
        record_event("stmt.begin", query="disabled-cost-probe")
    enabled_call_s = (time.perf_counter() - started) / DISABLED_CALLS
    registry.enabled = False
    try:
        started = time.perf_counter()
        for __ in range(DISABLED_CALLS):
            record_event("stmt.begin", query="disabled-cost-probe")
        disabled_call_s = (time.perf_counter() - started) / DISABLED_CALLS
    finally:
        registry.enabled = True
    recorder.clear()

    summary = {
        "pairs": PAIRS,
        "events_per_txn": round(events_recorded / PAIRS, 2),
        "median_on_s": round(median_on, 7),
        "median_off_s": round(median_off, 7),
        "overhead_frac": round(overhead, 6),
        "overhead_limit": OVERHEAD_LIMIT,
        "events_recorded": events_recorded,
        "enabled_record_call_s": round(enabled_call_s, 9),
        "disabled_record_call_s": round(disabled_call_s, 9),
    }
    OUT_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True))
    print("\n  obs_overhead: " + json.dumps(summary, sort_keys=True))

    assert overhead < OVERHEAD_LIMIT, (
        f"flight recorder overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_LIMIT:.0%} (median on={median_on * 1e3:.3f}ms "
        f"off={median_off * 1e3:.3f}ms)"
    )
    # Near-zero when the registry kill switch is thrown: well under a
    # microsecond per call, and far below the enabled path's cost.
    assert disabled_call_s < 2e-6, (
        f"disabled record_event costs {disabled_call_s * 1e6:.2f}us/call"
    )
    assert disabled_call_s < enabled_call_s, (
        "disabling the registry must make record_event cheaper than "
        "recording"
    )
