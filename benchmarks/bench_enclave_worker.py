"""A1 — the enclave worker-queue optimization (Section 4.6).

Compares synchronous enclave calls (one boundary transition per expression
evaluation) against the worker-queue design (hot workers amortize
transitions) across simulated transition costs. The paper's design point:
when the workload keeps the enclave busy, the queue avoids nearly all
transition costs.
"""

import json

import pytest

from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.obs.metrics import get_registry
from repro.crypto.dh import DiffieHellman
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.channel import CekPackage, seal_package
from repro.enclave.runtime import Enclave, EnclaveBinary
from repro.enclave.worker import CallMode, EnclaveCallGateway
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.expression.program import Instruction, Opcode, StackProgram
from repro.sqlengine.types import EncryptionInfo
from repro.sqlengine.values import serialize_value

CEK = bytes(range(32))
ENC = EncryptionInfo(
    scheme=EncryptionScheme.RANDOMIZED, cek_name="K", enclave_enabled=True
)
TRANSITION_COST_S = 0.00005  # 50 µs — a plausible VBS boundary cost


def make_enclave() -> Enclave:
    enclave = Enclave(EnclaveBinary.build(RsaKeyPair.generate(1024)))
    dh = DiffieHellman()
    session, enclave_dh, __ = enclave.start_session(dh.public_key)
    secret = dh.shared_secret(enclave_dh)
    enclave.install_package(
        session, seal_package(secret, CekPackage(nonce=0, ceks=(("K", CEK),)))
    )
    return enclave


def comparison_workload(gateway: EnclaveCallGateway, n_calls: int) -> None:
    cipher = CellCipher(CEK)
    blob = StackProgram([
        Instruction(Opcode.GET_DATA, (0, ENC)),
        Instruction(Opcode.GET_DATA, (1, ENC)),
        Instruction(Opcode.COMP, "<"),
        Instruction(Opcode.SET_DATA, (0, None)),
    ]).serialize()
    handle = gateway.register_program(blob)
    a = Ciphertext(cipher.encrypt(serialize_value(1), EncryptionScheme.RANDOMIZED))
    b = Ciphertext(cipher.encrypt(serialize_value(2), EncryptionScheme.RANDOMIZED))
    for __ in range(n_calls):
        gateway.eval(handle, [a, b])


@pytest.mark.parametrize("mode", [CallMode.SYNCHRONOUS, CallMode.QUEUED])
def test_enclave_call_modes(benchmark, mode):
    enclave = make_enclave()
    gateway = EnclaveCallGateway(
        enclave,
        mode=mode,
        n_threads=1,
        transition_cost_s=TRANSITION_COST_S,
        spin_duration_s=0.002,
    )
    registry = get_registry()
    before = {
        "calls": registry.value("worker.calls"),
        "boundary_transitions": registry.value("worker.boundary_transitions"),
    }
    try:
        benchmark.pedantic(
            comparison_workload, args=(gateway, 200), rounds=3, iterations=1
        )
    finally:
        stats = gateway.stats
        gateway.shutdown()
    # The per-mode summary comes from the telemetry registry, not from
    # hand-kept ints; the gateway's stats view must agree with it exactly.
    delta = {key: registry.value(f"worker.{key}") - base for key, base in before.items()}
    assert delta["calls"] == stats.calls
    assert delta["boundary_transitions"] == stats.boundary_transitions
    summary = {
        "mode": mode.value,
        "calls": stats.calls,
        "boundary_transitions": stats.boundary_transitions,
        "transitions_per_call": round(stats.boundary_transitions / stats.calls, 4),
        "spin_hits": stats.spin_hits,
    }
    print("\n  metrics_snapshot: " + json.dumps(summary, sort_keys=True))
    if mode is CallMode.SYNCHRONOUS:
        assert stats.boundary_transitions == stats.calls
    else:
        # The hot worker amortizes transitions away under steady load.
        assert stats.boundary_transitions < stats.calls / 2
