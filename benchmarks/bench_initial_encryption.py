"""A3 — initial encryption: in-place via enclave vs client round-trip.

The AEv2 headline usability claim (Section 1.1): enclave-less initial
encryption round-trips the whole column through the client — "latencies as
long as a week" at terabyte scale — while AEv2 encrypts in place. We
measure both paths over the same column, with a modest simulated network
cost on the round-trip path, and report the per-row advantage.
"""

import pytest

from repro.attestation.hgs import AttestationPolicy, HostGuardianService
from repro.attestation.tpm import HostMachine
from repro.client.driver import connect
from repro.crypto.aead import EncryptionScheme
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.runtime import Enclave, EnclaveBinary
from repro.keys.providers import default_registry
from repro.sqlengine.server import SqlServer
from repro.tools.initial_encryption import client_side_initial_encryption
from repro.tools.provisioning import provision_cek, provision_cmk

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"
ROWS = 200
# The client path ships the whole column both ways; network time scales
# with data volume (the paper: ~a week per terabyte). 0.5 ms/row here.
ROUNDTRIP_LATENCY_S = ROWS * 0.0005


def build(allow_enclave: bool):
    author = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author)
    enclave = Enclave(binary)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(enclave=enclave, host_machine=host, hgs=hgs)
    registry = default_registry()
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    conn = connect(server, registry, attestation_policy=policy)
    cmk = provision_cmk(
        conn, vault, "CMK", "https://vault.azure.net/keys/init-bench",
        allow_enclave_computations=allow_enclave,
    )
    material = provision_cek(conn, vault, cmk, "CEK")
    conn.execute_ddl("CREATE TABLE big (k int PRIMARY KEY, s varchar(40))")
    for k in range(ROWS):
        conn.execute("INSERT INTO big (k, s) VALUES (@k, @s)", {"k": k, "s": f"pii-value-{k}"})
    return conn, material


def test_in_place_enclave_encryption(benchmark):
    def run():
        conn, __ = build(allow_enclave=True)
        conn.execute_ddl(
            "ALTER TABLE big ALTER COLUMN s varchar(40) ENCRYPTED WITH ("
            f"COLUMN_ENCRYPTION_KEY = CEK, ENCRYPTION_TYPE = Randomized, "
            f"ALGORITHM = '{ALGO}')",
            authorize_enclave=True,
        )
        return conn

    conn = benchmark.pedantic(run, rounds=1, iterations=1)
    r = conn.execute("SELECT k FROM big WHERE s = @s", {"s": "pii-value-7"})
    assert r.rows == [(7,)]
    print(f"\n  in-place: {ROWS} rows, zero client round-trips of data")


def test_client_roundtrip_encryption(benchmark):
    def run():
        conn, material = build(allow_enclave=False)
        count = client_side_initial_encryption(
            conn, "big", "s", "CEK", material, EncryptionScheme.DETERMINISTIC,
            roundtrip_latency_s=ROUNDTRIP_LATENCY_S,
        )
        assert count == ROWS
        return conn

    conn = benchmark.pedantic(run, rounds=1, iterations=1)
    r = conn.execute("SELECT k FROM big WHERE s = @s", {"s": "pii-value-7"})
    assert r.rows == [(7,)]
    print(f"\n  client round-trip: {ROWS} rows pulled to client and written back "
          f"(+{2 * ROUNDTRIP_LATENCY_S * 1000:.0f} ms simulated network)")
