"""A6 — index operations across the three comparator flavours.

Measures what Section 3.1 implies: plaintext and DET (ciphertext-binary)
index operations cost about the same — "the vast majority of index
processing remains unaffected by encryption" — while RND range indexes pay
an enclave decryption per comparison, concentrated in seeks/inserts.
"""

import random

import pytest

from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.crypto.dh import DiffieHellman
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.channel import CekPackage, seal_package
from repro.enclave.runtime import Enclave, EnclaveBinary
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.index.btree import BPlusTree
from repro.sqlengine.index.comparators import (
    CellComparator,
    CiphertextBinaryComparator,
    CompositeComparator,
    EnclaveComparator,
    PlaintextComparator,
)
from repro.sqlengine.storage.heap import RowId
from repro.sqlengine.values import serialize_value

CEK = bytes(range(32))
N_KEYS = 300


def ready_enclave() -> Enclave:
    enclave = Enclave(EnclaveBinary.build(RsaKeyPair.generate(1024)))
    dh = DiffieHellman()
    session, enclave_dh, __ = enclave.start_session(dh.public_key)
    enclave.install_package(
        session,
        seal_package(dh.shared_secret(enclave_dh), CekPackage(nonce=0, ceks=(("K", CEK),))),
    )
    return enclave


def make_keys(kind: str):
    cipher = CellCipher(CEK)
    values = list(range(N_KEYS))
    random.Random(11).shuffle(values)
    if kind == "plaintext":
        return [(v,) for v in values]
    scheme = (
        EncryptionScheme.DETERMINISTIC if kind == "det" else EncryptionScheme.RANDOMIZED
    )
    return [
        (Ciphertext(cipher.encrypt(serialize_value(v), scheme)),) for v in values
    ]


def make_tree(kind: str, enclave=None) -> BPlusTree:
    if kind == "plaintext":
        cell = CellComparator(PlaintextComparator())
    elif kind == "det":
        cell = CellComparator(CiphertextBinaryComparator())
    else:
        cell = CellComparator(EnclaveComparator(enclave, "K"))
    return BPlusTree(CompositeComparator([cell]))


@pytest.mark.parametrize("kind", ["plaintext", "det", "rnd-enclave"])
def test_index_build(benchmark, kind):
    enclave = ready_enclave() if kind == "rnd-enclave" else None
    keys = make_keys("det" if kind == "det" else ("plaintext" if kind == "plaintext" else "rnd"))

    def build():
        tree = make_tree(kind, enclave)
        for i, key in enumerate(keys):
            tree.insert(key, RowId(0, i))
        return tree

    tree = benchmark.pedantic(build, rounds=2, iterations=1)
    assert len(tree) == N_KEYS


@pytest.mark.parametrize("kind", ["plaintext", "det", "rnd-enclave"])
def test_index_equality_seek(benchmark, kind):
    enclave = ready_enclave() if kind == "rnd-enclave" else None
    keys = make_keys("det" if kind == "det" else ("plaintext" if kind == "plaintext" else "rnd"))
    tree = make_tree(kind, enclave)
    for i, key in enumerate(keys):
        tree.insert(key, RowId(0, i))
    probes = keys[:50]

    def seek():
        found = 0
        for probe in probes:
            found += len(tree.search_eq(probe))
        return found

    assert benchmark(seek) >= 50


def test_rnd_range_scan_via_enclave(benchmark):
    enclave = ready_enclave()
    cipher = CellCipher(CEK)
    tree = make_tree("rnd-enclave", enclave)
    for v in range(N_KEYS):
        tree.insert(
            (Ciphertext(cipher.encrypt(serialize_value(v), EncryptionScheme.RANDOMIZED)),),
            RowId(0, v),
        )

    def scan():
        lo = (Ciphertext(cipher.encrypt(serialize_value(100), EncryptionScheme.RANDOMIZED)),)
        hi = (Ciphertext(cipher.encrypt(serialize_value(150), EncryptionScheme.RANDOMIZED)),)
        return sum(1 for __ in tree.range_scan(lo, hi))

    assert benchmark(scan) == 51
