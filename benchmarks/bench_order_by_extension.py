"""A7 — ORDER BY over encrypted data: client-side sort vs enclave sort.

The paper removes ORDER BY C_FIRST from TPC-C and sorts decrypted rows at
the client (Section 5.3); the conclusion names richer enclave functionality
as future work. This bench compares the two strategies our implementation
offers for the same query:

* **client-sort** (the paper's workaround): fetch matching rows, decrypt
  all of them at the driver, sort plaintext client-side;
* **enclave-sort** (the extension): the server sorts via enclave
  comparisons and returns ordered rows — leaking the ordering, like a
  range index would.
"""

import pytest

from repro.attestation.hgs import AttestationPolicy, HostGuardianService
from repro.attestation.tpm import HostMachine
from repro.client.driver import connect
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.runtime import Enclave, EnclaveBinary
from repro.keys.providers import default_registry
from repro.sqlengine.server import SqlServer
from repro.tools.provisioning import provision_cek, provision_cmk

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"
ROWS = 120


def build(allow_enclave_order_by: bool):
    author = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author)
    enclave = Enclave(binary)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(
        enclave=enclave, host_machine=host, hgs=hgs,
        allow_enclave_order_by=allow_enclave_order_by,
    )
    registry = default_registry()
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    conn = connect(server, registry, attestation_policy=policy)
    cmk = provision_cmk(conn, vault, "CMK", "https://vault.azure.net/keys/ob-bench")
    provision_cek(conn, vault, cmk, "CEK")
    conn.execute_ddl(
        "CREATE TABLE O (k int PRIMARY KEY, "
        f"name varchar(24) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK, "
        f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
    )
    for k in range(ROWS):
        conn.execute(
            "INSERT INTO O (k, name) VALUES (@k, @n)",
            {"k": k, "n": f"name-{(k * 37) % ROWS:04d}"},
        )
    conn.execute("SELECT k FROM O WHERE name LIKE @p", {"p": "%"})  # warm caches
    return conn, enclave


def test_client_side_sort(benchmark):
    conn, enclave = build(allow_enclave_order_by=False)

    def run():
        result = conn.execute("SELECT k, name FROM O WHERE name LIKE @p", {"p": "%"})
        return sorted(result.rows, key=lambda row: row[1])

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    assert [r[1] for r in rows] == sorted(r[1] for r in rows)
    print(f"\n  client-sort: {ROWS} rows decrypted then sorted at the driver; "
          "no ordering leaked beyond the LIKE predicate bits")


def test_enclave_sort_extension(benchmark):
    conn, enclave = build(allow_enclave_order_by=True)
    before = enclave.counters.comparisons
    conn.execute("SELECT k, name FROM O WHERE name LIKE @p ORDER BY name", {"p": "%"})
    per_query = enclave.counters.comparisons - before

    def run():
        return conn.execute(
            "SELECT k, name FROM O WHERE name LIKE @p ORDER BY name", {"p": "%"}
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert [r[1] for r in result.rows] == sorted(r[1] for r in result.rows)
    print(f"\n  enclave-sort: ~{per_query} enclave comparisons per query "
          "(each leaking one ordering bit to the adversary)")
