"""Figure 8 (sharded): multi-process TPC-C over the binary wire protocol.

The measured Figure 8 (``bench_figure8.py --measured``) is bounded by one
Python process: one GIL executes every shard of work, so 16 clients buy
~6x a single client and the curve flattens. This benchmark re-runs the
same mix against the sharded deployment — N ``SqlServer`` shard
processes behind the router process, clients speaking the length-prefixed
binary wire protocol — sweeping 1/2/4/8 shards, and persists the curve
as ``benchmarks/BENCH_figure8_sharded.json``.

What the curve can show depends on the host, and the artifact says so:

* **≥4 effective CPUs** (CI runners, any real machine): shard processes
  execute statements in true parallel, and the gate is the issue's —
  ≥4-shard plaintext throughput at 16 clients beats the archived
  in-process 16-client number by ≥1.5x and clears 10x its own
  single-client number.
* **Single-core hosts** (CPU-quota'd containers): the in-process build
  already saturates the core with zero wire overhead, so *no*
  multi-process design can beat it — every frame encode/decode and
  socket hop is CPU the in-process build never spends. The enforced
  claim becomes the wire tax against a same-host, same-scale in-process
  ceiling measured in the same run: 1-shard (pure wire overhead) holds
  ≥0.6x of it, and the best ≥4-shard topology — paying for one core
  time-slicing ten processes — holds ≥0.45x. Observed bands are
  0.73–0.84x and 0.52–0.64x; the bounds are looser because a loaded
  single-core container is noisy.

Both baselines (archived artifact and same-host re-measurement) plus the
host topology are recorded in the JSON, so a curve produced on one
machine is interpretable on another. Invariant audits gate every curve:
after each sweep the TPC-C consistency checks run on every shard over
the wire, and any violation fails the benchmark.

Run standalone with
``PYTHONPATH=src python benchmarks/bench_figure8_sharded.py``.
"""

import json
import pathlib

from repro.harness.measured_sharded import run_figure8_sharded

BASELINE_JSON = pathlib.Path(__file__).parent / "BENCH_figure8_measured.json"
SHARDED_JSON = pathlib.Path(__file__).parent / "BENCH_figure8_sharded.json"


def test_figure8_sharded_multi_process(benchmark):
    """Measured sharded sweep: real processes, real sockets, real audits."""
    result = benchmark.pedantic(
        run_figure8_sharded,
        kwargs={
            "baseline_path": BASELINE_JSON,
            "output_path": SHARDED_JSON,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print("=" * 66)
    print("Figure 8 (sharded) — TPC-C txn/s, shard processes behind router")
    print("=" * 66)
    print(result.print_rows())

    # 1. Serializable-equivalence survives the wire: every shard's TPC-C
    #    invariants hold at quiesce, for every shard count and mode.
    for curve in result.curves + result.ae_curves:
        assert curve.invariant_violations == [], (curve.mode, curve.n_shards)
        assert all(t > 0 for t in curve.throughput), (curve.mode, curve.n_shards)
        assert all(n > 0 for n in curve.transactions), (curve.mode, curve.n_shards)

    # 2. Client concurrency scales through the router on every topology:
    #    16 clients overlap their RTT waits even on one core.
    for curve in result.curves + result.ae_curves:
        assert curve.at(16) > curve.at(1), (curve.mode, curve.n_shards)
    assert max(c.at(16) / c.at(1) for c in result.ae_curves) > 2.0, [
        (c.n_shards, c.throughput) for c in result.ae_curves
    ]

    # 3. The scaling claim, sized to the host's ability to express it.
    four_plus = [c for c in result.curves if c.n_shards >= 4]
    assert four_plus, "sweep must include a >=4-shard curve"
    if result.scaling_gate_applicable:
        # Real cores behind the shards: every topology the host can run
        # in parallel scales hard, and the single-process ceiling breaks.
        for curve in result.curves:
            assert curve.at(16) > 3.0 * curve.at(1), (curve.n_shards, curve.throughput)
        assert any(
            result.speedup_over_inprocess(c.n_shards, 16) is not None
            and result.speedup_over_inprocess(c.n_shards, 16) >= 1.5
            for c in four_plus
        ), {c.n_shards: result.speedup_over_inprocess(c.n_shards, 16) for c in four_plus}
        assert any(c.at(16) > 10.0 * c.at(1) for c in four_plus), {
            c.n_shards: c.at(16) / c.at(1) for c in four_plus
        }
    else:
        # One core: no process layout can beat in-process saturation, so
        # enforce the wire tax against the same-host ceiling instead. The
        # 1-shard topology isolates pure wire/framing overhead (measured
        # 0.73-0.84x across runs); >=4 shards add the cost of a single
        # core time-slicing ten processes (measured 0.52-0.64x). Bounds
        # sit below the observed bands because a loaded single-core
        # container's run-to-run variance is large.
        assert result.curve(1).at(16) > 3.0 * result.curve(1).at(1), result.curve(1)
        assert result.inprocess_same_host_txn_s, "same-host reference missing"
        assert result.wire_tax(1, 16) >= 0.6, result.wire_tax(1, 16)
        taxes = {c.n_shards: result.wire_tax(c.n_shards, 16) for c in four_plus}
        assert any(tax is not None and tax >= 0.45 for tax in taxes.values()), taxes

    # 4. The persisted artifact matches what we asserted on.
    persisted = json.loads(SHARDED_JSON.read_text())
    assert persisted["figure"] == "8-sharded"
    assert {c["n_shards"] for c in persisted["curves"]} == {
        c.n_shards for c in result.curves
    }
    assert persisted["host"]["effective_cpus"] == result.host["effective_cpus"]
    assert persisted["ae_curves"], "AE companion curves missing"
    assert persisted["scaling_gate_applicable"] == result.scaling_gate_applicable

    benchmark.extra_info["sharded_16_client_txn_s"] = {
        curve.n_shards: curve.at(16) for curve in result.curves
    }
    benchmark.extra_info["wire_tax_at_16"] = {
        curve.n_shards: result.wire_tax(curve.n_shards, 16)
        for curve in result.curves
    }


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, nargs="*", default=None,
                        help="shard counts to sweep (default 1 2 4 8)")
    parser.add_argument("--clients", type=int, nargs="*", default=None,
                        help="client counts to sweep (default 1 2 4 8 16)")
    parser.add_argument("--txns", type=int, default=16,
                        help="transactions per client per point")
    cli = parser.parse_args()
    kwargs = {
        "baseline_path": BASELINE_JSON,
        "output_path": SHARDED_JSON,
        "transactions_per_client": cli.txns,
    }
    if cli.shards:
        kwargs["shard_counts"] = tuple(cli.shards)
    if cli.clients:
        kwargs["client_counts"] = tuple(cli.clients)
    print(run_figure8_sharded(**kwargs).print_rows())
